//! IR data structures: constants, instructions, basic blocks, function
//! modules, and program modules.

use std::collections::HashMap;
use std::sync::Arc;
use wolfram_expr::Expr;
use wolfram_types::Type;

/// An SSA variable (`%n` in dumps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A basic block id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A function index within a [`ProgramModule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// Machine integer.
    I64(i64),
    /// Machine real.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Machine complex.
    Complex(f64, f64),
    /// String literal.
    Str(Arc<str>),
    /// A packed constant integer array (e.g. the PrimeQ seed table, §6).
    I64Array(Arc<[i64]>),
    /// A packed constant real array.
    F64Array(Arc<[f64]>),
    /// An arbitrary symbolic expression (F8).
    Expr(Expr),
    /// The unit value.
    Null,
}

impl Constant {
    /// The natural type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            Constant::I64(_) => Type::integer64(),
            Constant::F64(_) => Type::real64(),
            Constant::Bool(_) => Type::boolean(),
            Constant::Complex(..) => Type::complex(),
            Constant::Str(_) => Type::string(),
            Constant::I64Array(_) => Type::tensor(Type::integer64(), 1),
            Constant::F64Array(_) => Type::tensor(Type::real64(), 1),
            Constant::Expr(_) => Type::expression(),
            Constant::Null => Type::void(),
        }
    }
}

/// The target of a call instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// An unresolved Wolfram function (WIR stage): `Plus`, `Part`, ...
    Builtin(Arc<str>),
    /// A runtime primitive with a mangled name (TWIR stage), e.g.
    /// `checked_binary_plus_Integer64_Integer64`.
    Primitive(Arc<str>),
    /// A resolved call to another function in this program module.
    Function {
        /// The mangled name.
        name: Arc<str>,
        /// The resolved function index.
        func: FuncId,
    },
    /// An indirect call through a function value (closures, F6).
    Value(VarId),
    /// An escape to the interpreter (`KernelFunction`, F1/F9): evaluate
    /// `head[args...]` in the Wolfram Engine.
    Kernel(Arc<str>),
}

impl Callee {
    /// Display name for dumps.
    pub fn name(&self) -> String {
        match self {
            Callee::Builtin(n) => n.to_string(),
            Callee::Primitive(n) => format!("Native`PrimitiveFunction[{n}]"),
            Callee::Function { name, .. } => name.to_string(),
            Callee::Value(v) => format!("%{}", v.0),
            Callee::Kernel(n) => format!("KernelFunction[{n}]"),
        }
    }
}

/// An argument to a call or part operation: an SSA variable or an immediate
/// constant (the paper's dumps show immediates inline: `[%1, 1:I64]`).
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An SSA variable.
    Var(VarId),
    /// An immediate constant.
    Const(Constant),
}

impl Operand {
    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this is one.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Var(_) => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<Constant> for Operand {
    fn from(c: Constant) -> Self {
        Operand::Const(c)
    }
}

/// A WIR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `%dst = LoadArgument <index>`.
    LoadArgument {
        /// Result variable.
        dst: VarId,
        /// 0-based parameter index.
        index: usize,
    },
    /// `%dst = Constant <value>`.
    LoadConst {
        /// Result variable.
        dst: VarId,
        /// The constant.
        value: Constant,
    },
    /// `%dst = Copy %src` — explicit value copy; the mutability pass turns
    /// these into real copies or elides them (F5).
    Copy {
        /// Result variable.
        dst: VarId,
        /// Source.
        src: VarId,
    },
    /// `%dst = Call callee [args...]`.
    Call {
        /// Result variable.
        dst: VarId,
        /// Call target.
        callee: Callee,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `%dst = MakeClosure f [captures...]` (closure conversion, §4.2).
    MakeClosure {
        /// Result variable.
        dst: VarId,
        /// The lifted function's name.
        func: Arc<str>,
        /// Captured environment.
        captures: Vec<Operand>,
    },
    /// SSA phi node.
    Phi {
        /// Result variable.
        dst: VarId,
        /// `(predecessor block, value)` pairs.
        incoming: Vec<(BlockId, Operand)>,
    },
    /// An abort check (F3): inserted at loop headers and prologues (§4.5).
    AbortCheck,
    /// `MemoryAcquire %v`: no-op for unmanaged objects, reference increment
    /// for managed ones (F7).
    MemoryAcquire {
        /// The acquired variable.
        var: VarId,
    },
    /// `MemoryRelease %v`.
    MemoryRelease {
        /// The released variable.
        var: VarId,
    },
    /// Unconditional branch.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch.
    Branch {
        /// Condition variable (Boolean-typed in TWIR).
        cond: Operand,
        /// Target when true.
        then_block: BlockId,
        /// Target when false.
        else_block: BlockId,
    },
    /// Function return.
    Return {
        /// Returned value.
        value: Operand,
    },
}

impl Instr {
    /// The variable defined by this instruction, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Instr::LoadArgument { dst, .. }
            | Instr::LoadConst { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::MakeClosure { dst, .. }
            | Instr::Phi { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// All variables used (not defined) by this instruction.
    pub fn uses(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut add_op = |o: &Operand| {
            if let Operand::Var(v) = o {
                out.push(*v);
            }
        };
        match self {
            Instr::Copy { src, .. } => add_op(&Operand::Var(*src)),
            Instr::Call { callee, args, .. } => {
                if let Callee::Value(v) = callee {
                    add_op(&Operand::Var(*v));
                }
                for a in args {
                    add_op(a);
                }
            }
            Instr::MakeClosure { captures, .. } => {
                for c in captures {
                    add_op(c);
                }
            }
            Instr::Phi { incoming, .. } => {
                for (_, o) in incoming {
                    add_op(o);
                }
            }
            // Memory instrumentation references the variable's storage
            // slot, not its SSA value: it neither keeps values alive nor
            // participates in dataflow (see the memory-management pass).
            Instr::MemoryAcquire { .. } | Instr::MemoryRelease { .. } => {}
            Instr::Branch { cond, .. } => add_op(cond),
            Instr::Return { value } => add_op(value),
            Instr::LoadArgument { .. }
            | Instr::LoadConst { .. }
            | Instr::AbortCheck
            | Instr::Jump { .. } => {}
        }
        out
    }

    /// Rewrites every used variable through `f` (defs untouched).
    pub fn map_uses(&mut self, f: &mut dyn FnMut(VarId) -> VarId) {
        let mut map_op = |o: &mut Operand| {
            if let Operand::Var(v) = o {
                *v = f(*v);
            }
        };
        match self {
            Instr::Copy { src, .. } => {
                let mut o = Operand::Var(*src);
                map_op(&mut o);
                *src = o.as_var().expect("var stays var");
            }
            Instr::Call { callee, args, .. } => {
                if let Callee::Value(v) = callee {
                    let mut o = Operand::Var(*v);
                    map_op(&mut o);
                    *v = o.as_var().expect("var stays var");
                }
                for a in args {
                    map_op(a);
                }
            }
            Instr::MakeClosure { captures, .. } => {
                for c in captures {
                    map_op(c);
                }
            }
            Instr::Phi { incoming, .. } => {
                for (_, o) in incoming {
                    map_op(o);
                }
            }
            Instr::MemoryAcquire { var } | Instr::MemoryRelease { var } => {
                let mut o = Operand::Var(*var);
                map_op(&mut o);
                *var = o.as_var().expect("var stays var");
            }
            Instr::Branch { cond, .. } => map_op(cond),
            Instr::Return { value } => map_op(value),
            Instr::LoadArgument { .. }
            | Instr::LoadConst { .. }
            | Instr::AbortCheck
            | Instr::Jump { .. } => {}
        }
    }

    /// Whether this is a block terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jump { .. } | Instr::Branch { .. } | Instr::Return { .. }
        )
    }

    /// Successor blocks of a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Instr::Jump { target } => vec![*target],
            Instr::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            _ => Vec::new(),
        }
    }

    /// Whether the instruction is pure (no side effects, safe for CSE).
    pub fn is_pure(&self) -> bool {
        match self {
            Instr::LoadArgument { .. }
            | Instr::LoadConst { .. }
            | Instr::Copy { .. }
            | Instr::Phi { .. }
            | Instr::MakeClosure { .. } => true,
            Instr::Call { callee, .. } => match callee {
                Callee::Builtin(name) => pure_builtin(name),
                Callee::Primitive(name) => pure_primitive(name),
                _ => false,
            },
            _ => false,
        }
    }

    /// Whether a *dead* instance may be deleted. Stricter than
    /// [`Instr::is_pure`]: checked arithmetic, `Part`, `Dot` etc. are pure
    /// (CSE may merge two identical instances — if one traps, the
    /// dominating one traps the same way) but **partial** — they raise
    /// `DivideByZero`/`IntegerOverflow`/`PartOutOfRange` on some inputs.
    /// The interpreter evaluates dead code and raises; deleting the
    /// trapping instruction would make compiled code disagree with it
    /// (found by the differential fuzzer: `v = Quotient[x, 0]` with `v`
    /// never read returned normally under the native engine).
    pub fn is_removable(&self) -> bool {
        match self {
            Instr::LoadArgument { .. }
            | Instr::LoadConst { .. }
            | Instr::Copy { .. }
            | Instr::Phi { .. }
            | Instr::MakeClosure { .. } => true,
            Instr::Call { callee, .. } => match callee {
                Callee::Builtin(name) => total_builtin(name),
                Callee::Primitive(name) => total_primitive(name),
                _ => false,
            },
            _ => false,
        }
    }
}

/// Wolfram builtins that are pure at the WIR level.
pub fn pure_builtin(name: &str) -> bool {
    matches!(
        name,
        "Plus"
            | "Times"
            | "Subtract"
            | "Divide"
            | "Minus"
            | "Power"
            | "Mod"
            | "Quotient"
            | "Abs"
            | "Sign"
            | "Min"
            | "Max"
            | "Floor"
            | "Ceiling"
            | "Round"
            | "Sqrt"
            | "Exp"
            | "Log"
            | "Sin"
            | "Cos"
            | "Tan"
            | "ArcTan"
            | "Re"
            | "Im"
            | "Conjugate"
            | "Equal"
            | "Unequal"
            | "Less"
            | "Greater"
            | "LessEqual"
            | "GreaterEqual"
            | "SameQ"
            | "UnsameQ"
            | "Not"
            | "And"
            | "Or"
            | "Length"
            | "Part"
            | "StringLength"
            | "StringJoin"
            | "ToCharacterCode"
            | "FromCharacterCode"
            | "EvenQ"
            | "OddQ"
            | "BitAnd"
            | "BitOr"
            | "BitXor"
            | "BitShiftLeft"
            | "BitShiftRight"
            | "List"
            | "Dot"
            | "N"
            | "Boole"
    )
}

/// Runtime primitives that are pure (mangled names start with these bases).
pub fn pure_primitive(name: &str) -> bool {
    const PURE_BASES: &[&str] = &[
        "checked_binary_plus",
        "checked_binary_times",
        "checked_binary_subtract",
        "checked_binary_divide",
        "checked_binary_power",
        "checked_binary_mod",
        "checked_binary_quotient",
        "checked_unary_minus",
        "checked_unary_abs",
        "binary_", // binary_min, binary_max, comparisons
        "unary_",  // unary_sin, unary_cos, ...
        "compare_",
        "string_length",
        "string_byte",
        "tensor_length",
        "tensor_part",
        "tensor_dimensions",
        "list_construct",
        "convert_",
        "boole",
        "dot_",
    ];
    PURE_BASES.iter().any(|base| name.starts_with(base))
}

/// Builtins that are pure *and total* — they cannot raise a runtime error
/// on any well-typed input, so a dead instance may be removed. Checked
/// arithmetic (overflow), division (zero), `Part` (range), `Dot` (shape)
/// are deliberately absent.
pub fn total_builtin(name: &str) -> bool {
    matches!(
        name,
        "Min"
            | "Max"
            | "Sign"
            | "Sin"
            | "Cos"
            | "Tan"
            | "ArcTan"
            | "Re"
            | "Im"
            | "Conjugate"
            | "Equal"
            | "Unequal"
            | "Less"
            | "Greater"
            | "LessEqual"
            | "GreaterEqual"
            | "SameQ"
            | "UnsameQ"
            | "Not"
            | "And"
            | "Or"
            | "Length"
            | "StringLength"
            | "EvenQ"
            | "OddQ"
            | "BitAnd"
            | "BitOr"
            | "BitXor"
            | "List"
            | "N"
            | "Boole"
    )
}

/// Runtime primitives that are pure and total (see [`total_builtin`]).
pub fn total_primitive(name: &str) -> bool {
    const TOTAL_BASES: &[&str] = &[
        "binary_min",
        "binary_max",
        "binary_arctan2",
        "compare_",
        "unary_not",
        "unary_sin",
        "unary_cos",
        "unary_tan",
        "unary_exp",
        "unary_sign",
        "logical_and",
        "logical_or",
        "string_length",
        "tensor_length",
        "tensor_dimensions",
        "boole",
    ];
    TOTAL_BASES.iter().any(|base| name.starts_with(base))
}

/// A basic block: instructions ending in exactly one terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Readable label (`start`, `loop-head`, ...).
    pub label: String,
    /// The instructions, terminator last.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// The terminator, if the block is complete.
    pub fn terminator(&self) -> Option<&Instr> {
        self.instrs.last().filter(|i| i.is_terminator())
    }
}

/// Function-level metadata mirroring the paper's dump header
/// (`Main::Information={"inlineInformation" -> ...}`).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    /// Inlining hint.
    pub inline_value: InlineValue,
    /// Whether the body is trivial (single block, few instructions).
    pub is_trivial: bool,
    /// Whether any argument may alias another.
    pub argument_alias: bool,
    /// Profiling instrumentation enabled.
    pub profile: bool,
    /// Whether abort handling is enabled for this function.
    pub abort_handling: bool,
}

impl Default for FunctionInfo {
    fn default() -> Self {
        FunctionInfo {
            inline_value: InlineValue::Automatic,
            is_trivial: false,
            argument_alias: false,
            profile: false,
            abort_handling: true,
        }
    }
}

/// Inline hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineValue {
    /// Compiler decides.
    Automatic,
    /// Never inline.
    Never,
    /// Users marked it "to be forcibly inlined" (§4.5).
    Always,
}

/// A function module: a DAG of basic blocks in SSA form.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The (possibly mangled) function name.
    pub name: String,
    /// Source-level parameter names.
    pub param_names: Vec<String>,
    /// Number of parameters.
    pub arity: usize,
    /// Basic blocks; `BlockId(n)` indexes this vector.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Next unused variable number.
    pub next_var: u32,
    /// Type annotations. When every variable that appears is annotated the
    /// function is a TWIR (§4.5).
    pub var_types: HashMap<VarId, Type>,
    /// The declared return type, once inferred.
    pub return_type: Option<Type>,
    /// MExpr provenance per variable ("used during error reporting and ...
    /// to generate debug symbols").
    pub provenance: HashMap<VarId, Expr>,
    /// Function metadata.
    pub info: FunctionInfo,
}

impl Function {
    /// An empty function shell.
    pub fn new(name: &str, arity: usize) -> Self {
        Function {
            name: name.to_owned(),
            param_names: (0..arity).map(|i| format!("arg{i}")).collect(),
            arity,
            blocks: Vec::new(),
            entry: BlockId(0),
            next_var: 0,
            var_types: HashMap::new(),
            return_type: None,
            provenance: HashMap::new(),
            info: FunctionInfo::default(),
        }
    }

    /// Allocates a fresh SSA variable.
    pub fn fresh_var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    /// Accesses a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutably accesses a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The annotated type of a variable.
    pub fn var_type(&self, v: VarId) -> Option<&Type> {
        self.var_types.get(&v)
    }

    /// Whether every defined variable carries a concrete type annotation —
    /// i.e. this is a TWIR function ready for code generation (§4.6:
    /// "a compile error is issued if any variable type is missing").
    pub fn is_fully_typed(&self) -> bool {
        self.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .all(|i| match i.def() {
                Some(v) => self.var_types.get(&v).is_some_and(Type::is_concrete),
                None => true,
            })
    }

    /// Total instruction count.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Iterates all instructions.
    pub fn instrs(&self) -> impl Iterator<Item = &Instr> {
        self.blocks.iter().flat_map(|b| b.instrs.iter())
    }
}

/// A program module: a collection of function modules plus global
/// metadata (§4.3).
#[derive(Debug, Clone, Default)]
pub struct ProgramModule {
    /// The functions; `FuncId(n)` indexes this vector. Index 0 is `Main`.
    pub functions: Vec<Function>,
    /// Global metadata strings.
    pub metadata: Vec<(String, String)>,
}

impl ProgramModule {
    /// A module containing just `main`.
    pub fn with_main(main: Function) -> Self {
        ProgramModule {
            functions: vec![main],
            metadata: Vec::new(),
        }
    }

    /// The entry function.
    pub fn main(&self) -> &Function {
        &self.functions[0]
    }

    /// Mutable entry function.
    pub fn main_mut(&mut self) -> &mut Function {
        &mut self.functions[0]
    }

    /// Finds a function by name.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|ix| FuncId(ix as u32))
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        FuncId(self.functions.len() as u32 - 1)
    }

    /// Accesses a function by id.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let i = Instr::Call {
            dst: VarId(3),
            callee: Callee::Builtin(Arc::from("Plus")),
            args: vec![VarId(1).into(), Constant::I64(1).into()],
        };
        assert_eq!(i.def(), Some(VarId(3)));
        assert_eq!(i.uses(), vec![VarId(1)]);
        assert!(i.is_pure());
        let ret = Instr::Return {
            value: VarId(3).into(),
        };
        assert_eq!(ret.def(), None);
        assert_eq!(ret.uses(), vec![VarId(3)]);
        assert!(ret.is_terminator());
    }

    #[test]
    fn map_uses_rewrites() {
        let mut i = Instr::Phi {
            dst: VarId(5),
            incoming: vec![(BlockId(0), VarId(1).into()), (BlockId(1), VarId(2).into())],
        };
        i.map_uses(&mut |v| VarId(v.0 + 10));
        assert_eq!(i.uses(), vec![VarId(11), VarId(12)]);
    }

    #[test]
    fn purity_classification() {
        let pure = Instr::Call {
            dst: VarId(0),
            callee: Callee::Primitive(Arc::from("checked_binary_plus_Integer64_Integer64")),
            args: vec![],
        };
        assert!(pure.is_pure());
        let kernel = Instr::Call {
            dst: VarId(0),
            callee: Callee::Kernel(Arc::from("Print")),
            args: vec![],
        };
        assert!(!kernel.is_pure());
        let indirect = Instr::Call {
            dst: VarId(0),
            callee: Callee::Value(VarId(9)),
            args: vec![],
        };
        assert!(!indirect.is_pure());
        assert_eq!(indirect.uses(), vec![VarId(9)]);
    }

    #[test]
    fn successors() {
        let b = Instr::Branch {
            cond: VarId(0).into(),
            then_block: BlockId(1),
            else_block: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(
            Instr::Jump { target: BlockId(7) }.successors(),
            vec![BlockId(7)]
        );
    }

    #[test]
    fn module_functions() {
        let mut m = ProgramModule::with_main(Function::new("Main", 1));
        let id = m.add_function(Function::new("helper", 0));
        assert_eq!(m.find("helper"), Some(id));
        assert_eq!(m.find("Main"), Some(FuncId(0)));
        assert!(m.find("nope").is_none());
        assert_eq!(m.function(id).name, "helper");
    }

    #[test]
    fn constant_types() {
        assert_eq!(Constant::I64(1).ty(), Type::integer64());
        assert_eq!(Constant::Str(Arc::from("s")).ty(), Type::string());
        assert_eq!(
            Constant::I64Array(Arc::from([1i64, 2].as_slice())).ty(),
            Type::tensor(Type::integer64(), 1)
        );
    }
}
