//! WIR: the Wolfram compiler's SSA intermediate representation (§4.3) and
//! its typed form TWIR (§4.5).
//!
//! "The WIR structure is inspired by the LLVM IR. A sequence of
//! instructions form a basic block, a DAG of basic blocks represent a
//! function module, and a collection of function modules form a program
//! module." Design goals reproduced here:
//!
//! 1. the IR has a symbolic Wolfram representation (the [`mod@print`] module
//!    emits the paper's textual format and every node can carry its
//!    originating MExpr);
//! 2. the IR represents both typed and untyped code (variables optionally
//!    carry [`wolfram_types::Type`] annotations; a fully annotated function
//!    is a TWIR);
//! 3. arbitrary metadata attaches to each node.
//!
//! Lowering goes *directly to SSA form* (Braun et al.) via [`builder`]; an
//! IR linter ([`verify`]) checks the SSA property after every pass.

pub mod analysis;
pub mod builder;
pub mod module;
pub mod passes;
pub mod print;
pub mod verify;

pub use builder::FunctionBuilder;
pub use module::{
    Block, BlockId, Callee, Constant, FuncId, Function, Instr, Operand, ProgramModule, VarId,
};
pub use passes::{run_pass, run_pipeline, FullVerifier, PassOptions, VerifyLevel};
pub use verify::{verify_function, VerifyError};
