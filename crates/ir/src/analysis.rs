//! CFG analyses: dominators (Cooper–Harvey–Kennedy, the paper's ref. 21),
//! loop nesting (refs. 13, 62), and liveness (ref. 12, used by the
//! memory-management pass, ref. 82).

use crate::module::{BlockId, Function, Instr, VarId};
use std::collections::{HashMap, HashSet};

/// Control-flow graph edges and traversal orders.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Predecessors per block (indexed by block number).
    pub preds: Vec<Vec<BlockId>>,
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Reverse postorder from the entry (unreachable blocks excluded).
    pub rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of a function.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for id in f.block_ids() {
            if let Some(t) = f.block(id).terminator() {
                for s in t.successors() {
                    succs[id.0 as usize].push(s);
                    preds[s.0 as usize].push(id);
                }
            }
        }
        // Postorder DFS from entry.
        let mut visited = vec![false; n];
        let mut post = Vec::new();
        let mut stack = vec![(f.entry, 0usize)];
        visited[f.entry.0 as usize] = true;
        while let Some(&mut (b, ref mut child)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *child < ss.len() {
                let next = ss[*child];
                *child += 1;
                if !visited[next.0 as usize] {
                    visited[next.0 as usize] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        Cfg {
            preds,
            succs,
            rpo: post,
        }
    }

    /// Blocks unreachable from the entry.
    pub fn unreachable(&self, f: &Function) -> Vec<BlockId> {
        let reachable: HashSet<BlockId> = self.rpo.iter().copied().collect();
        f.block_ids().filter(|b| !reachable.contains(b)).collect()
    }
}

/// Immediate-dominator tree.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator; entry maps to itself.
    idom: HashMap<BlockId, BlockId>,
}

impl Dominators {
    /// Cooper–Harvey–Kennedy iterative dominance on reverse postorder.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let mut rpo_index: HashMap<BlockId, usize> = HashMap::new();
        for (ix, b) in cfg.rpo.iter().enumerate() {
            rpo_index.insert(*b, ix);
        }
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(f.entry, f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0 as usize] {
                    if !idom.contains_key(&p) {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(p, cur, &idom, &rpo_index),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator (entry's is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (abort checks are inserted here, §4.5).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: HashSet<BlockId>,
}

/// Finds natural loops via back edges (`latch -> header` where the header
/// dominates the latch).
pub fn natural_loops(_f: &Function, cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    for &b in &cfg.rpo {
        for &succ in &cfg.succs[b.0 as usize] {
            if dom.dominates(succ, b) {
                // b -> succ is a back edge; flood backwards from the latch.
                let body = loops.entry(succ).or_default();
                body.insert(succ);
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for &p in &cfg.preds[x.0 as usize] {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    let mut out: Vec<NaturalLoop> = loops
        .into_iter()
        .map(|(header, body)| NaturalLoop { header, body })
        .collect();
    out.sort_by_key(|l| l.header);
    out
}

/// Per-block liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Variables live on entry to each block.
    pub live_in: HashMap<BlockId, HashSet<VarId>>,
    /// Variables live on exit from each block.
    pub live_out: HashMap<BlockId, HashSet<VarId>>,
}

/// Iterative backward dataflow for liveness. Phi operands count as live-out
/// of the corresponding predecessor.
pub fn liveness(f: &Function, cfg: &Cfg) -> Liveness {
    let mut live_in: HashMap<BlockId, HashSet<VarId>> = HashMap::new();
    let mut live_out: HashMap<BlockId, HashSet<VarId>> = HashMap::new();
    // use/def per block (phi uses attributed to predecessors).
    let mut phi_uses: HashMap<BlockId, HashSet<VarId>> = HashMap::new();
    for id in f.block_ids() {
        for i in &f.block(id).instrs {
            if let Instr::Phi { incoming, .. } = i {
                for (pred, op) in incoming {
                    if let Some(v) = op.as_var() {
                        phi_uses.entry(*pred).or_default().insert(v);
                    }
                }
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo.iter().rev() {
            let mut out: HashSet<VarId> = phi_uses.get(&b).cloned().unwrap_or_default();
            for &s in &cfg.succs[b.0 as usize] {
                if let Some(s_in) = live_in.get(&s) {
                    out.extend(s_in.iter().copied());
                }
            }
            let mut inset = out.clone();
            for i in f.block(b).instrs.iter().rev() {
                if let Some(d) = i.def() {
                    inset.remove(&d);
                }
                if !matches!(i, Instr::Phi { .. }) {
                    for u in i.uses() {
                        inset.insert(u);
                    }
                }
            }
            // Phi defs are live-in-producing at block start; keep them out
            // of live_in (they are defined at the block head).
            if live_out.get(&b) != Some(&out) {
                live_out.insert(b, out);
                changed = true;
            }
            if live_in.get(&b) != Some(&inset) {
                live_in.insert(b, inset);
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// A linear instruction numbering (RPO, block-major) plus per-variable live
/// intervals `[def_point, last_live_point]` — the "live intervals" the
/// memory-management pass brackets with acquire/release (§4.5).
#[derive(Debug, Clone)]
pub struct LiveIntervals {
    /// Global point of each (block, instr index).
    pub point: HashMap<(BlockId, usize), usize>,
    /// Interval per variable.
    pub intervals: HashMap<VarId, (usize, usize)>,
}

/// Computes conservative live intervals over an RPO numbering.
pub fn live_intervals(f: &Function, cfg: &Cfg) -> LiveIntervals {
    let live = liveness(f, cfg);
    let mut point = HashMap::new();
    let mut counter = 0usize;
    let mut block_range: HashMap<BlockId, (usize, usize)> = HashMap::new();
    for &b in &cfg.rpo {
        let start = counter;
        for ix in 0..f.block(b).instrs.len() {
            point.insert((b, ix), counter);
            counter += 1;
        }
        block_range.insert(b, (start, counter.saturating_sub(1)));
    }
    let mut intervals: HashMap<VarId, (usize, usize)> = HashMap::new();
    let mut extend = |v: VarId, p: usize| {
        let e = intervals.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for &b in &cfg.rpo {
        let (bstart, bend) = block_range[&b];
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            let p = point[&(b, ix)];
            if let Some(d) = i.def() {
                extend(d, p);
            }
            for u in i.uses() {
                extend(u, p);
            }
        }
        // Variables live across the block span it entirely.
        for &v in live.live_out.get(&b).iter().flat_map(|s| s.iter()) {
            extend(v, bend);
        }
        for &v in live.live_in.get(&b).iter().flat_map(|s| s.iter()) {
            extend(v, bstart);
        }
    }
    LiveIntervals { point, intervals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::{Callee, Constant};
    use std::sync::Arc;

    /// Builds the canonical while-loop function used across these tests.
    fn loop_function() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: n, index: 0 });
        b.write_var("i", Constant::I64(0));
        let header = b.create_block("head");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let i0 = b.read_var("i").unwrap();
        let c = b.call(Callee::Builtin(Arc::from("Less")), vec![i0, n.into()]);
        b.branch(c, body, exit);
        b.seal_block(body);
        b.switch_to(body);
        let i1 = b.read_var("i").unwrap();
        let inc = b.call(
            Callee::Builtin(Arc::from("Plus")),
            vec![i1, Constant::I64(1).into()],
        );
        b.write_var("i", inc);
        b.jump(header);
        b.seal_block(header);
        b.seal_block(exit);
        b.switch_to(exit);
        let iout = b.read_var("i").unwrap();
        b.ret(iout);
        b.finish()
    }

    #[test]
    fn cfg_and_rpo() {
        let f = loop_function();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo[0], f.entry);
        assert_eq!(cfg.rpo.len(), 4);
        assert!(cfg.unreachable(&f).is_empty());
        // header has two predecessors: entry and body.
        assert_eq!(cfg.preds[1].len(), 2);
    }

    #[test]
    fn dominators_of_loop() {
        let f = loop_function();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let (entry, header, body, exit) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert_eq!(dom.idom(body), Some(header));
    }

    #[test]
    fn loops_found() {
        let f = loop_function();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let loops = natural_loops(&f, &cfg, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        assert!(loops[0].body.contains(&BlockId(2)));
        assert!(!loops[0].body.contains(&BlockId(3)));
    }

    #[test]
    fn liveness_across_loop() {
        let f = loop_function();
        let cfg = Cfg::new(&f);
        let live = liveness(&f, &cfg);
        // The argument n (VarId 0) is live into the loop header and body.
        assert!(live.live_in[&BlockId(1)].contains(&VarId(0)));
        assert!(live.live_in[&BlockId(2)].contains(&VarId(0)));
        // Nothing is live out of the exit block.
        assert!(live
            .live_out
            .get(&BlockId(3))
            .map(|s| s.is_empty())
            .unwrap_or(true));
    }

    #[test]
    fn intervals_cover_defs_and_uses() {
        let f = loop_function();
        let cfg = Cfg::new(&f);
        let intervals = live_intervals(&f, &cfg);
        let (start, end) = intervals.intervals[&VarId(0)];
        assert!(start < end);
        // n is used in the header each iteration: interval reaches at least
        // into the loop body region.
        assert!(end >= intervals.point[&(BlockId(2), 0)]);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("g", 0);
        b.ret(Constant::I64(1));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        assert!(natural_loops(&f, &cfg, &dom).is_empty());
    }
}
