//! IR passes (§4.3, §4.5).
//!
//! "Optimizations on the control flow graph (dead-branch deletion, basic
//! block fusion, etc.) ... are safe to perform on the WIR"; "Traditional
//! compiler optimizations such as: sparse conditional constant propagation,
//! common subexpression elimination, dead code elimination, etc. are ...
//! safe to perform on the TWIR". Each pass is registered by name so users
//! can toggle passes at `FunctionCompile` time (§4.7) — the ablation
//! benchmarks rely on this.

use crate::analysis::{liveness, natural_loops, Cfg, Dominators};
use crate::module::{Block, BlockId, Callee, Constant, Function, Instr, Operand, VarId};
use crate::verify::{verify_function, VerifyError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use wolfram_types::Type;

/// How much verification `run_pipeline` performs after each pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyLevel {
    /// No per-pass verification (release benchmark runs).
    Off,
    /// The bare SSA linter (`verify_function`) after each pass.
    Ssa,
    /// SSA linter plus the injected semantic checker (`full_check`) —
    /// typically the `wolfram-analyze` type + refcount verifiers.
    Full,
}

/// A semantic checker injected into the pipeline at `VerifyLevel::Full`.
/// Lives behind a function pointer because `wolfram-ir` cannot depend on
/// the analyzer crate (it depends on us).
pub type FullVerifier = Arc<dyn Fn(&Function) -> Result<(), VerifyError>>;

/// Options controlling the standard pipeline.
#[derive(Clone)]
pub struct PassOptions {
    /// Optimization level: 0 disables the optimizing passes.
    pub optimization_level: u8,
    /// Insert abort checks at loop headers and prologues (F3).
    pub abort_handling: bool,
    /// Insert `MemoryAcquire`/`MemoryRelease` around live intervals (F7).
    pub memory_management: bool,
    /// Pass names explicitly disabled (for ablations).
    pub disabled: HashSet<String>,
    /// Per-pass verification level (the linter).
    pub verify: VerifyLevel,
    /// Extra semantic checker run at `VerifyLevel::Full`.
    pub full_check: Option<FullVerifier>,
}

impl std::fmt::Debug for PassOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassOptions")
            .field("optimization_level", &self.optimization_level)
            .field("abort_handling", &self.abort_handling)
            .field("memory_management", &self.memory_management)
            .field("disabled", &self.disabled)
            .field("verify", &self.verify)
            .field("full_check", &self.full_check.is_some())
            .finish()
    }
}

impl Default for PassOptions {
    fn default() -> Self {
        PassOptions {
            optimization_level: 1,
            abort_handling: true,
            memory_management: true,
            disabled: HashSet::new(),
            verify: VerifyLevel::Ssa,
            full_check: None,
        }
    }
}

/// The optimizing passes, in pipeline order.
pub const OPT_PASSES: &[&str] = &[
    "constant-fold",
    "cse",
    "copy-propagation",
    "dce",
    "simplify-cfg",
];

/// Runs a single pass by name. Returns whether anything changed.
///
/// # Errors
///
/// Propagates linter failures when the pass breaks SSA.
pub fn run_pass(name: &str, f: &mut Function) -> Result<bool, VerifyError> {
    let changed = match name {
        "constant-fold" => constant_fold(f),
        "cse" => cse(f),
        "copy-propagation" => copy_propagation(f),
        "dce" => dce(f),
        "simplify-cfg" => simplify_cfg(f),
        "abort-insertion" => abort_insertion(f),
        "memory-management" => memory_management(f),
        other => return Err(VerifyError(format!("unknown pass `{other}`"))),
    };
    Ok(changed)
}

/// Runs the standard pipeline (optimizations to fixpoint, then abort and
/// memory-management insertion). Returns the names of passes that ran.
///
/// # Errors
///
/// Propagates linter failures.
pub fn run_pipeline(f: &mut Function, opts: &PassOptions) -> Result<Vec<String>, VerifyError> {
    let mut ran = Vec::new();
    let step = |name: &str, f: &mut Function, ran: &mut Vec<String>| -> Result<(), VerifyError> {
        if opts.disabled.contains(name) {
            return Ok(());
        }
        if run_pass(name, f)? {
            ran.push(name.to_owned());
        }
        let anchor = |e: VerifyError| {
            VerifyError(format!(
                "function `{}`, after pass `{name}`: {}",
                f.name, e.0
            ))
        };
        if opts.verify != VerifyLevel::Off {
            verify_function(f).map_err(anchor)?;
        }
        if opts.verify == VerifyLevel::Full {
            if let Some(check) = &opts.full_check {
                check(f).map_err(anchor)?;
            }
        }
        Ok(())
    };
    if opts.optimization_level > 0 {
        for _round in 0..3 {
            let before = ran.len();
            for name in OPT_PASSES {
                step(name, f, &mut ran)?;
            }
            if ran.len() == before {
                break;
            }
        }
    }
    if opts.abort_handling && f.info.abort_handling {
        step("abort-insertion", f, &mut ran)?;
    }
    if opts.memory_management {
        step("memory-management", f, &mut ran)?;
    }
    Ok(ran)
}

// ---------------------------------------------------------------------
// Constant folding + dead-branch deletion (SCCP-flavored).
// ---------------------------------------------------------------------

/// Evaluates a pure builtin over constant arguments. Folding never hides a
/// runtime numeric exception: overflowing integer ops return `None` so the
/// soft-failure path (F2) still happens at run time.
pub fn eval_const_builtin(name: &str, args: &[Constant]) -> Option<Constant> {
    use Constant as C;
    let i2 = || match args {
        [C::I64(a), C::I64(b)] => Some((*a, *b)),
        _ => None,
    };
    let f2 = || match args {
        [C::F64(a), C::F64(b)] => Some((*a, *b)),
        [C::I64(a), C::F64(b)] => Some((*a as f64, *b)),
        [C::F64(a), C::I64(b)] => Some((*a, *b as f64)),
        _ => None,
    };
    let num2 = |fi: fn(i64, i64) -> Option<i64>, ff: fn(f64, f64) -> f64| {
        if let Some((a, b)) = i2() {
            return fi(a, b).map(C::I64);
        }
        f2().map(|(a, b)| C::F64(ff(a, b)))
    };
    let cmp = |ok: fn(std::cmp::Ordering) -> bool| -> Option<Constant> {
        if let Some((a, b)) = i2() {
            return Some(C::Bool(ok(a.cmp(&b))));
        }
        let (a, b) = f2()?;
        a.partial_cmp(&b).map(|o| C::Bool(ok(o)))
    };
    match name {
        "Plus" => num2(i64::checked_add, |a, b| a + b),
        "Subtract" => num2(i64::checked_sub, |a, b| a - b),
        "Times" => num2(i64::checked_mul, |a, b| a * b),
        "Quotient" => {
            let (a, b) = i2()?;
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            // Exact floor division: Quotient[m, n] = Floor[m/n].
            let (q, r) = (a / b, a % b);
            Some(C::I64(if r != 0 && (r < 0) != (b < 0) {
                q - 1
            } else {
                q
            }))
        }
        "Mod" => {
            let (a, b) = i2()?;
            if b == 0 {
                return None;
            }
            let r = a.wrapping_rem(b);
            Some(C::I64(if r != 0 && (r < 0) != (b < 0) {
                r + b
            } else {
                r
            }))
        }
        "Divide" => {
            let (a, b) = f2()?;
            (b != 0.0).then(|| C::F64(a / b))
        }
        "Minus" => match args {
            [C::I64(a)] => a.checked_neg().map(C::I64),
            [C::F64(a)] => Some(C::F64(-a)),
            _ => None,
        },
        "Abs" => match args {
            [C::I64(a)] => a.checked_abs().map(C::I64),
            [C::F64(a)] => Some(C::F64(a.abs())),
            _ => None,
        },
        "Power" => match args {
            [C::I64(a), C::I64(b)] if *b >= 0 => u32::try_from(*b)
                .ok()
                .and_then(|e| a.checked_pow(e))
                .map(C::I64),
            _ => {
                let (a, b) = f2()?;
                Some(C::F64(a.powf(b)))
            }
        },
        "Less" => cmp(std::cmp::Ordering::is_lt),
        "Greater" => cmp(std::cmp::Ordering::is_gt),
        "LessEqual" => cmp(std::cmp::Ordering::is_le),
        "GreaterEqual" => cmp(std::cmp::Ordering::is_ge),
        "Equal" => cmp(std::cmp::Ordering::is_eq),
        "Unequal" => cmp(std::cmp::Ordering::is_ne),
        "Not" => match args {
            [C::Bool(b)] => Some(C::Bool(!b)),
            _ => None,
        },
        "Min" => num2(|a, b| Some(a.min(b)), f64::min),
        "Max" => num2(|a, b| Some(a.max(b)), f64::max),
        "Sin" | "Cos" | "Tan" | "Exp" | "Sqrt" | "Log" => match args {
            [C::F64(a)] => {
                let v = match name {
                    "Sin" => a.sin(),
                    "Cos" => a.cos(),
                    "Tan" => a.tan(),
                    "Exp" => a.exp(),
                    "Sqrt" => a.sqrt(),
                    _ => a.ln(),
                };
                v.is_finite().then_some(C::F64(v))
            }
            _ => None,
        },
        "N" => match args {
            [C::I64(a)] => Some(C::F64(*a as f64)),
            [C::F64(a)] => Some(C::F64(*a)),
            _ => None,
        },
        "StringLength" => match args {
            [C::Str(s)] => Some(C::I64(s.chars().count() as i64)),
            _ => None,
        },
        "StringJoin" => {
            let mut out = String::new();
            for a in args {
                match a {
                    C::Str(s) => out.push_str(s),
                    _ => return None,
                }
            }
            Some(C::Str(out.into()))
        }
        _ => None,
    }
}

/// Folds constants through calls and branches; dead branches become jumps.
fn constant_fold(f: &mut Function) -> bool {
    let mut changed = false;
    // Known constants per variable.
    let mut consts: HashMap<VarId, Constant> = HashMap::new();
    for b in f.block_ids() {
        for i in &f.block(b).instrs {
            if let Instr::LoadConst { dst, value } = i {
                consts.insert(*dst, value.clone());
            }
        }
    }
    // Iterate to a local fixed point.
    loop {
        let mut local_change = false;
        for b in 0..f.blocks.len() {
            let block = &mut f.blocks[b];
            for i in block.instrs.iter_mut() {
                // Forward constants into operands.
                let forward = |o: &mut Operand| {
                    if let Operand::Var(v) = o {
                        if let Some(c) = consts.get(v) {
                            *o = Operand::Const(c.clone());
                            return true;
                        }
                    }
                    false
                };
                match i {
                    Instr::Call { args, .. } => {
                        for a in args.iter_mut() {
                            local_change |= forward(a);
                        }
                    }
                    Instr::Branch { cond, .. } => {
                        local_change |= forward(cond);
                    }
                    Instr::Return { value } => {
                        local_change |= forward(value);
                    }
                    Instr::Phi { incoming, .. } => {
                        for (_, o) in incoming.iter_mut() {
                            local_change |= forward(o);
                        }
                    }
                    Instr::MakeClosure { captures, .. } => {
                        for c in captures.iter_mut() {
                            local_change |= forward(c);
                        }
                    }
                    Instr::Copy { dst, src } => {
                        if let Some(c) = consts.get(src).cloned() {
                            consts.insert(*dst, c.clone());
                            *i = Instr::LoadConst {
                                dst: *dst,
                                value: c,
                            };
                            local_change = true;
                        }
                    }
                    _ => {}
                }
                // Fold fully-constant pure calls.
                if let Instr::Call { dst, callee, args } = i {
                    let foldable = matches!(callee, Callee::Builtin(_) | Callee::Primitive(_));
                    if foldable {
                        let const_args: Option<Vec<Constant>> =
                            args.iter().map(|a| a.as_const().cloned()).collect();
                        if let Some(const_args) = const_args {
                            let folded = match callee {
                                Callee::Builtin(name) => eval_const_builtin(name, &const_args),
                                Callee::Primitive(name) => primitive_base(name)
                                    .and_then(|base| eval_const_builtin(base, &const_args)),
                                _ => None,
                            };
                            if let Some(c) = folded {
                                consts.insert(*dst, c.clone());
                                *i = Instr::LoadConst {
                                    dst: *dst,
                                    value: c,
                                };
                                local_change = true;
                            }
                        }
                    }
                }
                // Phi with all-identical constant incoming.
                if let Instr::Phi { dst, incoming } = i {
                    if let Some(first) = incoming.first().and_then(|(_, o)| o.as_const()) {
                        let first = first.clone();
                        if !incoming.is_empty()
                            && incoming.iter().all(|(_, o)| o.as_const() == Some(&first))
                        {
                            consts.insert(*dst, first.clone());
                            *i = Instr::LoadConst {
                                dst: *dst,
                                value: first,
                            };
                            local_change = true;
                        }
                    }
                }
            }
            // Dead-branch deletion.
            if let Some(Instr::Branch {
                cond: Operand::Const(c),
                then_block,
                else_block,
            }) = block.instrs.last().cloned()
            {
                let taken = match c {
                    Constant::Bool(true) => Some(then_block),
                    Constant::Bool(false) => Some(else_block),
                    _ => None,
                };
                if let Some(t) = taken {
                    *block.instrs.last_mut().expect("terminator") = Instr::Jump { target: t };
                    local_change = true;
                }
            }
        }
        changed |= local_change;
        if !local_change {
            break;
        }
    }
    if changed {
        prune_phis(f);
    }
    changed
}

/// Maps a mangled primitive name back to its builtin base for folding
/// (`checked_binary_plus_Integer64_Integer64` -> `Plus`).
fn primitive_base(name: &str) -> Option<&'static str> {
    const MAP: &[(&str, &str)] = &[
        ("checked_binary_plus", "Plus"),
        ("checked_binary_subtract", "Subtract"),
        ("checked_binary_times", "Times"),
        ("checked_binary_divide", "Divide"),
        ("checked_binary_power", "Power"),
        ("checked_binary_mod", "Mod"),
        ("checked_binary_quotient", "Quotient"),
        ("checked_unary_minus", "Minus"),
        ("checked_unary_abs", "Abs"),
        ("compare_less", "Less"),
        ("compare_greater_equal", "GreaterEqual"),
        ("compare_greater", "Greater"),
        ("compare_less_equal", "LessEqual"),
        ("compare_equal", "Equal"),
        ("compare_unequal", "Unequal"),
        ("binary_min", "Min"),
        ("binary_max", "Max"),
        ("unary_not", "Not"),
        ("unary_sin", "Sin"),
        ("unary_cos", "Cos"),
        ("unary_tan", "Tan"),
        ("unary_exp", "Exp"),
        ("unary_sqrt", "Sqrt"),
        ("unary_log", "Log"),
        ("string_length", "StringLength"),
    ];
    // Longest match wins: `compare_less_equal_…` must resolve to LessEqual,
    // not to the `compare_less` prefix it also starts with. (Found by
    // wolfram-difftest: the short-prefix fold turned `1 <= 1` into False.)
    MAP.iter()
        .filter(|(base, _)| name.starts_with(base))
        .max_by_key(|(base, _)| base.len())
        .map(|(_, b)| *b)
}

/// Recomputes predecessor sets and prunes phi incoming lists accordingly;
/// single-entry phis degrade to copies.
pub fn prune_phis(f: &mut Function) {
    let cfg = Cfg::new(f);
    let reachable: HashSet<BlockId> = cfg.rpo.iter().copied().collect();
    for b in f.block_ids().collect::<Vec<_>>() {
        let preds: HashSet<BlockId> = cfg.preds[b.0 as usize]
            .iter()
            .copied()
            .filter(|p| reachable.contains(p))
            .collect();
        let block = f.block_mut(b);
        for i in block.instrs.iter_mut() {
            if let Instr::Phi { dst, incoming } = i {
                incoming.retain(|(p, _)| preds.contains(p));
                if incoming.len() == 1 {
                    let (_, op) = incoming.pop().expect("len checked");
                    *i = match op {
                        Operand::Var(src) => Instr::Copy { dst: *dst, src },
                        Operand::Const(c) => Instr::LoadConst {
                            dst: *dst,
                            value: c,
                        },
                    };
                }
            }
        }
        // Copies may now sit between phis; that is fine for the verifier
        // (phis must only be a prefix — reorder to keep phis first).
        let (phis, rest): (Vec<Instr>, Vec<Instr>) = block
            .instrs
            .drain(..)
            .partition(|i| matches!(i, Instr::Phi { .. }));
        block.instrs = phis;
        block.instrs.extend(rest);
    }
}

// ---------------------------------------------------------------------
// Common subexpression elimination (dominator-scoped).
// ---------------------------------------------------------------------

fn cse(f: &mut Function) -> bool {
    let cfg = Cfg::new(f);
    let dom = Dominators::new(f, &cfg);
    // Dominator-tree preorder.
    let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for &b in &cfg.rpo {
        if b != f.entry {
            if let Some(p) = dom.idom(b) {
                children.entry(p).or_default().push(b);
            }
        }
    }
    let mut changed = false;
    let mut available: HashMap<String, VarId> = HashMap::new();
    let mut replaced: HashMap<VarId, VarId> = HashMap::new();
    fn visit(
        b: BlockId,
        f: &mut Function,
        children: &HashMap<BlockId, Vec<BlockId>>,
        available: &mut HashMap<String, VarId>,
        replaced: &mut HashMap<VarId, VarId>,
        changed: &mut bool,
    ) {
        let mut added = Vec::new();
        for ix in 0..f.block(b).instrs.len() {
            let mut instr = f.block(b).instrs[ix].clone();
            instr.map_uses(&mut |v| *replaced.get(&v).unwrap_or(&v));
            if instr.is_pure() && !matches!(instr, Instr::Phi { .. }) {
                if let (Some(dst), Some(key)) = (instr.def(), instr_key(&instr)) {
                    if let Some(&prev) = available.get(&key) {
                        replaced.insert(dst, prev);
                        f.block_mut(b).instrs[ix] = Instr::Copy { dst, src: prev };
                        *changed = true;
                        continue;
                    }
                    available.insert(key.clone(), dst);
                    added.push(key);
                }
            }
            f.block_mut(b).instrs[ix] = instr;
        }
        for &c in children.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
            visit(c, f, children, available, replaced, changed);
        }
        for key in added {
            available.remove(&key);
        }
    }
    let entry = f.entry;
    visit(
        entry,
        f,
        &children,
        &mut available,
        &mut replaced,
        &mut changed,
    );
    // Apply replacements everywhere (uses in blocks not visited via the
    // original defs, e.g. phis).
    if !replaced.is_empty() {
        for b in 0..f.blocks.len() {
            for i in f.blocks[b].instrs.iter_mut() {
                i.map_uses(&mut |v| *replaced.get(&v).unwrap_or(&v));
            }
        }
    }
    changed
}

fn instr_key(i: &Instr) -> Option<String> {
    match i {
        Instr::Call { callee, args, .. } => {
            let args: Vec<String> = args
                .iter()
                .map(|a| match a {
                    Operand::Var(v) => format!("%{}", v.0),
                    Operand::Const(c) => format!("{c:?}"),
                })
                .collect();
            Some(format!("{}({})", callee.name(), args.join(",")))
        }
        Instr::LoadConst { value, .. } => Some(format!("const {value:?}")),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Copy propagation.
// ---------------------------------------------------------------------

/// Replaces *trivial* phis (all non-self incoming operands identical) with
/// copies/constant loads, to a fixed point. The direct-to-SSA builder
/// leaves these behind for values merely threaded through loops.
fn trivial_phis(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        // Resolution maps for this round: copy chains and constant loads,
        // so phi *webs* (phis referencing each other through copies)
        // collapse over successive rounds.
        let mut copy_of: HashMap<VarId, VarId> = HashMap::new();
        let mut const_of: HashMap<VarId, Constant> = HashMap::new();
        for i in f.instrs() {
            match i {
                Instr::Copy { dst, src } => {
                    copy_of.insert(*dst, *src);
                }
                Instr::LoadConst { dst, value } => {
                    const_of.insert(*dst, value.clone());
                }
                _ => {}
            }
        }
        let resolve = |o: &Operand| -> Operand {
            let mut v = match o {
                Operand::Var(v) => *v,
                c => return c.clone(),
            };
            let mut guard = 0;
            while let Some(&next) = copy_of.get(&v) {
                v = next;
                guard += 1;
                if guard > copy_of.len() {
                    break;
                }
            }
            match const_of.get(&v) {
                Some(c) => Operand::Const(c.clone()),
                None => Operand::Var(v),
            }
        };
        let mut local = false;
        for b in 0..f.blocks.len() {
            for ix in 0..f.blocks[b].instrs.len() {
                let Instr::Phi { dst, incoming } = &f.blocks[b].instrs[ix] else {
                    continue;
                };
                let dst = *dst;
                let mut unique: Option<Operand> = None;
                let mut trivial = true;
                for (_, op) in incoming {
                    let op = resolve(op);
                    if op.as_var() == Some(dst) {
                        continue; // self-reference through the backedge
                    }
                    match &unique {
                        None => unique = Some(op),
                        Some(u) if *u == op => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if !trivial {
                    continue;
                }
                let Some(op) = unique else { continue };
                f.blocks[b].instrs[ix] = match op {
                    Operand::Var(src) => Instr::Copy { dst, src },
                    Operand::Const(c) => Instr::LoadConst { dst, value: c },
                };
                local = true;
            }
            if local {
                // Keep phis as a prefix after replacement.
                let (phis, rest): (Vec<Instr>, Vec<Instr>) = f.blocks[b]
                    .instrs
                    .drain(..)
                    .partition(|i| matches!(i, Instr::Phi { .. }));
                f.blocks[b].instrs = phis;
                f.blocks[b].instrs.extend(rest);
            }
        }
        changed |= local;
        if !local {
            return changed;
        }
    }
}

/// Propagates `Copy` chains. `Copy` at this level is SSA plumbing — real
/// value copies required by mutability semantics (F5) are explicit
/// `tensor_copy` primitive calls, which this pass never touches (the
/// paper's "not generally valid to perform copy propagation" restriction).
fn copy_propagation(f: &mut Function) -> bool {
    let changed_phis = trivial_phis(f);
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    for i in f.instrs() {
        if let Instr::Copy { dst, src } = i {
            map.insert(*dst, *src);
        }
    }
    if map.is_empty() {
        return changed_phis;
    }
    let resolve = |mut v: VarId| {
        let mut guard = 0;
        while let Some(&next) = map.get(&v) {
            v = next;
            guard += 1;
            if guard > map.len() {
                break;
            }
        }
        v
    };
    let mut changed = changed_phis;
    for b in 0..f.blocks.len() {
        for i in f.blocks[b].instrs.iter_mut() {
            let before = i.clone();
            i.map_uses(&mut |v| resolve(v));
            changed |= *i != before;
        }
    }
    changed
}

// ---------------------------------------------------------------------
// Dead code elimination.
// ---------------------------------------------------------------------

fn dce(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut used: HashSet<VarId> = HashSet::new();
        for i in f.instrs() {
            for u in i.uses() {
                used.insert(u);
            }
        }
        let mut removed = false;
        for b in 0..f.blocks.len() {
            let before = f.blocks[b].instrs.len();
            f.blocks[b].instrs.retain(|i| {
                // LoadArgument defines the function's ABI (parameter slots
                // and types) and is kept even when unused.
                // `is_removable`, not `is_pure`: trapping-but-pure calls
                // (checked arithmetic, Part) must survive so dead code
                // still raises exactly the errors the interpreter raises.
                let dead = i.is_removable()
                    && !matches!(i, Instr::LoadArgument { .. })
                    && i.def().is_some_and(|d| !used.contains(&d));
                !dead
            });
            removed |= f.blocks[b].instrs.len() != before;
        }
        changed |= removed;
        if !removed {
            return changed;
        }
    }
}

// ---------------------------------------------------------------------
// CFG simplification: unreachable-block removal + basic-block fusion.
// ---------------------------------------------------------------------

fn simplify_cfg(f: &mut Function) -> bool {
    let mut changed = false;
    // Remove unreachable blocks (replace with empty tombstones to keep ids
    // stable, then prune phis).
    let cfg = Cfg::new(f);
    let reachable: HashSet<BlockId> = cfg.rpo.iter().copied().collect();
    for b in f.block_ids().collect::<Vec<_>>() {
        if !reachable.contains(&b) && !f.block(b).instrs.is_empty() {
            f.block_mut(b).instrs.clear();
            f.block_mut(b).label = "unreachable".into();
            changed = true;
        }
    }
    if changed {
        prune_phis(f);
    }
    // Block fusion: a Jump-only edge from A to B where B has exactly one
    // predecessor merges B into A.
    loop {
        let cfg = Cfg::new(f);
        let mut fused = false;
        for &a in &cfg.rpo {
            let Some(Instr::Jump { target: b }) = f.block(a).terminator().cloned() else {
                continue;
            };
            if b == a || cfg.preds[b.0 as usize].len() != 1 {
                continue;
            }
            // Phis in b with a single predecessor have been pruned already;
            // any remaining phi blocks fusion.
            if f.block(b)
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::Phi { .. }))
            {
                continue;
            }
            let mut moved = std::mem::take(&mut f.block_mut(b).instrs);
            let ablock = f.block_mut(a);
            ablock.instrs.pop(); // drop the Jump
            ablock.instrs.append(&mut moved);
            // Phi incomings in b's successors must now name a.
            let succs: Vec<BlockId> = f
                .block(a)
                .terminator()
                .map(|t| t.successors())
                .unwrap_or_default();
            for s in succs {
                for i in f.block_mut(s).instrs.iter_mut() {
                    if let Instr::Phi { incoming, .. } = i {
                        for (p, _) in incoming.iter_mut() {
                            if *p == b {
                                *p = a;
                            }
                        }
                    }
                }
            }
            fused = true;
            changed = true;
            break; // CFG changed; recompute
        }
        if !fused {
            break;
        }
    }
    changed
}

// ---------------------------------------------------------------------
// Abort-check insertion (§4.5).
// ---------------------------------------------------------------------

/// "The compiler performs analysis to compute the loops and then inserts
/// an abort check at the head of each loop. ... The compiler also inserts
/// an abort check in each function's prologue."
fn abort_insertion(f: &mut Function) -> bool {
    if f.instrs().any(|i| matches!(i, Instr::AbortCheck)) {
        return false; // already instrumented
    }
    let cfg = Cfg::new(f);
    let dom = Dominators::new(f, &cfg);
    let loops = natural_loops(f, &cfg, &dom);
    let mut targets: Vec<BlockId> = vec![f.entry];
    for l in &loops {
        if !targets.contains(&l.header) {
            targets.push(l.header);
        }
    }
    for b in targets {
        let block = f.block_mut(b);
        let after_phis = block
            .instrs
            .iter()
            .take_while(|i| matches!(i, Instr::Phi { .. }))
            .count();
        block.instrs.insert(after_phis, Instr::AbortCheck);
    }
    true
}

// ---------------------------------------------------------------------
// Memory management insertion (§4.5).
// ---------------------------------------------------------------------

/// Whether values of this type are reference counted (F7).
pub fn is_managed_type(t: &Type) -> bool {
    match t {
        Type::Atomic(name) => matches!(&**name, "String" | "Expression"),
        Type::Constructor { name, .. } => &**name == "Tensor",
        Type::Arrow { .. } => true, // function values carry captures
        _ => false,
    }
}

/// "The compiler computes the live intervals of each variable in the TWIR.
/// For each variable, a MemoryAcquire call instruction is placed at the
/// head of each interval, and MemoryRelease is placed at the tail. Both
/// ... are noop for unmanaged objects."
///
/// Placement is per-path balanced: a `MemoryAcquire` right after the def
/// and a `MemoryRelease` on the *death frontier* — after the last use in
/// the block where the value dies, or on each CFG edge leading into a
/// block where it is no longer live (splitting critical edges when the
/// value survives along a sibling edge). Every execution path from the
/// def crosses the frontier exactly once, so the refcount-balance checker
/// in `wolfram-analyze` can prove acquire/release pairing path-by-path —
/// the previous interval-endpoint bracketing leaked on diamonds and
/// over-released across loop back-edges.
fn memory_management(f: &mut Function) -> bool {
    if f.instrs().any(|i| matches!(i, Instr::MemoryAcquire { .. })) {
        return false;
    }
    let cfg = Cfg::new(f);
    let live = liveness(f, &cfg);
    let reachable: HashSet<BlockId> = cfg.rpo.iter().copied().collect();

    // Managed defs in reachable blocks: (var, def block, def index).
    let mut managed: Vec<(VarId, BlockId, usize)> = Vec::new();
    for &b in &cfg.rpo {
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            if let Some(v) = i.def() {
                if f.var_type(v).is_some_and(is_managed_type) {
                    managed.push((v, b, ix));
                }
            }
        }
    }
    if managed.is_empty() {
        return false;
    }
    managed.sort_by_key(|&(v, _, _)| v);

    let live_in = |b: BlockId, v: VarId| live.live_in.get(&b).is_some_and(|s| s.contains(&v));
    let live_out = |b: BlockId, v: VarId| live.live_out.get(&b).is_some_and(|s| s.contains(&v));

    // Planned insertions. `after` keys on the pre-insertion instruction
    // index; `at_head` lands after the phi prefix; `before_term` sits just
    // before the terminator; `on_edge` releases are materialized last,
    // either promoted to the successor's head (all-preds case) or given a
    // split block.
    let mut after: HashMap<(BlockId, usize), Vec<Instr>> = HashMap::new();
    let mut at_head: HashMap<BlockId, Vec<Instr>> = HashMap::new();
    let mut before_term: HashMap<BlockId, Vec<Instr>> = HashMap::new();
    let mut on_edge: HashMap<(BlockId, BlockId), Vec<VarId>> = HashMap::new();

    for &(v, db, dix) in &managed {
        // Acquire right after the def; phi-defined values acquire after
        // the phi prefix so verification of phi placement still holds.
        let def_is_phi = matches!(f.block(db).instrs[dix], Instr::Phi { .. });
        let acquire = Instr::MemoryAcquire { var: v };
        if def_is_phi {
            at_head.entry(db).or_default().push(acquire);
        } else {
            after.entry((db, dix)).or_default().push(acquire);
        }

        // Release on the death frontier: walk every reachable block where
        // the value is present (its def block or any block it enters).
        for &b in &cfg.rpo {
            if b != db && !live_in(b, v) {
                continue;
            }
            if live_out(b, v) {
                // Survives the block; dies on some outgoing edges.
                let mut succs: Vec<BlockId> = cfg.succs[b.0 as usize]
                    .iter()
                    .copied()
                    .filter(|s| reachable.contains(s))
                    .collect();
                succs.sort_unstable();
                succs.dedup();
                let dead: Vec<BlockId> =
                    succs.iter().copied().filter(|&s| !live_in(s, v)).collect();
                if dead.is_empty() {
                    continue;
                }
                if dead.len() == succs.len() {
                    // live_out but dead into every successor: the value's
                    // last reads are the terminator operand and/or phi
                    // operands on the outgoing edges — release just before
                    // the terminator, after those conceptual reads.
                    before_term
                        .entry(b)
                        .or_default()
                        .push(Instr::MemoryRelease { var: v });
                } else {
                    for s in dead {
                        on_edge.entry((b, s)).or_default().push(v);
                    }
                }
            } else {
                // Dies inside this block: release after the last use.
                let block = f.block(b);
                let last_use = block.instrs.iter().rposition(|i| i.uses().contains(&v));
                match last_use {
                    Some(ix) if block.instrs[ix].is_terminator() => {
                        before_term
                            .entry(b)
                            .or_default()
                            .push(Instr::MemoryRelease { var: v });
                    }
                    Some(ix) => {
                        after
                            .entry((b, ix))
                            .or_default()
                            .push(Instr::MemoryRelease { var: v });
                    }
                    None => {
                        // Defined but never used: release immediately
                        // after the acquire (b == db here).
                        let slot = if def_is_phi {
                            at_head.entry(db).or_default()
                        } else {
                            after.entry((db, dix)).or_default()
                        };
                        slot.push(Instr::MemoryRelease { var: v });
                    }
                }
            }
        }
    }

    // Edge releases: if a successor receives the release on *every*
    // reachable incoming edge, put it at the successor's head instead of
    // splitting; otherwise split each recorded edge.
    let mut splits: Vec<(BlockId, BlockId, Vec<VarId>)> = Vec::new();
    {
        let mut by_target: HashMap<(BlockId, VarId), Vec<BlockId>> = HashMap::new();
        let mut edge_keys: Vec<(BlockId, BlockId)> = on_edge.keys().copied().collect();
        edge_keys.sort_unstable();
        for (p, s) in edge_keys {
            for &v in &on_edge[&(p, s)] {
                by_target.entry((s, v)).or_default().push(p);
            }
        }
        let mut split_vars: HashMap<(BlockId, BlockId), Vec<VarId>> = HashMap::new();
        let mut targets: Vec<(BlockId, VarId)> = by_target.keys().copied().collect();
        targets.sort_unstable();
        for (s, v) in targets {
            let mut preds = by_target[&(s, v)].clone();
            preds.sort_unstable();
            preds.dedup();
            let mut all_preds: Vec<BlockId> = cfg.preds[s.0 as usize]
                .iter()
                .copied()
                .filter(|p| reachable.contains(p))
                .collect();
            all_preds.sort_unstable();
            all_preds.dedup();
            if preds == all_preds {
                at_head
                    .entry(s)
                    .or_default()
                    .push(Instr::MemoryRelease { var: v });
            } else {
                for p in preds {
                    split_vars.entry((p, s)).or_default().push(v);
                }
            }
        }
        let mut split_keys: Vec<(BlockId, BlockId)> = split_vars.keys().copied().collect();
        split_keys.sort_unstable();
        for (p, s) in split_keys {
            splits.push((p, s, split_vars.remove(&(p, s)).expect("key listed")));
        }
    }

    // Apply in-block insertions by rebuilding each touched block.
    let touched: HashSet<BlockId> = after
        .keys()
        .map(|&(b, _)| b)
        .chain(at_head.keys().copied())
        .chain(before_term.keys().copied())
        .collect();
    for b in touched {
        let old = std::mem::take(&mut f.block_mut(b).instrs);
        let phi_prefix = old
            .iter()
            .take_while(|i| matches!(i, Instr::Phi { .. }))
            .count();
        let mut new = Vec::with_capacity(old.len() + 4);
        for (ix, i) in old.into_iter().enumerate() {
            if ix == phi_prefix {
                if let Some(head) = at_head.remove(&b) {
                    new.extend(head);
                }
            }
            if i.is_terminator() {
                if let Some(pre) = before_term.remove(&b) {
                    new.extend(pre);
                }
            }
            let post = after.remove(&(b, ix));
            new.push(i);
            if let Some(post) = post {
                new.extend(post);
            }
        }
        // Phi-only degenerate case (unreachable in practice: every block
        // ends in a terminator, so the loop body always runs past the
        // prefix).
        if let Some(head) = at_head.remove(&b) {
            new.extend(head);
        }
        f.block_mut(b).instrs = new;
    }

    // Split edges: insert a release block between p and s.
    for (p, s, vars) in splits {
        let nb = BlockId(f.blocks.len() as u32);
        let mut instrs: Vec<Instr> = vars
            .into_iter()
            .map(|v| Instr::MemoryRelease { var: v })
            .collect();
        instrs.push(Instr::Jump { target: s });
        f.blocks.push(Block {
            label: format!("release.{}.{}", p.0, s.0),
            instrs,
        });
        // Retarget p's terminator edge(s) into s.
        match f.block_mut(p).instrs.last_mut() {
            Some(Instr::Jump { target }) if *target == s => *target = nb,
            Some(Instr::Branch {
                then_block,
                else_block,
                ..
            }) => {
                if *then_block == s {
                    *then_block = nb;
                }
                if *else_block == s {
                    *else_block = nb;
                }
            }
            _ => {}
        }
        // Phi incoming predecessors in s must now name the split block.
        for i in f.block_mut(s).instrs.iter_mut() {
            let Instr::Phi { incoming, .. } = i else {
                break;
            };
            for (pred, _) in incoming.iter_mut() {
                if *pred == p {
                    *pred = nb;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use std::sync::Arc;

    fn builtin(name: &str) -> Callee {
        Callee::Builtin(Arc::from(name))
    }

    /// if (1 < 2) return 10 else return 20 — folds to return 10.
    fn branchy() -> Function {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.call(
            builtin("Less"),
            vec![Constant::I64(1).into(), Constant::I64(2).into()],
        );
        let t = b.create_block("then");
        let e = b.create_block("else");
        b.branch(c, t, e);
        b.seal_block(t);
        b.seal_block(e);
        b.switch_to(t);
        b.ret(Constant::I64(10));
        b.switch_to(e);
        b.ret(Constant::I64(20));
        b.finish()
    }

    #[test]
    fn fold_and_dead_branch() {
        let mut f = branchy();
        assert!(constant_fold(&mut f));
        verify_function(&f).unwrap();
        // The branch became a jump to `then`.
        assert!(matches!(
            f.block(BlockId(0)).terminator(),
            Some(Instr::Jump { target }) if *target == BlockId(1)
        ));
        assert!(simplify_cfg(&mut f));
        verify_function(&f).unwrap();
        // After fusion the entry returns the constant directly.
        // DCE may or may not fire depending on what simplify_cfg left behind.
        let _ = dce(&mut f);
        assert!(matches!(
            f.block(f.entry).terminator(),
            Some(Instr::Return {
                value: Operand::Const(Constant::I64(10))
            })
        ));
    }

    #[test]
    fn fold_does_not_hide_overflow() {
        let mut b = FunctionBuilder::new("f", 0);
        let v = b.call(
            builtin("Plus"),
            vec![Constant::I64(i64::MAX).into(), Constant::I64(1).into()],
        );
        b.ret(v);
        let mut f = b.finish();
        constant_fold(&mut f);
        // Still a call: the overflow must occur at run time (F2).
        assert!(f.instrs().any(|i| matches!(i, Instr::Call { .. })));
    }

    #[test]
    fn cse_deduplicates() {
        let mut b = FunctionBuilder::new("f", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        let x = b.call(builtin("Times"), vec![arg.into(), arg.into()]);
        let y = b.call(builtin("Times"), vec![arg.into(), arg.into()]);
        let sum = b.call(builtin("Plus"), vec![x.into(), y.into()]);
        b.ret(sum);
        let mut f = b.finish();
        assert!(cse(&mut f));
        copy_propagation(&mut f); // uses already rewritten by cse
        assert!(dce(&mut f));
        verify_function(&f).unwrap();
        let times_count = f
            .instrs()
            .filter(
                |i| matches!(i, Instr::Call { callee: Callee::Builtin(n), .. } if &**n == "Times"),
            )
            .count();
        assert_eq!(times_count, 1);
        let _ = y;
    }

    #[test]
    fn dce_keeps_impure() {
        let mut b = FunctionBuilder::new("f", 0);
        let _unused = b.call(
            builtin("Min"),
            vec![Constant::I64(1).into(), Constant::I64(2).into()],
        );
        // Pure but partial: checked Plus may overflow-trap, so a dead
        // instance must survive for interpreter-identical error behavior.
        let _trapping = b.call(
            builtin("Plus"),
            vec![Constant::I64(1).into(), Constant::I64(2).into()],
        );
        let _effect = b.call(
            Callee::Kernel(Arc::from("Print")),
            vec![Constant::I64(1).into()],
        );
        b.ret(Constant::Null);
        let mut f = b.finish();
        assert!(dce(&mut f));
        verify_function(&f).unwrap();
        // The total Min went away; the trapping Plus and the kernel call
        // stayed.
        assert_eq!(
            f.instrs()
                .filter(|i| matches!(i, Instr::Call { .. }))
                .count(),
            2
        );
    }

    /// Builds a counting loop for abort/liveness tests.
    fn loop_fn() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: n, index: 0 });
        b.write_var("i", Constant::I64(0));
        let header = b.create_block("head");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let i0 = b.read_var("i").unwrap();
        let c = b.call(builtin("Less"), vec![i0, n.into()]);
        b.branch(c, body, exit);
        b.seal_block(body);
        b.switch_to(body);
        let i1 = b.read_var("i").unwrap();
        let inc = b.call(builtin("Plus"), vec![i1, Constant::I64(1).into()]);
        b.write_var("i", inc);
        b.jump(header);
        b.seal_block(header);
        b.seal_block(exit);
        b.switch_to(exit);
        let out = b.read_var("i").unwrap();
        b.ret(out);
        b.finish()
    }

    #[test]
    fn abort_checks_at_prologue_and_loop_head() {
        let mut f = loop_fn();
        assert!(abort_insertion(&mut f));
        verify_function(&f).unwrap();
        let has_check = |b: u32| {
            f.block(BlockId(b))
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::AbortCheck))
        };
        assert!(has_check(0), "prologue check");
        assert!(has_check(1), "loop header check");
        assert!(!has_check(2), "no check in plain body");
        // Idempotent.
        assert!(!abort_insertion(&mut f));
    }

    #[test]
    fn abort_check_lands_after_phis() {
        let mut f = loop_fn();
        abort_insertion(&mut f);
        let header = f.block(BlockId(1));
        let phi_count = header
            .instrs
            .iter()
            .take_while(|i| matches!(i, Instr::Phi { .. }))
            .count();
        assert!(matches!(header.instrs[phi_count], Instr::AbortCheck));
    }

    #[test]
    fn memory_management_brackets_managed_vars() {
        let mut b = FunctionBuilder::new("f", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        let len = b.call(builtin("StringLength"), vec![arg.into()]);
        b.ret(len);
        let mut f = b.finish();
        f.var_types.insert(arg, Type::string());
        f.var_types.insert(len, Type::integer64());
        assert!(memory_management(&mut f));
        verify_function(&f).unwrap();
        let acq = f
            .instrs()
            .filter(|i| matches!(i, Instr::MemoryAcquire { .. }))
            .count();
        let rel = f
            .instrs()
            .filter(|i| matches!(i, Instr::MemoryRelease { .. }))
            .count();
        assert_eq!(acq, 1);
        assert_eq!(rel, 1);
        // Unmanaged i64 got no bracketing: exactly one pair total.
    }

    #[test]
    fn pipeline_runs_and_reports() {
        let mut f = branchy();
        let ran = run_pipeline(&mut f, &PassOptions::default()).unwrap();
        assert!(ran.iter().any(|p| p == "constant-fold"));
        assert!(ran.iter().any(|p| p == "abort-insertion"));
        verify_function(&f).unwrap();
        // Disabling a pass by name skips it.
        let mut f2 = branchy();
        let mut opts = PassOptions::default();
        opts.disabled.insert("constant-fold".into());
        opts.optimization_level = 1;
        let ran2 = run_pipeline(&mut f2, &opts).unwrap();
        assert!(!ran2.iter().any(|p| p == "constant-fold"));
    }

    #[test]
    fn managed_type_classification() {
        assert!(is_managed_type(&Type::string()));
        assert!(is_managed_type(&Type::expression()));
        assert!(is_managed_type(&Type::tensor(Type::real64(), 1)));
        assert!(!is_managed_type(&Type::integer64()));
        assert!(!is_managed_type(&Type::boolean()));
    }
}
