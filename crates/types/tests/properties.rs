//! Property tests on the type system: unification is a real unifier,
//! substitution application is idempotent, the numeric promotion lattice
//! is a partial order, and the constraint solver honours equality chains.

use proptest::prelude::*;
use wolfram_types::subst::{numeric_lub, promotion_cost};
use wolfram_types::{solve, unify, Constraint, Subst, Type, TypeEnvironment, TypeVar};

// ---------------------------------------------------------------------
// Random type generation.
// ---------------------------------------------------------------------

const ATOMS: &[&str] = &[
    "Integer64",
    "Real64",
    "ComplexReal64",
    "Boolean",
    "String",
    "Expression",
];

fn arb_concrete() -> impl Strategy<Value = Type> {
    let atom = prop::sample::select(ATOMS.to_vec()).prop_map(Type::atomic);
    atom.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), 1i64..4).prop_map(|(t, r)| Type::tensor(t, r)),
            (prop::collection::vec(inner.clone(), 0..3), inner)
                .prop_map(|(ps, r)| Type::arrow(ps, r)),
        ]
    })
}

/// A type with some leaves replaced by variables drawn from a small pool.
fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        prop::sample::select(ATOMS.to_vec()).prop_map(Type::atomic),
        (0u32..4).prop_map(|v| Type::Var(TypeVar(v))),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), 1i64..4).prop_map(|(t, r)| Type::tensor(t, r)),
            (prop::collection::vec(inner.clone(), 0..3), inner)
                .prop_map(|(ps, r)| Type::arrow(ps, r)),
        ]
    })
}

// ---------------------------------------------------------------------
// Unification.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A successful unification really is a unifier: applying the
    /// substitution to both sides yields the same type.
    #[test]
    fn unify_produces_a_unifier(a in arb_type(), b in arb_type()) {
        let mut s = Subst::new();
        if unify(&a, &b, &mut s).is_ok() {
            prop_assert_eq!(s.apply(&a), s.apply(&b));
        }
    }

    /// Unification success is symmetric.
    #[test]
    fn unify_success_is_symmetric(a in arb_type(), b in arb_type()) {
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        prop_assert_eq!(unify(&a, &b, &mut s1).is_ok(), unify(&b, &a, &mut s2).is_ok());
    }

    /// Unifying a type with itself always succeeds without bindings that
    /// change it.
    #[test]
    fn unify_is_reflexive(a in arb_type()) {
        let mut s = Subst::new();
        unify(&a, &a, &mut s).unwrap();
        prop_assert_eq!(s.apply(&a), s.apply(&a));
    }

    /// Concrete (variable-free) types unify exactly when equal.
    #[test]
    fn concrete_unification_is_equality(a in arb_concrete(), b in arb_concrete()) {
        let mut s = Subst::new();
        prop_assert_eq!(unify(&a, &b, &mut s).is_ok(), a == b);
    }

    /// A lone variable unifies with any type not containing it, and the
    /// binding maps it to exactly that type (occurs check otherwise).
    #[test]
    fn variable_binds_or_occurs_fails(t in arb_type()) {
        let fresh = Type::Var(TypeVar(99));
        let mut s = Subst::new();
        // TypeVar(99) is outside the generated pool, so no occurs failure.
        unify(&fresh, &t, &mut s).unwrap();
        prop_assert_eq!(s.apply(&fresh), s.apply(&t));
    }

    /// Substitution application is idempotent after unification.
    #[test]
    fn apply_is_idempotent(a in arb_type(), b in arb_type()) {
        let mut s = Subst::new();
        if unify(&a, &b, &mut s).is_ok() {
            let once = s.apply(&a);
            prop_assert_eq!(s.apply(&once), once);
        }
    }
}

// ---------------------------------------------------------------------
// Numeric promotion lattice.
// ---------------------------------------------------------------------

const NUMERICS: &[&str] = &[
    "Integer8",
    "Integer16",
    "Integer32",
    "Integer64",
    "Real32",
    "Real64",
    "ComplexReal64",
];

proptest! {
    #[test]
    fn promotion_is_transitive(
        a in prop::sample::select(NUMERICS.to_vec()),
        b in prop::sample::select(NUMERICS.to_vec()),
        c in prop::sample::select(NUMERICS.to_vec()),
    ) {
        let (ta, tb, tc) = (Type::atomic(a), Type::atomic(b), Type::atomic(c));
        if let (Some(x), Some(y)) = (promotion_cost(&ta, &tb), promotion_cost(&tb, &tc)) {
            let direct = promotion_cost(&ta, &tc);
            prop_assert!(direct.is_some(), "{a} -> {b} -> {c} but no {a} -> {c}");
            prop_assert!(direct.unwrap() <= x + y, "triangle inequality");
        }
    }

    #[test]
    fn lub_is_commutative_and_an_upper_bound(
        a in prop::sample::select(NUMERICS.to_vec()),
        b in prop::sample::select(NUMERICS.to_vec()),
    ) {
        let (ta, tb) = (Type::atomic(a), Type::atomic(b));
        let ab = numeric_lub(&ta, &tb);
        let ba = numeric_lub(&tb, &ta);
        prop_assert_eq!(&ab, &ba);
        if let Some(up) = ab {
            prop_assert!(promotion_cost(&ta, &up).is_some(), "{a} must promote to lub");
            prop_assert!(promotion_cost(&tb, &up).is_some(), "{b} must promote to lub");
        }
    }

    #[test]
    fn promotion_zero_iff_same(t in prop::sample::select(NUMERICS.to_vec())) {
        let ty = Type::atomic(t);
        prop_assert_eq!(promotion_cost(&ty, &ty), Some(0));
    }
}

// ---------------------------------------------------------------------
// The constraint solver.
// ---------------------------------------------------------------------

fn eq(a: Type, b: Type) -> Constraint {
    Constraint::Equality {
        a,
        b,
        origin: "test".into(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A chain v0 = v1 = ... = vN = T resolves every link to T, in any
    /// presentation order.
    #[test]
    fn equality_chains_resolve(
        n in 1usize..6,
        anchor in prop::sample::select(ATOMS.to_vec()),
        shuffle_seed in 0usize..24,
    ) {
        let env = TypeEnvironment::new();
        let mut cs: Vec<Constraint> = (0..n)
            .map(|i| eq(Type::Var(TypeVar(i as u32)), Type::Var(TypeVar(i as u32 + 1))))
            .collect();
        cs.push(eq(Type::Var(TypeVar(n as u32)), Type::atomic(anchor)));
        // Deterministic rotation as a cheap shuffle.
        let len = cs.len();
        cs.rotate_left(shuffle_seed % len);
        let sol = solve(cs, &env, Subst::new()).unwrap();
        for i in 0..=n {
            prop_assert_eq!(
                sol.subst.apply(&Type::Var(TypeVar(i as u32))),
                Type::atomic(anchor),
                "link {}", i
            );
        }
    }

    /// Conflicting anchors on the same chain are a solve error.
    #[test]
    fn conflicting_chains_fail(
        a in prop::sample::select(ATOMS.to_vec()),
        b in prop::sample::select(ATOMS.to_vec()),
    ) {
        prop_assume!(a != b);
        let env = TypeEnvironment::new();
        let cs = vec![
            eq(Type::Var(TypeVar(0)), Type::atomic(a)),
            eq(Type::Var(TypeVar(0)), Type::atomic(b)),
        ];
        prop_assert!(solve(cs, &env, Subst::new()).is_err());
    }

    /// Structure propagates: T[e, r] = T[Integer64, 2] pins both holes.
    #[test]
    fn tensor_structure_propagates(elem in prop::sample::select(vec!["Integer64", "Real64"])) {
        let env = TypeEnvironment::new();
        let cs = vec![eq(
            Type::tensor(Type::Var(TypeVar(0)), 2),
            Type::tensor(Type::atomic(elem), 2),
        )];
        let sol = solve(cs, &env, Subst::new()).unwrap();
        prop_assert_eq!(sol.subst.apply(&Type::Var(TypeVar(0))), Type::atomic(elem));
    }

    /// Rank mismatches never solve.
    #[test]
    fn tensor_rank_mismatch_fails(r1 in 1i64..4, r2 in 1i64..4) {
        prop_assume!(r1 != r2);
        let env = TypeEnvironment::new();
        let cs = vec![eq(
            Type::tensor(Type::integer64(), r1),
            Type::tensor(Type::integer64(), r2),
        )];
        prop_assert!(solve(cs, &env, Subst::new()).is_err());
    }
}
