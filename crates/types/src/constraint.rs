//! Constraint kinds for the two-phase type inference (§4.4).
//!
//! "In the first phase, the IR is traversed to generate a system of
//! constraints ... There are only a handful of constraints":
//! `EqualityConstraint`, `AlternativeConstraint`, `InstantiateConstraint`,
//! and `GeneralizeConstraint`. This reproduction adds `Call` — an
//! alternative constraint specialized to overloaded function calls, which
//! records the chosen overload for the later function-resolution pass.

use crate::ty::{Type, TypeVar};

/// A single inference constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// `EqualityConstraint[a, b]`: the two types must unify.
    Equality {
        /// Left type.
        a: Type,
        /// Right type.
        b: Type,
        /// Where the constraint came from (for error messages).
        origin: String,
    },
    /// `AlternativeConstraint[t, {o1, o2, ...}]`: `t` equals one of the
    /// options; resolution prefers the most specific (lowest promotion
    /// cost) option and errors on ties.
    Alternative {
        /// The constrained type.
        t: Type,
        /// The allowed options.
        options: Vec<Type>,
        /// Provenance.
        origin: String,
    },
    /// `InstantiateConstraint[tau, rho, m]`: `tau` is an instance of the
    /// polymorphic `rho` (with respect to the monomorphic set, which the
    /// scheme representation already captures here).
    Instantiate {
        /// The instance type.
        tau: Type,
        /// The scheme.
        rho: Type,
        /// Provenance.
        origin: String,
    },
    /// `GeneralizeConstraint[sigma, tau, m]`: `sigma` is the
    /// generalization of `tau` over variables not in the monomorphic set
    /// `m`.
    Generalize {
        /// The resulting scheme variable.
        sigma: TypeVar,
        /// The type being generalized.
        tau: Type,
        /// The monomorphic set (variables that must not be quantified).
        mono: Vec<TypeVar>,
        /// Provenance.
        origin: String,
    },
    /// A call `name[args...] : ret` to be resolved against the type
    /// environment's overloads (the compiler's specialization of
    /// `AlternativeConstraint` to function types).
    Call {
        /// Call-site identifier (the WIR instruction id), used to report
        /// the chosen overload back to the resolver.
        site: usize,
        /// Function name.
        name: String,
        /// Argument types.
        args: Vec<Type>,
        /// Result type.
        ret: Type,
        /// Provenance.
        origin: String,
    },
}

impl Constraint {
    /// Free solver variables mentioned by this constraint (the edges of
    /// the constraint graph connect constraints with overlapping sets).
    pub fn free_vars(&self) -> Vec<TypeVar> {
        let mut out = Vec::new();
        let mut add = |t: &Type| {
            for v in t.free_vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        };
        match self {
            Constraint::Equality { a, b, .. } => {
                add(a);
                add(b);
            }
            Constraint::Alternative { t, options, .. } => {
                add(t);
                for o in options {
                    add(o);
                }
            }
            Constraint::Instantiate { tau, rho, .. } => {
                add(tau);
                add(rho);
            }
            Constraint::Generalize {
                sigma, tau, mono, ..
            } => {
                add(&Type::Var(*sigma));
                add(tau);
                for v in mono {
                    add(&Type::Var(*v));
                }
            }
            Constraint::Call { args, ret, .. } => {
                for a in args {
                    add(a);
                }
                add(ret);
            }
        }
        out
    }

    /// A short provenance string for diagnostics.
    pub fn origin(&self) -> &str {
        match self {
            Constraint::Equality { origin, .. }
            | Constraint::Alternative { origin, .. }
            | Constraint::Instantiate { origin, .. }
            | Constraint::Generalize { origin, .. }
            | Constraint::Call { origin, .. } => origin,
        }
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Constraint::Equality { a, b, .. } => write!(f, "{a} == {b}"),
            Constraint::Alternative { t, options, .. } => {
                let opts: Vec<String> = options.iter().map(Type::to_string).collect();
                write!(f, "{t} in {{{}}}", opts.join(", "))
            }
            Constraint::Instantiate { tau, rho, .. } => write!(f, "{tau} <= inst({rho})"),
            Constraint::Generalize { sigma, tau, .. } => {
                write!(f, "%t{} == gen({tau})", sigma.0)
            }
            Constraint::Call {
                name, args, ret, ..
            } => {
                let args: Vec<String> = args.iter().map(Type::to_string).collect();
                write!(f, "{name}({}) -> {ret}", args.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_collected() {
        let c = Constraint::Equality {
            a: Type::Var(TypeVar(0)),
            b: Type::tensor(Type::Var(TypeVar(1)), 1),
            origin: "test".into(),
        };
        assert_eq!(c.free_vars(), vec![TypeVar(0), TypeVar(1)]);
        let c = Constraint::Call {
            site: 0,
            name: "Plus".into(),
            args: vec![Type::Var(TypeVar(2)), Type::integer64()],
            ret: Type::Var(TypeVar(3)),
            origin: "test".into(),
        };
        assert_eq!(c.free_vars(), vec![TypeVar(2), TypeVar(3)]);
    }

    #[test]
    fn display_readable() {
        let c = Constraint::Equality {
            a: Type::integer64(),
            b: Type::Var(TypeVar(7)),
            origin: "x".into(),
        };
        assert_eq!(c.to_string(), "Integer64 == %t7");
    }
}
