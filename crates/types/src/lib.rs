//! The compiler's type system (§4.4).
//!
//! The Wolfram Language is untyped; the compiler retrofits a type
//! specification onto it:
//!
//! - [`Type`] — the `TypeSpecifier` grammar: atomic constructors, compound
//!   constructors (`"Tensor"["Integer64", 1]`), type-level literals,
//!   function types, polymorphic `TypeForAll` schemes with type-class
//!   qualifiers, products, and projections.
//! - [`classes`] — type classes grouping types implementing the same
//!   methods (`"Integral"`, `"Ordered"`, `"Reals"`, `"MemoryManaged"`, ...),
//!   usable as qualifiers on polymorphic types.
//! - [`TypeEnvironment`] — extensible function/type store supporting
//!   overloading by type, arity, and return type (F6).
//! - [`unify`] and the constraint solver ([`mod@solve`]) — two-phase inference:
//!   constraint generation produces [`Constraint`]s
//!   (`Equality`/`Alternative`/`Instantiate`/`Generalize`), then the graph
//!   solver processes strongly connected components and resolves
//!   alternatives by specificity ordering, raising ambiguity errors when no
//!   ordering exists.

pub mod classes;
pub mod constraint;
pub mod env;
pub mod solve;
pub mod subst;
pub mod ty;

pub use classes::ClassRegistry;
pub use constraint::Constraint;
pub use env::{FunctionDef, FunctionImpl, TypeEnvironment};
pub use solve::{solve, SolveError};
pub use subst::{unify, Subst, UnifyError};
pub use ty::{Qualifier, Type, TypeError, TypeVar};
