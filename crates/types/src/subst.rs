//! Substitutions, unification, and numeric promotion.

use crate::ty::{Type, TypeVar};
use std::collections::HashMap;
use std::fmt;

/// A substitution from solver variables to types.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    map: HashMap<TypeVar, Type>,
    next_var: u32,
}

/// Unification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnifyError {
    /// Human-readable mismatch description.
    pub message: String,
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot unify: {}", self.message)
    }
}

impl std::error::Error for UnifyError {}

impl Subst {
    /// An empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures future fresh variables do not collide with externally
    /// created variables up to `max_var` inclusive.
    pub fn reserve(&mut self, max_var: u32) {
        self.next_var = self.next_var.max(max_var + 1);
    }

    /// A fresh solver variable.
    pub fn fresh(&mut self) -> Type {
        let v = TypeVar(self.next_var);
        self.next_var += 1;
        Type::Var(v)
    }

    /// Binds a variable (no occurs check here; use [`unify`]).
    pub fn bind(&mut self, v: TypeVar, t: Type) {
        self.map.insert(v, t);
    }

    /// Resolves a variable one step.
    pub fn lookup(&self, v: TypeVar) -> Option<&Type> {
        self.map.get(&v)
    }

    /// Fully applies the substitution to a type.
    pub fn apply(&self, t: &Type) -> Type {
        match t {
            Type::Var(v) => match self.map.get(v) {
                Some(bound) => self.apply(bound),
                None => t.clone(),
            },
            Type::Constructor { name, args } => Type::Constructor {
                name: name.clone(),
                args: args.iter().map(|a| self.apply(a)).collect(),
            },
            Type::Arrow { params, ret } => Type::Arrow {
                params: params.iter().map(|p| self.apply(p)).collect(),
                ret: Box::new(self.apply(ret)),
            },
            Type::Product(args) => Type::Product(args.iter().map(|a| self.apply(a)).collect()),
            Type::Projection { base, index } => {
                let base = self.apply(base);
                // Projections reduce when the base is a known product.
                if let Type::Product(items) = &base {
                    if let Some(item) = items.get(*index) {
                        return item.clone();
                    }
                }
                Type::Projection {
                    base: Box::new(base),
                    index: *index,
                }
            }
            Type::ForAll { vars, quals, body } => Type::ForAll {
                vars: vars.clone(),
                quals: quals.clone(),
                body: Box::new(self.apply(body)),
            },
            Type::Atomic(_) | Type::Literal(_) | Type::Bound(_) => t.clone(),
        }
    }

    fn occurs(&self, v: TypeVar, t: &Type) -> bool {
        self.apply(t).free_vars().contains(&v)
    }
}

/// Unifies `a` and `b` under `subst`, extending it on success.
///
/// # Errors
///
/// Returns [`UnifyError`] on constructor clashes, arity mismatches, or
/// occurs-check failures; `subst` may be partially extended.
pub fn unify(a: &Type, b: &Type, subst: &mut Subst) -> Result<(), UnifyError> {
    let a = subst.apply(a);
    let b = subst.apply(b);
    match (&a, &b) {
        (Type::Var(x), Type::Var(y)) if x == y => Ok(()),
        (Type::Var(v), other) | (other, Type::Var(v)) => {
            if subst.occurs(*v, other) {
                return Err(UnifyError {
                    message: format!("occurs check: %t{} in {other}", v.0),
                });
            }
            subst.bind(*v, other.clone());
            Ok(())
        }
        (Type::Atomic(x), Type::Atomic(y)) if x == y => Ok(()),
        (Type::Literal(x), Type::Literal(y)) if x == y => Ok(()),
        (Type::Bound(x), Type::Bound(y)) if x == y => Ok(()),
        (Type::Constructor { name: na, args: aa }, Type::Constructor { name: nb, args: ab })
            if na == nb && aa.len() == ab.len() =>
        {
            for (x, y) in aa.iter().zip(ab) {
                unify(x, y, subst)?;
            }
            Ok(())
        }
        (
            Type::Arrow {
                params: pa,
                ret: ra,
            },
            Type::Arrow {
                params: pb,
                ret: rb,
            },
        ) if pa.len() == pb.len() => {
            for (x, y) in pa.iter().zip(pb) {
                unify(x, y, subst)?;
            }
            unify(ra, rb, subst)
        }
        (Type::Product(xa), Type::Product(xb)) if xa.len() == xb.len() => {
            for (x, y) in xa.iter().zip(xb) {
                unify(x, y, subst)?;
            }
            Ok(())
        }
        _ => Err(UnifyError {
            message: format!("{a} vs {b}"),
        }),
    }
}

/// The cost of implicitly promoting scalar `from` into `to`; `Some(0)` for
/// identical types, `None` when no promotion exists. Promotions follow the
/// numeric tower `Integer64 -> Real64 -> ComplexReal64` (plus the narrower
/// integer/real widths).
pub fn promotion_cost(from: &Type, to: &Type) -> Option<u32> {
    if from == to {
        return Some(0);
    }
    let (Type::Atomic(f), Type::Atomic(t)) = (from, to) else {
        return None;
    };
    // Boxing into the symbolic world (F8): any machine scalar or string
    // may become an "Expression", at a cost above every numeric promotion
    // so numeric overloads always win when applicable.
    if &**t == "Expression"
        && matches!(
            &**f,
            "Integer8"
                | "Integer16"
                | "Integer32"
                | "Integer64"
                | "Real32"
                | "Real64"
                | "ComplexReal64"
                | "Boolean"
                | "String"
        )
    {
        return Some(10);
    }
    let rank = |name: &str| -> Option<u32> {
        Some(match name {
            "Integer8" => 0,
            "Integer16" => 1,
            "Integer32" => 2,
            "Integer64" => 3,
            "Real32" => 4,
            "Real64" => 5,
            "ComplexReal64" => 6,
            _ => return None,
        })
    };
    let (rf, rt) = (rank(f)?, rank(t)?);
    (rf < rt).then(|| rt - rf)
}

/// Least upper bound in the numeric promotion order, if any.
pub fn numeric_lub(a: &Type, b: &Type) -> Option<Type> {
    if a == b {
        return Some(a.clone());
    }
    if promotion_cost(a, b).is_some() {
        return Some(b.clone());
    }
    if promotion_cost(b, a).is_some() {
        return Some(a.clone());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: u32) -> Type {
        Type::Var(TypeVar(n))
    }

    #[test]
    fn unify_binds_vars() {
        let mut s = Subst::new();
        unify(&var(0), &Type::integer64(), &mut s).unwrap();
        assert_eq!(s.apply(&var(0)), Type::integer64());
        unify(&var(1), &var(0), &mut s).unwrap();
        assert_eq!(s.apply(&var(1)), Type::integer64());
    }

    #[test]
    fn unify_structures() {
        let mut s = Subst::new();
        let a = Type::tensor(var(0), 1);
        let b = Type::tensor(Type::real64(), 1);
        unify(&a, &b, &mut s).unwrap();
        assert_eq!(s.apply(&var(0)), Type::real64());
        // Rank mismatch fails.
        let mut s = Subst::new();
        assert!(unify(
            &Type::tensor(Type::real64(), 1),
            &Type::tensor(Type::real64(), 2),
            &mut s
        )
        .is_err());
    }

    #[test]
    fn unify_arrows() {
        let mut s = Subst::new();
        let f = Type::arrow(vec![var(0)], var(1));
        let g = Type::arrow(vec![Type::integer64()], Type::boolean());
        unify(&f, &g, &mut s).unwrap();
        assert_eq!(s.apply(&var(1)), Type::boolean());
        assert!(unify(
            &Type::arrow(vec![], Type::void()),
            &Type::arrow(vec![var(2)], Type::void()),
            &mut s
        )
        .is_err());
    }

    #[test]
    fn occurs_check() {
        let mut s = Subst::new();
        let t = Type::tensor(var(0), 1);
        assert!(unify(&var(0), &t, &mut s).is_err());
    }

    #[test]
    fn atomic_clash() {
        let mut s = Subst::new();
        assert!(unify(&Type::integer64(), &Type::real64(), &mut s).is_err());
    }

    #[test]
    fn promotions() {
        assert_eq!(
            promotion_cost(&Type::integer64(), &Type::integer64()),
            Some(0)
        );
        assert_eq!(promotion_cost(&Type::integer64(), &Type::real64()), Some(2));
        assert_eq!(promotion_cost(&Type::real64(), &Type::integer64()), None);
        assert_eq!(promotion_cost(&Type::real64(), &Type::complex()), Some(1));
        assert_eq!(promotion_cost(&Type::string(), &Type::real64()), None);
        assert_eq!(
            numeric_lub(&Type::integer64(), &Type::real64()),
            Some(Type::real64())
        );
        assert_eq!(numeric_lub(&Type::boolean(), &Type::real64()), None);
    }

    #[test]
    fn projection_reduces() {
        let mut s = Subst::new();
        let p = Type::Projection {
            base: Box::new(Type::Product(vec![Type::integer64(), Type::string()])),
            index: 1,
        };
        assert_eq!(s.apply(&p), Type::string());
        let _ = &mut s;
    }
}
