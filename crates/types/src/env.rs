//! The type environment (§4.4): function declarations with overloading by
//! type, arity, and return type, plus overload resolution against call
//! sites ("Function Resolution", §4.5).

use crate::classes::ClassRegistry;
use crate::subst::{numeric_lub, promotion_cost, unify, Subst};
use crate::ty::{Qualifier, Type, TypeError};
use std::collections::HashMap;
use std::sync::Arc;
use wolfram_expr::Expr;

/// How a declared function is implemented.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionImpl {
    /// A compiler-runtime primitive; the base name is mangled with the
    /// instantiated argument types at resolution (the paper's
    /// `checked_binary_plus_Integer64_Integer64`).
    Primitive(Arc<str>),
    /// Wolfram source compiled on demand at its instantiated type.
    Source(Expr),
    /// Escapes to the interpreter (`KernelFunction`).
    Kernel,
}

/// One overload of a declared function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// The (possibly polymorphic) type scheme.
    pub scheme: Type,
    /// The implementation.
    pub implementation: FunctionImpl,
    /// Whether resolution must force-inline this definition.
    pub inline_always: bool,
}

/// A successfully resolved call.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedCall {
    /// Index of the chosen overload in declaration order.
    pub overload: usize,
    /// Instantiated parameter types (post-promotion).
    pub params: Vec<Type>,
    /// Instantiated return type.
    pub ret: Type,
    /// Total promotion cost (0 = exact match).
    pub cost: u32,
    /// The implementation of the chosen overload.
    pub implementation: FunctionImpl,
    /// Whether to force-inline.
    pub inline_always: bool,
}

/// Resolution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolveError {
    /// No declaration for the function at all.
    Undeclared(String),
    /// Declarations exist but none matches these argument types.
    NoMatch {
        /// Function name.
        name: String,
        /// The argument types at the call.
        args: Vec<Type>,
    },
    /// Multiple matches with no specificity ordering (paper: "Lack of
    /// ordering is an ambiguity and the compiler raises an error").
    Ambiguous {
        /// Function name.
        name: String,
        /// Indices of the tied overloads.
        overloads: Vec<usize>,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Undeclared(name) => {
                write!(f, "no type declaration for function `{name}`")
            }
            ResolveError::NoMatch { name, args } => {
                let args: Vec<String> = args.iter().map(Type::to_string).collect();
                write!(f, "no overload of `{name}` matches ({})", args.join(", "))
            }
            ResolveError::Ambiguous { name, overloads } => {
                write!(f, "ambiguous overloads of `{name}`: {overloads:?}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// An extensible store of typed function declarations (F6).
///
/// "Multiple type environments can be resident within the compiler; a
/// default builtin type environment is provided. Users can extend the type
/// environment and specify which type environment to use at
/// `FunctionCompile` time."
#[derive(Debug, Clone, Default)]
pub struct TypeEnvironment {
    functions: HashMap<String, Vec<FunctionDef>>,
    /// The type-class registry used for qualifier checks.
    pub classes: ClassRegistry,
}

impl TypeEnvironment {
    /// An empty environment with the builtin class registry.
    pub fn new() -> Self {
        TypeEnvironment {
            functions: HashMap::new(),
            classes: ClassRegistry::builtin(),
        }
    }

    /// Declares a function overload from a parsed scheme.
    pub fn declare_function(
        &mut self,
        name: &str,
        scheme: Type,
        implementation: FunctionImpl,
    ) -> &mut Self {
        self.functions
            .entry(name.to_owned())
            .or_default()
            .push(FunctionDef {
                scheme,
                implementation,
                inline_always: false,
            });
        self
    }

    /// Declares a function overload from a `Typed[TypeSpecifier...][impl]`
    /// style expression pair (the paper's `tyEnv["declareFunction", ...]`).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the specifier does not parse.
    pub fn declare_function_expr(
        &mut self,
        name: &str,
        scheme: &Expr,
        implementation: FunctionImpl,
    ) -> Result<&mut Self, TypeError> {
        let ty = Type::from_expr(scheme)?;
        Ok(self.declare_function(name, ty, implementation))
    }

    /// Marks the most recently declared overload of `name` as force-inline.
    pub fn set_inline_always(&mut self, name: &str) {
        if let Some(defs) = self.functions.get_mut(name) {
            if let Some(last) = defs.last_mut() {
                last.inline_always = true;
            }
        }
    }

    /// The overloads declared for `name`, in declaration order.
    pub fn lookup(&self, name: &str) -> &[FunctionDef] {
        self.functions.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any overload exists.
    pub fn is_declared(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// Number of declared function names.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// All declared names, sorted.
    pub fn function_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.functions.keys().cloned().collect();
        names.sort();
        names
    }

    /// Resolves a call `name[args...]` against the declared overloads:
    /// instantiates each candidate scheme, unifies with promotion, checks
    /// class qualifiers, and picks the lowest-cost match. Ties raise
    /// [`ResolveError::Ambiguous`].
    ///
    /// # Errors
    ///
    /// See [`ResolveError`].
    pub fn resolve_call(&self, name: &str, args: &[Type]) -> Result<ResolvedCall, ResolveError> {
        let defs = self.lookup(name);
        if defs.is_empty() {
            return Err(ResolveError::Undeclared(name.to_owned()));
        }
        let mut best: Vec<(usize, ResolvedCall)> = Vec::new();
        for (ix, def) in defs.iter().enumerate() {
            if let Some(resolved) = self.try_match(def, ix, args) {
                best.push((ix, resolved));
            }
        }
        if best.is_empty() {
            return Err(ResolveError::NoMatch {
                name: name.to_owned(),
                args: args.to_vec(),
            });
        }
        let min_cost = best.iter().map(|(_, r)| r.cost).min().expect("nonempty");
        let winners: Vec<&(usize, ResolvedCall)> =
            best.iter().filter(|(_, r)| r.cost == min_cost).collect();
        if winners.len() > 1 {
            // Distinct instantiations at equal cost have no ordering.
            let first = &winners[0].1;
            if winners
                .iter()
                .any(|(_, r)| r.params != first.params || r.ret != first.ret)
            {
                return Err(ResolveError::Ambiguous {
                    name: name.to_owned(),
                    overloads: winners.iter().map(|(ix, _)| *ix).collect(),
                });
            }
        }
        Ok(winners[0].1.clone())
    }

    /// Attempts to match one overload. Returns the instantiated call info
    /// with its promotion cost.
    fn try_match(&self, def: &FunctionDef, overload: usize, args: &[Type]) -> Option<ResolvedCall> {
        let mut subst = Subst::new();
        let (body, quals, var_map) = instantiate(&def.scheme, &mut subst);
        let Type::Arrow { params, ret } = body else {
            return None;
        };
        if params.len() != args.len() {
            return None;
        }

        // Phase 0: structural pre-pass — pin scheme variables that occur
        // inside constructor parameters (e.g. the `a` of `Tensor[a, n]`)
        // so that a *bare* occurrence of the same variable joins from the
        // structural binding instead of racing it (tensor+scalar
        // broadcast: `{Tensor[a, n], a}` called at `(Tensor[Real64, 1],
        // Integer64)` must pick a = Real64 and promote the scalar).
        let mut pre = subst.clone();
        for (p, a) in params.iter().zip(args) {
            if !matches!(p, Type::Var(_)) {
                let applied = pre.apply(p);
                let _ = unify(&applied, a, &mut pre);
            }
        }

        // Phase 1: bind scheme variables appearing as bare parameters to
        // the numeric LUB of their argument types (seeded from Phase 0).
        for (_, v) in &var_map {
            let seeded = pre.apply(&Type::Var(*v));
            let mut join: Option<Type> = seeded.is_concrete().then_some(seeded);
            for (p, a) in params.iter().zip(args) {
                if p == &Type::Var(*v) {
                    join = Some(match join {
                        None => a.clone(),
                        Some(j) => numeric_lub(&j, a).or_else(|| (j == *a).then(|| j.clone()))?,
                    });
                }
            }
            if let Some(j) = join {
                subst.bind(*v, j);
            }
        }

        // Phase 2: unify structurally; atomic positions may promote.
        let mut cost = 0u32;
        for (p, a) in params.iter().zip(args) {
            let p_resolved = subst.apply(p);
            if unify(&p_resolved, a, &mut subst).is_ok() {
                continue;
            }
            cost += promotion_cost(a, &subst.apply(&p_resolved))?;
        }

        // Phase 3: check class qualifiers on the instantiated variables.
        for q in &quals {
            let v = var_map.iter().find(|(n, _)| n == &q.var).map(|(_, v)| *v)?;
            let bound = subst.apply(&Type::Var(v));
            if bound.is_var() || !self.classes.is_member(&bound, &q.class) {
                return None;
            }
        }

        let params: Vec<Type> = params.iter().map(|p| subst.apply(p)).collect();
        let ret = subst.apply(&ret);
        if params.iter().any(|p| !p.is_concrete()) || !ret.is_concrete() {
            return None;
        }
        Some(ResolvedCall {
            overload,
            params,
            ret,
            cost,
            implementation: def.implementation.clone(),
            inline_always: def.inline_always,
        })
    }
}

/// Bound-name → fresh solver variable mapping produced by [`instantiate`].
pub type InstMap = Vec<(Arc<str>, crate::ty::TypeVar)>;

/// Instantiates a scheme: replaces bound names with fresh solver variables.
/// Returns the body, the qualifiers, and the name->var mapping.
pub fn instantiate(scheme: &Type, subst: &mut Subst) -> (Type, Vec<Qualifier>, InstMap) {
    match scheme {
        Type::ForAll { vars, quals, body } => {
            let mut map = Vec::new();
            for v in vars {
                let fresh = subst.fresh();
                let Type::Var(tv) = fresh else {
                    unreachable!("fresh returns Var")
                };
                map.push((v.clone(), tv));
            }
            let body = substitute_bound(body, &map);
            (body, quals.clone(), map)
        }
        other => (other.clone(), Vec::new(), Vec::new()),
    }
}

fn substitute_bound(t: &Type, map: &[(Arc<str>, crate::ty::TypeVar)]) -> Type {
    match t {
        Type::Bound(name) => match map.iter().find(|(n, _)| n == name) {
            Some((_, v)) => Type::Var(*v),
            None => t.clone(),
        },
        Type::Constructor { name, args } => Type::Constructor {
            name: name.clone(),
            args: args.iter().map(|a| substitute_bound(a, map)).collect(),
        },
        Type::Arrow { params, ret } => Type::Arrow {
            params: params.iter().map(|p| substitute_bound(p, map)).collect(),
            ret: Box::new(substitute_bound(ret, map)),
        },
        Type::Product(args) => {
            Type::Product(args.iter().map(|a| substitute_bound(a, map)).collect())
        }
        Type::Projection { base, index } => Type::Projection {
            base: Box::new(substitute_bound(base, map)),
            index: *index,
        },
        Type::ForAll { vars, quals, body } => {
            // Inner quantifiers shadow: drop shadowed entries.
            let filtered: Vec<(Arc<str>, crate::ty::TypeVar)> = map
                .iter()
                .filter(|(n, _)| !vars.contains(n))
                .cloned()
                .collect();
            Type::ForAll {
                vars: vars.clone(),
                quals: quals.clone(),
                body: Box::new(substitute_bound(body, &filtered)),
            }
        }
        _ => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    fn scheme(src: &str) -> Type {
        Type::from_expr(&parse(src).unwrap()).unwrap()
    }

    fn min_env() -> TypeEnvironment {
        let mut env = TypeEnvironment::new();
        // The paper's Min declaration: TypeForAll[{a}, {a in Ordered},
        // {a, a} -> a].
        env.declare_function(
            "Min",
            scheme("TypeForAll[{\"a\"}, {Element[\"a\", \"Ordered\"]}, {\"a\", \"a\"} -> \"a\"]"),
            FunctionImpl::Primitive(Arc::from("min")),
        );
        env
    }

    #[test]
    fn monomorphic_resolution() {
        let mut env = TypeEnvironment::new();
        env.declare_function(
            "Plus",
            scheme("{\"Integer64\", \"Integer64\"} -> \"Integer64\""),
            FunctionImpl::Primitive(Arc::from("checked_binary_plus")),
        );
        let r = env
            .resolve_call("Plus", &[Type::integer64(), Type::integer64()])
            .unwrap();
        assert_eq!(r.ret, Type::integer64());
        assert_eq!(r.cost, 0);
        assert!(env
            .resolve_call("Plus", &[Type::string(), Type::integer64()])
            .is_err());
        assert!(matches!(
            env.resolve_call("NoSuch", &[]),
            Err(ResolveError::Undeclared(_))
        ));
    }

    #[test]
    fn polymorphic_qualified_resolution() {
        let env = min_env();
        // Integers are Ordered.
        let r = env
            .resolve_call("Min", &[Type::integer64(), Type::integer64()])
            .unwrap();
        assert_eq!(r.ret, Type::integer64());
        // Reals are Ordered.
        let r = env
            .resolve_call("Min", &[Type::real64(), Type::real64()])
            .unwrap();
        assert_eq!(r.ret, Type::real64());
        // Complex is not Ordered (paper: "integer and reals, but not
        // complex").
        assert!(env
            .resolve_call("Min", &[Type::complex(), Type::complex()])
            .is_err());
    }

    #[test]
    fn promotion_joins_mixed_arguments() {
        let env = min_env();
        // Min[i64, r64] joins at Real64 with promotion cost on the left.
        let r = env
            .resolve_call("Min", &[Type::integer64(), Type::real64()])
            .unwrap();
        assert_eq!(r.ret, Type::real64());
        assert!(r.cost > 0);
        assert_eq!(r.params, vec![Type::real64(), Type::real64()]);
    }

    #[test]
    fn overload_specificity_prefers_exact() {
        let mut env = TypeEnvironment::new();
        env.declare_function(
            "F",
            scheme("{\"Real64\"} -> \"Real64\""),
            FunctionImpl::Primitive(Arc::from("f_real")),
        );
        env.declare_function(
            "F",
            scheme("{\"Integer64\"} -> \"Integer64\""),
            FunctionImpl::Primitive(Arc::from("f_int")),
        );
        let r = env.resolve_call("F", &[Type::integer64()]).unwrap();
        assert_eq!(
            r.overload, 1,
            "exact integer overload wins over promotion to real"
        );
        let r = env.resolve_call("F", &[Type::real64()]).unwrap();
        assert_eq!(r.overload, 0);
    }

    #[test]
    fn arity_overloading() {
        // "This is different from some other languages which do not allow
        // for arity-based overloading."
        let mut env = TypeEnvironment::new();
        env.declare_function(
            "G",
            scheme("{\"Integer64\"} -> \"Integer64\""),
            FunctionImpl::Primitive(Arc::from("g1")),
        );
        env.declare_function(
            "G",
            scheme("{\"Integer64\", \"Integer64\"} -> \"Integer64\""),
            FunctionImpl::Primitive(Arc::from("g2")),
        );
        assert_eq!(
            env.resolve_call("G", &[Type::integer64()])
                .unwrap()
                .overload,
            0
        );
        assert_eq!(
            env.resolve_call("G", &[Type::integer64(), Type::integer64()])
                .unwrap()
                .overload,
            1
        );
    }

    #[test]
    fn ambiguity_detected() {
        let mut env = TypeEnvironment::new();
        // Two distinct overloads both reachable at equal promotion cost
        // from Integer64 but with different results: ambiguous.
        env.declare_function(
            "H",
            scheme("{\"Real64\"} -> \"Integer64\""),
            FunctionImpl::Primitive(Arc::from("h1")),
        );
        env.declare_function(
            "H",
            scheme("{\"Real64\"} -> \"Real64\""),
            FunctionImpl::Primitive(Arc::from("h2")),
        );
        assert!(matches!(
            env.resolve_call("H", &[Type::real64()]),
            Err(ResolveError::Ambiguous { .. })
        ));
    }

    #[test]
    fn tensor_element_unification() {
        let mut env = TypeEnvironment::new();
        // Fold-style container signature: {Tensor[a,1]} -> a, a in Ordered.
        env.declare_function(
            "MinContainer",
            scheme(
                "TypeForAll[{\"a\"}, {Element[\"a\", \"Ordered\"]}, \
                 {\"Tensor\"[\"a\", 1]} -> \"a\"]",
            ),
            FunctionImpl::Primitive(Arc::from("min_container")),
        );
        let r = env
            .resolve_call("MinContainer", &[Type::tensor(Type::real64(), 1)])
            .unwrap();
        assert_eq!(r.ret, Type::real64());
        assert!(env
            .resolve_call("MinContainer", &[Type::tensor(Type::complex(), 1)])
            .is_err());
    }

    #[test]
    fn source_implementations_carried() {
        let mut env = TypeEnvironment::new();
        let body = parse("Function[{e1, e2}, If[e1 < e2, e1, e2]]").unwrap();
        env.declare_function(
            "MyMin",
            scheme("TypeForAll[{\"a\"}, {Element[\"a\", \"Ordered\"]}, {\"a\", \"a\"} -> \"a\"]"),
            FunctionImpl::Source(body.clone()),
        );
        let r = env
            .resolve_call("MyMin", &[Type::integer64(), Type::integer64()])
            .unwrap();
        assert_eq!(r.implementation, FunctionImpl::Source(body));
    }

    #[test]
    fn declare_from_expr() {
        let mut env = TypeEnvironment::new();
        env.declare_function_expr(
            "AddOne",
            &parse("{\"MachineInteger\"} -> \"MachineInteger\"").unwrap(),
            FunctionImpl::Kernel,
        )
        .unwrap();
        assert!(env.is_declared("AddOne"));
        assert_eq!(env.function_count(), 1);
    }
}
