//! Type classes (§4.4): "Type classes are used to group types implementing
//! the same methods (`"Integral"`, `"Ordered"`, `"Reals"`, `"Indexed"`,
//! `"MemoryManaged"`, etc.)".

use crate::ty::Type;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The registry of type classes. Users can extend it with their own classes
/// and memberships (F6).
#[derive(Debug, Clone)]
pub struct ClassRegistry {
    /// class name -> atomic member type names
    members: HashMap<Arc<str>, HashSet<Arc<str>>>,
}

impl Default for ClassRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl ClassRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        ClassRegistry {
            members: HashMap::new(),
        }
    }

    /// The builtin class hierarchy used by the default type environment.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        let integral = [
            "Integer8",
            "Integer16",
            "Integer32",
            "Integer64",
            "UnsignedInteger8",
            "UnsignedInteger16",
            "UnsignedInteger32",
            "UnsignedInteger64",
        ];
        let reals = ["Real32", "Real64"];
        for t in integral {
            r.add_member("Integral", t);
            r.add_member("Reals", t);
            r.add_member("Ordered", t);
            r.add_member("Number", t);
        }
        for t in reals {
            r.add_member("Reals", t);
            r.add_member("Ordered", t);
            r.add_member("Number", t);
        }
        r.add_member("Number", "ComplexReal64");
        r.add_member("Ordered", "String");
        r.add_member("MemoryManaged", "String");
        r.add_member("MemoryManaged", "Expression");
        r.add_member("Equatable", "Boolean");
        for t in integral
            .iter()
            .chain(&reals)
            .chain(&["ComplexReal64", "String"])
        {
            r.add_member("Equatable", t);
        }
        r
    }

    /// Declares a class (idempotent).
    pub fn declare_class(&mut self, class: &str) {
        self.members.entry(Arc::from(class)).or_default();
    }

    /// Adds an atomic type to a class.
    pub fn add_member(&mut self, class: &str, member: &str) {
        self.members
            .entry(Arc::from(class))
            .or_default()
            .insert(Arc::from(crate::ty::normalize_name(member)));
    }

    /// Whether the class exists.
    pub fn has_class(&self, class: &str) -> bool {
        self.members.contains_key(class)
    }

    /// Class membership test. Structural classes (`Indexed`, `Container`,
    /// `MemoryManaged`) also match tensor constructors.
    pub fn is_member(&self, ty: &Type, class: &str) -> bool {
        match ty {
            Type::Atomic(name) => self
                .members
                .get(class)
                .is_some_and(|set| set.contains(name)),
            Type::Constructor { name, .. } if &**name == "Tensor" => {
                matches!(class, "Indexed" | "Container" | "MemoryManaged")
            }
            Type::Arrow { .. } => false,
            _ => false,
        }
    }

    /// All declared class names, sorted.
    pub fn class_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.members.keys().map(|k| k.to_string()).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_hierarchy() {
        let r = ClassRegistry::builtin();
        assert!(r.is_member(&Type::integer64(), "Integral"));
        assert!(r.is_member(&Type::integer64(), "Ordered"));
        assert!(r.is_member(&Type::real64(), "Reals"));
        assert!(!r.is_member(&Type::real64(), "Integral"));
        // Complex numbers are numbers but not ordered (the paper's Min
        // example: "integer and reals, but not complex").
        assert!(r.is_member(&Type::complex(), "Number"));
        assert!(!r.is_member(&Type::complex(), "Ordered"));
        assert!(r.is_member(&Type::string(), "Ordered"));
    }

    #[test]
    fn structural_classes() {
        let r = ClassRegistry::builtin();
        let t = Type::tensor(Type::real64(), 2);
        assert!(r.is_member(&t, "Container"));
        assert!(r.is_member(&t, "Indexed"));
        assert!(r.is_member(&t, "MemoryManaged"));
        assert!(!r.is_member(&t, "Integral"));
        assert!(r.is_member(&Type::string(), "MemoryManaged"));
        assert!(!r.is_member(&Type::integer64(), "MemoryManaged"));
    }

    #[test]
    fn user_extension() {
        let mut r = ClassRegistry::builtin();
        r.declare_class("MyClass");
        assert!(r.has_class("MyClass"));
        assert!(!r.is_member(&Type::integer64(), "MyClass"));
        r.add_member("MyClass", "Integer64");
        assert!(r.is_member(&Type::integer64(), "MyClass"));
    }
}
