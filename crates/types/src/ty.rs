//! The `TypeSpecifier` grammar (§4.4).

use std::fmt;
use std::sync::Arc;
use wolfram_expr::{Expr, ExprKind};

/// An inference variable introduced by the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeVar(pub u32);

/// A type-class qualifier on a polymorphic type: `"a" ∈ "Integral"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Qualifier {
    /// The quantified variable name.
    pub var: Arc<str>,
    /// The class it must belong to.
    pub class: Arc<str>,
}

/// A compiler type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A solver variable.
    Var(TypeVar),
    /// A name bound by an enclosing [`Type::ForAll`] (e.g. `"a"`).
    Bound(Arc<str>),
    /// An atomic constructor: `"Integer64"`, `"Real64"`, `"Boolean"`,
    /// `"String"`, `"Expression"`, `"Void"`, ...
    Atomic(Arc<str>),
    /// A compound constructor, e.g. `"Tensor"["Integer64", 1]`.
    Constructor {
        /// Constructor name.
        name: Arc<str>,
        /// Type arguments.
        args: Vec<Type>,
    },
    /// A type-level literal, e.g. `TypeLiteral[1, "Integer64"]` (tensor
    /// ranks are type-level integers).
    Literal(i64),
    /// A function type `{params} -> ret`.
    Arrow {
        /// Parameter types.
        params: Vec<Type>,
        /// Return type.
        ret: Box<Type>,
    },
    /// A (qualified) polymorphic scheme: `TypeForAll[{vars}, {quals}, body]`.
    ForAll {
        /// Quantified variable names.
        vars: Vec<Arc<str>>,
        /// Class qualifiers on those variables.
        quals: Vec<Qualifier>,
        /// The scheme body.
        body: Box<Type>,
    },
    /// A structural product type (`TypeProduct`).
    Product(Vec<Type>),
    /// A projection out of a product (`TypeProjection`).
    Projection {
        /// The product being projected.
        base: Box<Type>,
        /// 0-based component index.
        index: usize,
    },
}

/// Errors from parsing a `TypeSpecifier` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

/// Canonicalizes type-name aliases (`"MachineInteger"` is `Integer64` on
/// the 64-bit targets this reproduction models).
pub fn normalize_name(name: &str) -> &str {
    match name {
        "MachineInteger" | "Integer" => "Integer64",
        "MachineReal" | "Real" => "Real64",
        "Complex" | "ComplexReal" => "ComplexReal64",
        "UTF8String" => "String",
        "Bool" => "Boolean",
        other => other,
    }
}

impl Type {
    /// Shorthand for an atomic type.
    pub fn atomic(name: &str) -> Type {
        Type::Atomic(Arc::from(normalize_name(name)))
    }

    /// The machine integer type.
    pub fn integer64() -> Type {
        Type::atomic("Integer64")
    }

    /// The machine real type.
    pub fn real64() -> Type {
        Type::atomic("Real64")
    }

    /// The machine complex type.
    pub fn complex() -> Type {
        Type::atomic("ComplexReal64")
    }

    /// The boolean type.
    pub fn boolean() -> Type {
        Type::atomic("Boolean")
    }

    /// The string type.
    pub fn string() -> Type {
        Type::atomic("String")
    }

    /// The symbolic expression type (F8).
    pub fn expression() -> Type {
        Type::atomic("Expression")
    }

    /// The unit type for statements.
    pub fn void() -> Type {
        Type::atomic("Void")
    }

    /// A packed-array type of the given element type and rank.
    pub fn tensor(element: Type, rank: i64) -> Type {
        Type::Constructor {
            name: Arc::from("Tensor"),
            args: vec![element, Type::Literal(rank)],
        }
    }

    /// A function type.
    pub fn arrow(params: Vec<Type>, ret: Type) -> Type {
        Type::Arrow {
            params,
            ret: Box::new(ret),
        }
    }

    /// A monomorphic scheme (no quantifiers) or the body for instantiation.
    pub fn for_all(vars: &[&str], quals: &[(&str, &str)], body: Type) -> Type {
        Type::ForAll {
            vars: vars.iter().map(|v| Arc::from(*v)).collect(),
            quals: quals
                .iter()
                .map(|(v, c)| Qualifier {
                    var: Arc::from(*v),
                    class: Arc::from(*c),
                })
                .collect(),
            body: Box::new(body),
        }
    }

    /// Whether this is an unresolved solver variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Type::Var(_))
    }

    /// Whether the type contains no solver variables.
    pub fn is_concrete(&self) -> bool {
        match self {
            Type::Var(_) => false,
            Type::Bound(_) => false,
            Type::Atomic(_) | Type::Literal(_) => true,
            Type::Constructor { args, .. } | Type::Product(args) => {
                args.iter().all(Type::is_concrete)
            }
            Type::Arrow { params, ret } => {
                params.iter().all(Type::is_concrete) && ret.is_concrete()
            }
            Type::ForAll { body, .. } => body.free_vars().is_empty(),
            Type::Projection { base, .. } => base.is_concrete(),
        }
    }

    /// Collects free solver variables.
    pub fn free_vars(&self) -> Vec<TypeVar> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut Vec<TypeVar>) {
        match self {
            Type::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Type::Constructor { args, .. } | Type::Product(args) => {
                for a in args {
                    a.collect_free_vars(out);
                }
            }
            Type::Arrow { params, ret } => {
                for p in params {
                    p.collect_free_vars(out);
                }
                ret.collect_free_vars(out);
            }
            Type::ForAll { body, .. } => body.collect_free_vars(out),
            Type::Projection { base, .. } => base.collect_free_vars(out),
            Type::Atomic(_) | Type::Literal(_) | Type::Bound(_) => {}
        }
    }

    /// Parses a `TypeSpecifier` expression (§4.4) into a type.
    ///
    /// Accepted forms:
    /// - `"Integer64"` (atomic constructor, aliases normalized)
    /// - `"Tensor"["Integer64", 2]` (compound constructor)
    /// - `TypeLiteral[1, "Integer64"]`
    /// - `{"Integer32", "Integer32"} -> "Real64"` (via `Rule`)
    /// - `TypeForAll[{"a"}, {Element["a", "Integral"]}, {"a"} -> "Real64"]`
    /// - `TypeProduct[...]`, `TypeProjection[prod, i]`
    /// - `TypeSpecifier[spec]` wrappers
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] for malformed specifications.
    pub fn from_expr(e: &Expr) -> Result<Type, TypeError> {
        let t = Self::from_expr_in(e, &[])?;
        t.validate()?;
        Ok(t)
    }

    /// Checks that every atomic/constructor name in the type is one the
    /// compiler knows. `Typed[x, "Quaternion"]` must be a compile error,
    /// not an opaque value that fails at code generation.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] naming the first unknown type.
    pub fn validate(&self) -> Result<(), TypeError> {
        const ATOMS: &[&str] = &[
            "Integer8",
            "Integer16",
            "Integer32",
            "Integer64",
            "UnsignedInteger8",
            "UnsignedInteger16",
            "UnsignedInteger32",
            "UnsignedInteger64",
            "Real32",
            "Real64",
            "ComplexReal64",
            "Boolean",
            "String",
            "Expression",
            "Void",
        ];
        match self {
            Type::Atomic(name) => {
                if ATOMS.contains(&&**name) {
                    Ok(())
                } else {
                    Err(TypeError(format!("unknown type \"{name}\"")))
                }
            }
            Type::Constructor { name, args } => {
                if &**name != "Tensor" {
                    return Err(TypeError(format!("unknown type constructor \"{name}\"")));
                }
                args.iter().try_for_each(Type::validate)
            }
            Type::Arrow { params, ret } => {
                params.iter().try_for_each(Type::validate)?;
                ret.validate()
            }
            Type::Product(args) => args.iter().try_for_each(Type::validate),
            Type::Projection { base, .. } => base.validate(),
            Type::ForAll { body, .. } => body.validate(),
            _ => Ok(()),
        }
    }

    fn from_expr_in(e: &Expr, bound: &[Arc<str>]) -> Result<Type, TypeError> {
        match e.kind() {
            ExprKind::Str(s) => {
                if let Some(name) = bound.iter().find(|b| b.as_ref() == &**s) {
                    Ok(Type::Bound(name.clone()))
                } else {
                    Ok(Type::atomic(s))
                }
            }
            ExprKind::Integer(v) => Ok(Type::Literal(*v)),
            ExprKind::Normal(n) => {
                // Compound constructor with a string head.
                if let ExprKind::Str(name) = n.head().kind() {
                    let args = n
                        .args()
                        .iter()
                        .map(|a| Self::from_expr_in(a, bound))
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(Type::Constructor {
                        name: Arc::from(normalize_name(name)),
                        args,
                    });
                }
                let head = n.head().as_symbol().map(|s| s.name().to_owned());
                match head.as_deref() {
                    Some("TypeSpecifier") if n.args().len() == 1 => {
                        Self::from_expr_in(&n.args()[0], bound)
                    }
                    Some("Rule") if n.args().len() == 2 => {
                        let params_expr = &n.args()[0];
                        let params = if params_expr.has_head("List") {
                            params_expr
                                .args()
                                .iter()
                                .map(|a| Self::from_expr_in(a, bound))
                                .collect::<Result<Vec<_>, _>>()?
                        } else {
                            vec![Self::from_expr_in(params_expr, bound)?]
                        };
                        let ret = Self::from_expr_in(&n.args()[1], bound)?;
                        Ok(Type::arrow(params, ret))
                    }
                    Some("TypeLiteral") if n.args().len() == 2 => {
                        let v = n.args()[0].as_i64().ok_or_else(|| {
                            TypeError("TypeLiteral value must be an integer".into())
                        })?;
                        Ok(Type::Literal(v))
                    }
                    Some("TypeForAll") if (2..=3).contains(&n.args().len()) => {
                        let vars_expr = &n.args()[0];
                        if !vars_expr.has_head("List") {
                            return Err(TypeError("TypeForAll variables must be a list".into()));
                        }
                        let vars: Vec<Arc<str>> = vars_expr
                            .args()
                            .iter()
                            .map(|v| {
                                v.as_str().map(Arc::from).ok_or_else(|| {
                                    TypeError("TypeForAll variable must be a string".into())
                                })
                            })
                            .collect::<Result<_, _>>()?;
                        let (quals, body_expr) = if n.args().len() == 3 {
                            (parse_qualifiers(&n.args()[1], &vars)?, &n.args()[2])
                        } else {
                            (Vec::new(), &n.args()[1])
                        };
                        let mut inner_bound = bound.to_vec();
                        inner_bound.extend(vars.iter().cloned());
                        let body = Self::from_expr_in(body_expr, &inner_bound)?;
                        Ok(Type::ForAll {
                            vars,
                            quals,
                            body: Box::new(body),
                        })
                    }
                    Some("TypeProduct") => {
                        let args = n
                            .args()
                            .iter()
                            .map(|a| Self::from_expr_in(a, bound))
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok(Type::Product(args))
                    }
                    Some("TypeProjection") if n.args().len() == 2 => {
                        let base = Self::from_expr_in(&n.args()[0], bound)?;
                        let index = n.args()[1]
                            .as_i64()
                            .filter(|&v| v >= 1)
                            .ok_or_else(|| TypeError("TypeProjection index must be >= 1".into()))?;
                        Ok(Type::Projection {
                            base: Box::new(base),
                            index: index as usize - 1,
                        })
                    }
                    _ => Err(TypeError(format!(
                        "unrecognized type specifier {}",
                        e.to_input_form()
                    ))),
                }
            }
            _ => Err(TypeError(format!(
                "unrecognized type specifier {}",
                e.to_input_form()
            ))),
        }
    }

    /// The short IR spelling used in textual WIR dumps (`I64`, `R64`, ...).
    pub fn short_name(&self) -> String {
        match self {
            Type::Atomic(name) => match &**name {
                "Integer64" => "I64".into(),
                "Integer32" => "I32".into(),
                "Integer16" => "I16".into(),
                "Integer8" => "I8".into(),
                "Real64" => "R64".into(),
                "Real32" => "R32".into(),
                "Boolean" => "Bool".into(),
                "ComplexReal64" => "C64".into(),
                other => other.into(),
            },
            other => other.to_string(),
        }
    }
}

fn parse_qualifiers(e: &Expr, vars: &[Arc<str>]) -> Result<Vec<Qualifier>, TypeError> {
    let items: Vec<Expr> = if e.has_head("List") {
        e.args().to_vec()
    } else {
        vec![e.clone()]
    };
    items
        .iter()
        .map(|q| {
            if q.has_head("Element") && q.length() == 2 {
                let var = q.args()[0]
                    .as_str()
                    .ok_or_else(|| TypeError("qualifier variable must be a string".into()))?;
                let class = q.args()[1]
                    .as_str()
                    .ok_or_else(|| TypeError("qualifier class must be a string".into()))?;
                if !vars.iter().any(|v| &**v == var) {
                    return Err(TypeError(format!(
                        "qualifier on unbound variable \"{var}\""
                    )));
                }
                Ok(Qualifier {
                    var: Arc::from(var),
                    class: Arc::from(class),
                })
            } else {
                Err(TypeError(format!(
                    "invalid qualifier {}",
                    q.to_input_form()
                )))
            }
        })
        .collect()
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Var(v) => write!(f, "%t{}", v.0),
            Type::Bound(name) => write!(f, "{name}"),
            Type::Atomic(name) => write!(f, "{name}"),
            Type::Literal(v) => write!(f, "{v}"),
            Type::Constructor { name, args } => {
                write!(f, "{name}[")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Type::Arrow { params, ret } => {
                write!(f, "(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")->{ret}")
            }
            Type::ForAll { vars, quals, body } => {
                write!(f, "ForAll[{{")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")?;
                if !quals.is_empty() {
                    write!(f, ", {{")?;
                    for (i, q) in quals.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{} \u{2208} {}", q.var, q.class)?;
                    }
                    write!(f, "}}")?;
                }
                write!(f, ", {body}]")
            }
            Type::Product(args) => {
                write!(f, "Product[")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Type::Projection { base, index } => write!(f, "Projection[{base}, {}]", index + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    fn ty(src: &str) -> Type {
        Type::from_expr(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn atomic_and_aliases() {
        assert_eq!(ty("\"Integer64\""), Type::integer64());
        assert_eq!(ty("\"MachineInteger\""), Type::integer64());
        assert_eq!(ty("\"Real\""), Type::real64());
        assert_eq!(ty("\"Boolean\""), Type::boolean());
    }

    #[test]
    fn compound_constructor() {
        let t = ty("\"Tensor\"[\"Integer64\", 2]");
        assert_eq!(t, Type::tensor(Type::integer64(), 2));
        assert_eq!(t.to_string(), "Tensor[Integer64, 2]");
    }

    #[test]
    fn function_types() {
        let t = ty("{\"Integer32\", \"Integer32\"} -> \"Real64\"");
        assert_eq!(
            t,
            Type::arrow(
                vec![Type::atomic("Integer32"), Type::atomic("Integer32")],
                Type::real64()
            )
        );
        assert_eq!(t.to_string(), "(Integer32, Integer32)->Real64");
        // Single unbracketed parameter.
        let t = ty("\"Integer64\" -> \"Real64\"");
        assert_eq!(t, Type::arrow(vec![Type::integer64()], Type::real64()));
    }

    #[test]
    fn polymorphic_schemes() {
        let t = ty("TypeForAll[{\"a\"}, {\"a\"} -> \"Real64\"]");
        match &t {
            Type::ForAll { vars, quals, body } => {
                assert_eq!(vars.len(), 1);
                assert!(quals.is_empty());
                assert_eq!(
                    **body,
                    Type::arrow(vec![Type::Bound(Arc::from("a"))], Type::real64())
                );
            }
            other => panic!("expected scheme, got {other:?}"),
        }
    }

    #[test]
    fn qualified_schemes() {
        let t = ty("TypeForAll[{\"a\"}, {Element[\"a\", \"Integral\"]}, {\"a\"} -> \"Real64\"]");
        match &t {
            Type::ForAll { quals, .. } => {
                assert_eq!(quals.len(), 1);
                assert_eq!(&*quals[0].class, "Integral");
            }
            other => panic!("expected scheme, got {other:?}"),
        }
    }

    #[test]
    fn paper_map_type_parses() {
        // One of Map's definitions from §4.4.
        let src = "TypeSpecifier[TypeForAll[{\"a\", \"b\"}, \
                   {{\"a\"} -> \"b\", \"Tensor\"[\"a\", 1]} -> \"Tensor\"[\"b\", 1]]]";
        let t = ty(src);
        assert!(matches!(t, Type::ForAll { ref vars, .. } if vars.len() == 2));
        assert_eq!(
            t.to_string(),
            "ForAll[{a, b}, ((a)->b, Tensor[a, 1])->Tensor[b, 1]]"
        );
    }

    #[test]
    fn products_and_projections() {
        let t = ty("TypeProjection[TypeProduct[\"Integer64\", \"String\"], 2]");
        assert_eq!(
            t,
            Type::Projection {
                base: Box::new(Type::Product(vec![Type::integer64(), Type::string()])),
                index: 1
            }
        );
    }

    #[test]
    fn errors() {
        assert!(Type::from_expr(&parse("foo").unwrap()).is_err());
        assert!(Type::from_expr(&parse("TypeForAll[{x}, \"Integer64\"]").unwrap()).is_err());
        assert!(Type::from_expr(
            &parse("TypeForAll[{\"a\"}, {Element[\"b\", \"Integral\"]}, \"a\"]").unwrap()
        )
        .is_err());
    }

    #[test]
    fn concreteness_and_vars() {
        assert!(Type::integer64().is_concrete());
        assert!(!Type::Var(TypeVar(0)).is_concrete());
        let t = Type::arrow(vec![Type::Var(TypeVar(1))], Type::real64());
        assert_eq!(t.free_vars(), vec![TypeVar(1)]);
        assert!(!t.is_concrete());
    }

    #[test]
    fn short_names() {
        assert_eq!(Type::integer64().short_name(), "I64");
        assert_eq!(Type::real64().short_name(), "R64");
        assert_eq!(Type::boolean().short_name(), "Bool");
        assert_eq!(Type::string().short_name(), "String");
    }
}
