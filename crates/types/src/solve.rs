//! The constraint-graph solver (§4.4).
//!
//! "The solver creates a graph where every node in the graph is a
//! constraint. An edge exists between two constraints in the graph if their
//! free variable sets overlap. ... substitution ... is applied iteratively
//! only on the strongly connected components of the graph."
//!
//! The solver computes SCCs (Tarjan), orders components topologically, and
//! iterates within each component until a fixed point: equalities unify
//! immediately; call constraints resolve once their argument types are
//! concrete enough; alternatives pick the lowest-promotion-cost option with
//! ambiguity detection.

use crate::constraint::Constraint;
use crate::env::{ResolveError, ResolvedCall, TypeEnvironment};
use crate::subst::{promotion_cost, unify, Subst};
use crate::ty::{Type, TypeVar};
use std::collections::HashMap;

/// Inference failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// A unification failure with provenance.
    Mismatch {
        /// Description of the clash.
        message: String,
        /// The constraint's origin.
        origin: String,
    },
    /// A call failed to resolve.
    Resolution(ResolveError),
    /// No progress could be made; types remain unknown. The paper's
    /// compiler reports a missing-type error at code generation (§4.6).
    Unresolved {
        /// Display forms of the stuck constraints.
        stuck: Vec<String>,
    },
    /// An alternative had no valid option.
    NoAlternative {
        /// The constrained type.
        t: String,
        /// Provenance.
        origin: String,
    },
    /// An alternative had tied options with no specificity ordering.
    AmbiguousAlternative {
        /// The constrained type.
        t: String,
        /// Provenance.
        origin: String,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Mismatch { message, origin } => write!(f, "{message} (at {origin})"),
            SolveError::Resolution(e) => write!(f, "{e}"),
            SolveError::Unresolved { stuck } => {
                write!(f, "could not infer types for: {}", stuck.join("; "))
            }
            SolveError::NoAlternative { t, origin } => {
                write!(f, "no alternative matches {t} (at {origin})")
            }
            SolveError::AmbiguousAlternative { t, origin } => {
                write!(f, "ambiguous alternatives for {t} (at {origin})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// The output of a successful solve.
#[derive(Debug, Default)]
pub struct Solution {
    /// The final substitution; apply it to every annotated type.
    pub subst: Subst,
    /// Chosen overload per call site.
    pub calls: HashMap<usize, ResolvedCall>,
}

/// Solves a constraint set against a type environment.
///
/// # Errors
///
/// See [`SolveError`].
pub fn solve(
    constraints: Vec<Constraint>,
    env: &TypeEnvironment,
    mut subst: Subst,
) -> Result<Solution, SolveError> {
    let components = scc_order(&constraints);
    let mut solution = Solution {
        subst: Subst::new(),
        calls: HashMap::new(),
    };
    // Never hand out fresh variables that collide with the caller's.
    for c in &constraints {
        for v in c.free_vars() {
            subst.reserve(v.0);
        }
    }

    for component in components {
        let mut pending: Vec<&Constraint> = component.iter().map(|&ix| &constraints[ix]).collect();
        loop {
            let before = pending.len();
            let mut still_pending = Vec::new();
            for c in std::mem::take(&mut pending) {
                if !process(c, env, &mut subst, &mut solution, false)? {
                    still_pending.push(c);
                }
            }
            pending = still_pending;
            // Stop at quiescence: either everything discharged or no
            // progress (the global retry below gets another look).
            if pending.is_empty() || pending.len() == before {
                break;
            }
        }
        // Global retry of anything still stuck in this component.
        let mut stuck: Vec<&Constraint> = pending;
        for _ in 0..4 {
            if stuck.is_empty() {
                break;
            }
            let before = stuck.len();
            let mut next = Vec::new();
            for c in stuck {
                if !process(c, env, &mut subst, &mut solution, true)? {
                    next.push(c);
                }
            }
            stuck = next;
            if stuck.len() == before {
                break;
            }
        }
        if !stuck.is_empty() {
            return Err(SolveError::Unresolved {
                stuck: stuck
                    .iter()
                    .map(|c| format!("{} (at {})", render(c, &subst), c.origin()))
                    .collect(),
            });
        }
    }
    solution.subst = subst;
    Ok(solution)
}

fn render(c: &Constraint, subst: &Subst) -> String {
    match c {
        Constraint::Call {
            name, args, ret, ..
        } => {
            let args: Vec<String> = args.iter().map(|a| subst.apply(a).to_string()).collect();
            format!("{name}({}) -> {}", args.join(", "), subst.apply(ret))
        }
        other => other.to_string(),
    }
}

/// Processes a constraint; returns whether it was discharged. `force`
/// (set during the stuck-retry phase) enables single-overload commitment
/// for `Call` constraints whose arguments are not yet concrete.
fn process(
    c: &Constraint,
    env: &TypeEnvironment,
    subst: &mut Subst,
    solution: &mut Solution,
    force: bool,
) -> Result<bool, SolveError> {
    match c {
        Constraint::Equality { a, b, origin } => {
            unify(a, b, subst).map_err(|e| SolveError::Mismatch {
                message: e.message,
                origin: origin.clone(),
            })?;
            Ok(true)
        }
        Constraint::Instantiate { tau, rho, origin } => {
            let (body, quals, var_map) = crate::env::instantiate(&subst.apply(rho), subst);
            unify(tau, &body, subst).map_err(|e| SolveError::Mismatch {
                message: e.message,
                origin: origin.clone(),
            })?;
            // Qualifiers on the instantiation must hold once resolved.
            for q in &quals {
                if let Some((_, v)) = var_map.iter().find(|(n, _)| n == &q.var) {
                    let bound = subst.apply(&Type::Var(*v));
                    if !bound.is_var() && !env.classes.is_member(&bound, &q.class) {
                        return Err(SolveError::Mismatch {
                            message: format!("{bound} is not in class {}", q.class),
                            origin: origin.clone(),
                        });
                    }
                }
            }
            Ok(true)
        }
        Constraint::Generalize {
            sigma, tau, mono, ..
        } => {
            let resolved = subst.apply(tau);
            let free: Vec<TypeVar> = resolved
                .free_vars()
                .into_iter()
                .filter(|v| !mono.contains(v))
                .collect();
            if free.is_empty() {
                subst.bind(*sigma, resolved);
                return Ok(true);
            }
            // Quantify the remaining free variables into a scheme.
            let mut names = Vec::new();
            let mut renamed = resolved.clone();
            for (ix, v) in free.iter().enumerate() {
                let name: std::sync::Arc<str> = std::sync::Arc::from(format!("g{ix}"));
                names.push(name.clone());
                renamed = replace_var(&renamed, *v, &Type::Bound(name));
            }
            subst.bind(
                *sigma,
                Type::ForAll {
                    vars: names,
                    quals: Vec::new(),
                    body: Box::new(renamed),
                },
            );
            Ok(true)
        }
        Constraint::Alternative { t, options, origin } => {
            let resolved = subst.apply(t);
            if resolved.is_var() {
                return Ok(false); // wait for more information
            }
            let mut best: Option<(u32, &Type)> = None;
            let mut tie = false;
            for o in options {
                let cost = if unify_clone(&resolved, o, subst) {
                    Some(0)
                } else {
                    promotion_cost(&resolved, &subst.apply(o))
                };
                if let Some(cost) = cost {
                    match &best {
                        None => best = Some((cost, o)),
                        Some((b, prev)) if cost < *b => {
                            best = Some((cost, o));
                            tie = false;
                        }
                        Some((b, prev)) if cost == *b && subst.apply(prev) != subst.apply(o) => {
                            tie = true;
                        }
                        _ => {}
                    }
                }
            }
            match best {
                None => Err(SolveError::NoAlternative {
                    t: resolved.to_string(),
                    origin: origin.clone(),
                }),
                Some(_) if tie => Err(SolveError::AmbiguousAlternative {
                    t: resolved.to_string(),
                    origin: origin.clone(),
                }),
                Some((_, o)) => {
                    let _ = unify(&resolved, o, subst);
                    Ok(true)
                }
            }
        }
        Constraint::Call {
            site,
            name,
            args,
            ret,
            origin,
        } => {
            let mut resolved_args: Vec<Type> = args.iter().map(|a| subst.apply(a)).collect();
            if resolved_args.iter().any(|a| !a.is_concrete()) {
                // Single-overload forcing: when nothing else can make
                // progress and the name has exactly one signature, commit
                // that signature's structure. This is how a higher-order
                // argument (an untyped lambda passed to Fold/Map) learns
                // its parameter types: unifying `{a, b} -> a` against the
                // closure's arrow pins the lambda's parameters.
                let defs = env.lookup(name);
                if force && defs.len() == 1 {
                    let mut trial = subst.clone();
                    let (body, _, _) = crate::env::instantiate(&defs[0].scheme, &mut trial);
                    if let Type::Arrow { params, .. } = body {
                        if params.len() == resolved_args.len()
                            && params
                                .iter()
                                .zip(&resolved_args)
                                .all(|(p, a)| unify(p, a, &mut trial).is_ok())
                        {
                            *subst = trial;
                            resolved_args = args.iter().map(|a| subst.apply(a)).collect();
                        }
                    }
                }
                if resolved_args.iter().any(|a| !a.is_concrete()) {
                    return Ok(false); // arguments not known yet
                }
            }
            let call = env
                .resolve_call(name, &resolved_args)
                .map_err(SolveError::Resolution)?;
            unify(ret, &call.ret, subst).map_err(|e| SolveError::Mismatch {
                message: e.message,
                origin: origin.clone(),
            })?;
            solution.calls.insert(*site, call);
            Ok(true)
        }
    }
}

fn unify_clone(a: &Type, b: &Type, subst: &mut Subst) -> bool {
    let mut trial = subst.clone();
    if unify(a, b, &mut trial).is_ok() {
        *subst = trial;
        true
    } else {
        false
    }
}

fn replace_var(t: &Type, v: TypeVar, with: &Type) -> Type {
    match t {
        Type::Var(x) if *x == v => with.clone(),
        Type::Constructor { name, args } => Type::Constructor {
            name: name.clone(),
            args: args.iter().map(|a| replace_var(a, v, with)).collect(),
        },
        Type::Arrow { params, ret } => Type::Arrow {
            params: params.iter().map(|p| replace_var(p, v, with)).collect(),
            ret: Box::new(replace_var(ret, v, with)),
        },
        Type::Product(args) => {
            Type::Product(args.iter().map(|a| replace_var(a, v, with)).collect())
        }
        Type::Projection { base, index } => Type::Projection {
            base: Box::new(replace_var(base, v, with)),
            index: *index,
        },
        _ => t.clone(),
    }
}

/// Builds the constraint graph and returns constraint indices grouped into
/// strongly connected components in (reverse-topological-corrected)
/// dependency order.
fn scc_order(constraints: &[Constraint]) -> Vec<Vec<usize>> {
    let n = constraints.len();
    // var -> constraints mentioning it
    let mut by_var: HashMap<TypeVar, Vec<usize>> = HashMap::new();
    for (ix, c) in constraints.iter().enumerate() {
        for v in c.free_vars() {
            by_var.entry(v).or_default().push(ix);
        }
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for members in by_var.values() {
        for &a in members {
            for &b in members {
                if a != b && !adj[a].contains(&b) {
                    adj[a].push(b);
                }
            }
        }
    }
    // Tarjan's SCC (iterative).
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    #[derive(Clone, Copy)]
    enum Frame {
        Enter(usize),
        Continue(usize, usize),
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(start)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call_stack.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, child_ix) => {
                    if child_ix < adj[v].len() {
                        let w = adj[v][child_ix];
                        call_stack.push(Frame::Continue(v, child_ix + 1));
                        if index[w] == usize::MAX {
                            call_stack.push(Frame::Enter(w));
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    } else {
                        // Post-processing: fold children lows.
                        for &w in &adj[v] {
                            if (on_stack[w] || low[w] < low[v]) && index[w] > index[v] {
                                low[v] = low[v].min(low[w]);
                            }
                        }
                        if low[v] == index[v] {
                            let mut comp = Vec::new();
                            while let Some(w) = stack.pop() {
                                on_stack[w] = false;
                                comp.push(w);
                                if w == v {
                                    break;
                                }
                            }
                            comp.sort_unstable();
                            components.push(comp);
                        }
                    }
                }
            }
        }
    }
    // Components come out in reverse topological order for the (symmetric)
    // overlap graph; ordering within a symmetric graph is by discovery,
    // which is stable enough: sort each batch by smallest constraint index
    // so earlier (definition-order) constraints run first.
    components.sort_by_key(|c| c.first().copied().unwrap_or(usize::MAX));
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::FunctionImpl;
    use std::sync::Arc;
    use wolfram_expr::parse;

    fn env_with_plus() -> TypeEnvironment {
        let mut env = TypeEnvironment::new();
        let scheme = Type::from_expr(
            &parse("TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, {\"a\", \"a\"} -> \"a\"]")
                .unwrap(),
        )
        .unwrap();
        env.declare_function("Plus", scheme, FunctionImpl::Primitive(Arc::from("plus")));
        env
    }

    fn var(n: u32) -> Type {
        Type::Var(TypeVar(n))
    }

    #[test]
    fn chained_equalities() {
        let env = TypeEnvironment::new();
        let cs = vec![
            Constraint::Equality {
                a: var(0),
                b: var(1),
                origin: "a".into(),
            },
            Constraint::Equality {
                a: var(1),
                b: Type::integer64(),
                origin: "b".into(),
            },
        ];
        let sol = solve(cs, &env, Subst::new()).unwrap();
        assert_eq!(sol.subst.apply(&var(0)), Type::integer64());
    }

    #[test]
    fn call_resolution_through_vars() {
        // %2 = Plus(%0, %1) with %0 = %1 = Integer64 discovered later.
        let env = env_with_plus();
        let cs = vec![
            Constraint::Call {
                site: 7,
                name: "Plus".into(),
                args: vec![var(0), var(1)],
                ret: var(2),
                origin: "inst 7".into(),
            },
            Constraint::Equality {
                a: var(0),
                b: Type::integer64(),
                origin: "arg".into(),
            },
            Constraint::Equality {
                a: var(1),
                b: Type::integer64(),
                origin: "lit".into(),
            },
        ];
        let sol = solve(cs, &env, Subst::new()).unwrap();
        assert_eq!(sol.subst.apply(&var(2)), Type::integer64());
        assert_eq!(sol.calls[&7].ret, Type::integer64());
    }

    #[test]
    fn mixed_call_promotes() {
        let env = env_with_plus();
        let cs = vec![
            Constraint::Equality {
                a: var(0),
                b: Type::integer64(),
                origin: "x".into(),
            },
            Constraint::Equality {
                a: var(1),
                b: Type::real64(),
                origin: "y".into(),
            },
            Constraint::Call {
                site: 1,
                name: "Plus".into(),
                args: vec![var(0), var(1)],
                ret: var(2),
                origin: "call".into(),
            },
        ];
        let sol = solve(cs, &env, Subst::new()).unwrap();
        assert_eq!(sol.subst.apply(&var(2)), Type::real64());
        assert!(sol.calls[&1].cost > 0);
    }

    #[test]
    fn mismatch_reported_with_origin() {
        let env = TypeEnvironment::new();
        let cs = vec![
            Constraint::Equality {
                a: var(0),
                b: Type::integer64(),
                origin: "first".into(),
            },
            Constraint::Equality {
                a: var(0),
                b: Type::string(),
                origin: "second".into(),
            },
        ];
        match solve(cs, &env, Subst::new()) {
            Err(SolveError::Mismatch { origin, .. }) => assert_eq!(origin, "second"),
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unresolved_reported() {
        let env = env_with_plus();
        // A call whose arguments never become known.
        let cs = vec![Constraint::Call {
            site: 0,
            name: "Plus".into(),
            args: vec![var(0), var(1)],
            ret: var(2),
            origin: "dangling".into(),
        }];
        assert!(matches!(
            solve(cs, &env, Subst::new()),
            Err(SolveError::Unresolved { .. })
        ));
    }

    #[test]
    fn alternatives_pick_most_specific() {
        let env = TypeEnvironment::new();
        let cs = vec![
            Constraint::Equality {
                a: var(0),
                b: Type::integer64(),
                origin: "v".into(),
            },
            Constraint::Alternative {
                t: var(0),
                options: vec![Type::real64(), Type::integer64()],
                origin: "alt".into(),
            },
        ];
        // Integer64 matches exactly (cost 0) over Real64 (promotion).
        assert!(solve(cs, &env, Subst::new()).is_ok());
    }

    #[test]
    fn alternative_failure_modes() {
        let env = TypeEnvironment::new();
        let cs = vec![
            Constraint::Equality {
                a: var(0),
                b: Type::string(),
                origin: "v".into(),
            },
            Constraint::Alternative {
                t: var(0),
                options: vec![Type::real64(), Type::integer64()],
                origin: "alt".into(),
            },
        ];
        assert!(matches!(
            solve(cs, &env, Subst::new()),
            Err(SolveError::NoAlternative { .. })
        ));
    }

    #[test]
    fn instantiate_constraint() {
        let env = TypeEnvironment::new();
        let scheme = Type::for_all(
            &["a"],
            &[],
            Type::arrow(
                vec![Type::Bound(Arc::from("a"))],
                Type::Bound(Arc::from("a")),
            ),
        );
        let cs = vec![
            Constraint::Instantiate {
                tau: var(0),
                rho: scheme,
                origin: "inst".into(),
            },
            Constraint::Equality {
                a: var(0),
                b: Type::arrow(vec![Type::integer64()], var(1)),
                origin: "use".into(),
            },
        ];
        let sol = solve(cs, &env, Subst::new()).unwrap();
        assert_eq!(sol.subst.apply(&var(1)), Type::integer64());
    }

    #[test]
    fn generalize_constraint() {
        let env = TypeEnvironment::new();
        let cs = vec![Constraint::Generalize {
            sigma: TypeVar(5),
            tau: Type::arrow(vec![var(0)], var(0)),
            mono: vec![],
            origin: "gen".into(),
        }];
        let sol = solve(cs, &env, Subst::new()).unwrap();
        match sol.subst.apply(&var(5)) {
            Type::ForAll { vars, .. } => assert_eq!(vars.len(), 1),
            other => panic!("expected scheme, got {other}"),
        }
    }

    #[test]
    fn generalize_respects_mono_set() {
        let env = TypeEnvironment::new();
        let cs = vec![Constraint::Generalize {
            sigma: TypeVar(5),
            tau: Type::arrow(vec![var(0)], var(1)),
            mono: vec![TypeVar(0)],
            origin: "gen".into(),
        }];
        let sol = solve(cs, &env, Subst::new()).unwrap();
        match sol.subst.apply(&var(5)) {
            Type::ForAll { vars, body, .. } => {
                assert_eq!(vars.len(), 1);
                // var(0) stays free inside the scheme body.
                assert_eq!(body.free_vars(), vec![TypeVar(0)]);
            }
            other => panic!("expected scheme, got {other}"),
        }
    }

    #[test]
    fn scc_groups_connected_constraints() {
        let cs = vec![
            Constraint::Equality {
                a: var(0),
                b: var(1),
                origin: String::new(),
            },
            Constraint::Equality {
                a: var(1),
                b: var(2),
                origin: String::new(),
            },
            Constraint::Equality {
                a: var(9),
                b: Type::integer64(),
                origin: String::new(),
            },
        ];
        let comps = scc_order(&cs);
        // Constraints 0 and 1 share %t1 -> same component; 2 is isolated.
        let of = |ix: usize| comps.iter().position(|c| c.contains(&ix)).unwrap();
        assert_eq!(of(0), of(1));
        assert_ne!(of(0), of(2));
    }
}
