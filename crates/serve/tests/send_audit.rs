//! Positive half of the Send/Sync audit (the negative half — compiled
//! artifacts and `Value` must NOT be `Send` — is the pair of
//! `compile_fail` doctests in the crate root).
//!
//! Everything that crosses the service's thread boundary is plain data or
//! atomics, and the pool itself is shareable so closed-loop clients can
//! drive one pool from many threads.

use wolfram_serve::{
    CompilerOptions, DeadlineTimer, ServeError, ServeMetrics, ServePool, ServeReply, ServeRequest,
};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn service_boundary_types_are_send_and_sync() {
    assert_send_sync::<ServeRequest>();
    assert_send_sync::<ServeReply>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<ServeMetrics>();
    assert_send_sync::<DeadlineTimer>();
    assert_send_sync::<CompilerOptions>();
    // `&ServePool` is what client threads share.
    assert_send_sync::<ServePool>();
}
