//! The Send/Sync audit, positive direction: everything the shared
//! two-level cache stores or hands between threads must be `Send + Sync`.
//! (The remaining negative half — `CompiledCodeFunction`, the *execution*
//! handle with its `Rc` engine and machine, must NOT be `Send` — is the
//! `compile_fail` doctest in the crate root.)
//!
//! Before the shared-cache rework these assertions were the inverse:
//! compiled artifacts and `Value` were `Rc`-based and thread-confined,
//! and the pool's sharding had to guarantee they never moved. Now the
//! artifact types are `Arc`-based by construction, a single compilation
//! serves every worker, and these tests pin that property at compile
//! time so an accidental `Rc` reintroduction fails CI here, loudly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use wolfram_serve::{
    Claim, CompilerOptions, DeadlineTimer, DiskCache, Entry, ServeConfig, ServeError, ServeMetrics,
    ServePool, ServeReply, ServeRequest, SharedArtifactCache, Tier,
};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_artifact_types_are_send_and_sync() {
    // The compiled-artifact family: what the level-1 cache stores.
    assert_send_sync::<wolfram_compiler_core::CompiledArtifact>();
    assert_send_sync::<wolfram_bytecode::CompiledFunction>();
    // The data embedded inside artifacts (constants, interned strings,
    // big integers, tensors, expression forms).
    assert_send_sync::<wolfram_runtime::Value>();
    assert_send_sync::<wolfram_runtime::Tensor>();
    assert_send_sync::<wolfram_expr::Expr>();
}

#[test]
fn service_boundary_types_are_send_and_sync() {
    assert_send_sync::<ServeRequest>();
    assert_send_sync::<ServeReply>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<ServeMetrics>();
    assert_send_sync::<DeadlineTimer>();
    assert_send_sync::<CompilerOptions>();
    // The cache layers themselves.
    assert_send_sync::<SharedArtifactCache<wolfram_compiler_core::CompiledArtifact>>();
    assert_send_sync::<DiskCache>();
    // `&ServePool` is what client threads (and connection handlers)
    // share.
    assert_send_sync::<ServePool>();
}

/// Sixteen threads race distinct *spellings* of one program (cache-key
/// canonicalization folds them together) through one pool: the shared
/// store plus single-flight tickets must produce exactly one compile.
#[test]
fn sixteen_threads_one_program_one_compile() {
    let pool = Arc::new(ServePool::start(ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    }));
    let threads = 16;
    let barrier = Arc::new(Barrier::new(threads));
    let failures = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                // Vary whitespace and sugar: different request texts
                // (which route to different shards), one canonical
                // program (one cache key).
                let pad = " ".repeat(i + 1);
                let body = if i % 2 == 0 {
                    "x * x + 1"
                } else {
                    "Plus[Times[x, x], 1]"
                };
                let source = format!("Function[{pad}{{Typed[x, \"MachineInteger\"]}},{pad}{body}]");
                barrier.wait();
                for n in 0..8 {
                    let reply = pool.call(ServeRequest::new(&source, [format!("{n}")]));
                    if reply.result.as_deref() != Ok(format!("{}", n * n + 1).as_str()) {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(failures.load(Ordering::Relaxed), 0, "every reply correct");
    let compiles = pool.metrics().compiles.load(Ordering::Relaxed);
    assert_eq!(
        compiles, 1,
        "16 threads x 8 calls of one canonical program must compile exactly once"
    );
    assert_eq!(pool.resident_artifacts(), 1);
    let hits = pool.metrics().cache_hits.load(Ordering::Relaxed);
    let misses = pool.metrics().cache_misses.load(Ordering::Relaxed);
    assert_eq!(hits + misses, 16 * 8);
    assert_eq!(misses, 1, "only the compiling claimant may count a miss");
}

/// The single-flight claim protocol directly: concurrent claimants of one
/// key produce one compute ticket, everyone else blocks and then hits.
#[test]
fn shared_cache_claim_is_exported_and_single_flight() {
    let cache: Arc<SharedArtifactCache<u32>> = SharedArtifactCache::new(4, 8);
    let key = wolfram_serve::CacheKey {
        program: [1, 2],
        options: 3,
    };
    match cache.claim(key) {
        Claim::Compute(ticket) => {
            assert_eq!(ticket.key(), key);
            ticket.fulfill(Entry {
                artifact: 7,
                tier: Tier::Bytecode,
                compile_ns: 100,
                hits: 0,
            });
        }
        Claim::Hit { .. } => panic!("empty cache cannot hit"),
    }
    match cache.claim(key) {
        Claim::Hit { artifact, tier, .. } => {
            assert_eq!(artifact, 7);
            assert_eq!(tier, Tier::Bytecode);
        }
        Claim::Compute(_) => panic!("fulfilled key must hit"),
    }
}

/// Truncating a disk-cache entry under a *live pool* must fall back to a
/// clean recompile (and overwrite), never an error or a panic.
#[test]
fn pool_recompiles_through_disk_corruption() {
    let dir = std::env::temp_dir().join(format!(
        "wolfram-serve-audit-corrupt-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let source = "Function[{Typed[n, \"MachineInteger\"]}, n + n]";
    let config = || ServeConfig {
        workers: 2,
        tier_policy: wolfram_serve::TierPolicy::BytecodeOnly,
        disk_cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // Cold pool: compiles once, stores the image.
    {
        let pool = ServePool::start(config());
        let reply = pool.call(ServeRequest::new(source, ["21"]));
        assert_eq!(reply.result.as_deref(), Ok("42"));
        assert_eq!(pool.metrics().disk_stores.load(Ordering::Relaxed), 1);
    }

    // Truncate the stored entry to half its length.
    let disk = DiskCache::open(&dir).unwrap();
    assert_eq!(disk.entry_count(), 1);
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".wlbc"))
        .unwrap()
        .path();
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();

    // Restarted pool: the corrupt entry is detected, counted, recompiled,
    // and overwritten — and the answer is still right.
    {
        let pool = ServePool::start(config());
        let reply = pool.call(ServeRequest::new(source, ["21"]));
        assert_eq!(reply.result.as_deref(), Ok("42"));
        assert_eq!(pool.metrics().disk_corrupt.load(Ordering::Relaxed), 1);
        assert_eq!(pool.metrics().disk_hits.load(Ordering::Relaxed), 0);
        assert_eq!(pool.metrics().compiles.load(Ordering::Relaxed), 1);
        assert_eq!(pool.metrics().disk_stores.load(Ordering::Relaxed), 1);
    }

    // Third start: the overwritten entry now disk-hits with zero
    // compiles — the warm-restart guarantee.
    {
        let pool = ServePool::start(config());
        let reply = pool.call(ServeRequest::new(source, ["21"]));
        assert_eq!(reply.result.as_deref(), Ok("42"));
        assert_eq!(
            reply.cache,
            wolfram_serve::CacheStatus::DiskHit,
            "overwritten entry must serve from disk"
        );
        assert_eq!(pool.metrics().compiles.load(Ordering::Relaxed), 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
