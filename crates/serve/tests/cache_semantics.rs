//! Cache-semantics integration tests from the serving-layer checklist:
//! single-flight under contention, options-fingerprint separation, the
//! LRU bound observed through the pool, and artifact determinism over
//! the difftest corpus.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use wolfram_compiler_core::Compiler;
use wolfram_serve::{CacheStatus, CompilerOptions, ServeConfig, ServePool, ServeRequest};

const INC: &str = "Function[{Typed[n, \"MachineInteger\"]}, n + 1]";

fn pool(workers: usize, cache_cap: usize) -> ServePool {
    ServePool::start(ServeConfig {
        workers,
        cache_cap,
        ..ServeConfig::default()
    })
}

fn g(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// N clients race the same uncached program; content routing serializes
/// them onto one shard, so exactly one compile happens and everyone else
/// hits the artifact it produced.
#[test]
fn single_flight_under_contention() {
    let pool = pool(4, 64);
    let clients = 16;
    let barrier = Barrier::new(clients);
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                barrier.wait();
                let reply = pool.call(ServeRequest::new(INC, ["41"]));
                assert_eq!(reply.result.as_deref(), Ok("42"));
            });
        }
    });
    let m = pool.metrics();
    assert_eq!(g(&m.compiles), 1, "single-flight: exactly one compile");
    assert_eq!(g(&m.cache_misses), 1);
    assert_eq!(g(&m.cache_hits), clients as u64 - 1);
    assert_eq!(g(&m.admitted), clients as u64);
    assert_eq!(g(&m.ok), clients as u64);
}

/// Same source under different `CompilerOptions` must not collide: the
/// options fingerprint is part of the cache key.
#[test]
fn options_fingerprint_separates_artifacts() {
    let pool = pool(2, 64);
    let plain = ServeRequest::new(INC, ["1"]);
    let unoptimized = CompilerOptions {
        optimization_level: 0,
        ..CompilerOptions::default()
    };
    let tweaked = ServeRequest::new(INC, ["1"]).with_options(unoptimized);

    assert_eq!(pool.call(plain.clone()).cache, CacheStatus::Miss);
    // Different options: a distinct artifact, so a second miss...
    assert_eq!(pool.call(tweaked.clone()).cache, CacheStatus::Miss);
    // ...while repeats of either variant hit their own entry.
    assert_eq!(pool.call(plain).cache, CacheStatus::Hit);
    assert_eq!(pool.call(tweaked).cache, CacheStatus::Hit);
    let m = pool.metrics();
    assert_eq!(g(&m.compiles), 2);
    assert_eq!(g(&m.cache_misses), 2);
    assert_eq!(g(&m.cache_hits), 2);
}

/// The per-shard LRU bound is visible through the pool: a single-shard
/// pool with room for two artifacts recompiles the one evicted by the
/// third distinct program.
#[test]
fn lru_bound_evicts_through_the_pool() {
    let pool = pool(1, 2);
    let programs = [
        "Function[{Typed[n, \"MachineInteger\"]}, n + 1]",
        "Function[{Typed[n, \"MachineInteger\"]}, n + 2]",
        "Function[{Typed[n, \"MachineInteger\"]}, n + 3]",
    ];
    for (i, src) in programs.iter().enumerate() {
        let reply = pool.call(ServeRequest::new(*src, ["10"]));
        assert_eq!(reply.result.as_deref().unwrap(), (11 + i).to_string());
        assert_eq!(reply.cache, CacheStatus::Miss);
    }
    // Inserting the third program evicted the first (LRU), so it misses
    // again; the second and third are still resident.
    assert_eq!(
        pool.call(ServeRequest::new(programs[0], ["10"])).cache,
        CacheStatus::Miss
    );
    assert_eq!(
        pool.call(ServeRequest::new(programs[2], ["10"])).cache,
        CacheStatus::Hit
    );
    let m = pool.metrics();
    assert_eq!(g(&m.compiles), 4);
    assert!(g(&m.cache_evictions) >= 2, "{}", g(&m.cache_evictions));
}

/// Determinism over the difftest corpus: two independent compilers emit
/// byte-identical artifact text, and a cached artifact answers exactly
/// like a fresh compile (cache-off pool) for every recorded argument set.
#[test]
fn corpus_artifacts_are_deterministic() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../difftest/corpus");
    let entries = wolfram_difftest::corpus::load_dir(&dir).expect("load difftest corpus");
    assert!(!entries.is_empty(), "corpus must not be empty");

    let cached = pool(2, 256);
    let uncached = pool(2, 0); // cache disabled: every request recompiles

    for (path, entry) in &entries {
        // Byte-identical artifact text from two fresh compilers.
        let a = Compiler::new(CompilerOptions::default()).export_string(&entry.func, "Assembler");
        let b = Compiler::new(CompilerOptions::default()).export_string(&entry.func, "Assembler");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "nondeterministic artifact for {}",
            path.display()
        );

        let src = entry.func.to_input_form();
        for args in &entry.arg_sets {
            let rendered: Vec<String> = args.iter().map(|v| v.to_expr().to_input_form()).collect();
            let warm = cached.call(ServeRequest::new(&src, rendered.clone()));
            let warm_again = cached.call(ServeRequest::new(&src, rendered.clone()));
            let cold = uncached.call(ServeRequest::new(&src, rendered));
            assert_eq!(
                warm.result,
                warm_again.result,
                "cached replay diverged for {}",
                path.display()
            );
            assert_eq!(
                warm.result,
                cold.result,
                "cached vs fresh compile diverged for {}",
                path.display()
            );
        }
    }
    assert!(cached.metrics().hit_rate() > 0.0);
    assert_eq!(g(&uncached.metrics().cache_hits), 0);
}
