//! Range-check elision through the serve pool: the elided (default) and
//! fully checked artifacts for the same source must occupy distinct
//! cache entries — in the in-memory level AND as separate files in the
//! disk level — while producing identical results.

use wolfram_serve::{
    CacheStatus, CompilerOptions, ServeConfig, ServePool, ServeRequest, TierPolicy,
};

#[test]
fn elision_on_and_off_cache_separately_in_memory_and_on_disk() {
    let dir =
        std::env::temp_dir().join(format!("wolfram-serve-elision-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // The disk level persists bytecode images only, so pin the bytecode
    // tier: the point here is that the options fingerprint (which folds
    // in `range_checks_elision`) splits the on-disk key space too.
    let pool = ServePool::start(ServeConfig {
        workers: 2,
        tier_policy: TierPolicy::BytecodeOnly,
        disk_cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });

    // A bounds-heavy loop, so the two artifacts genuinely differ: the
    // default tier proves the Part accesses and emits unchecked ops, the
    // ablation baseline keeps every check.
    let src = "Function[{Typed[n, \"MachineInteger\"]}, \
               Module[{out, i}, out = ConstantArray[0, {n}]; i = 1; \
               While[i <= n, out[[i]] = 3*i + 1; i = i + 1]; out]]";
    let args = ["5".to_string()];
    let checked_options = CompilerOptions {
        range_checks_elision: false,
        ..CompilerOptions::default()
    };

    let elided_first = pool.call(ServeRequest::new(src, args.clone()));
    let elided_again = pool.call(ServeRequest::new(src, args.clone()));
    let checked_first =
        pool.call(ServeRequest::new(src, args.clone()).with_options(checked_options.clone()));
    let checked_again =
        pool.call(ServeRequest::new(src, args.clone()).with_options(checked_options.clone()));

    // Same answer from both configurations, bit for bit in the rendering.
    let expected = elided_first.result.as_deref().expect("elided runs");
    assert_eq!(checked_first.result.as_deref(), Ok(expected));
    assert_eq!(checked_again.result.as_deref(), Ok(expected));

    // Distinct artifacts: the checked request missed even though the
    // elided artifact for the identical source was already resident.
    assert_eq!(elided_first.cache, CacheStatus::Miss);
    assert_eq!(elided_again.cache, CacheStatus::Hit);
    assert_eq!(checked_first.cache, CacheStatus::Miss);
    assert_eq!(checked_again.cache, CacheStatus::Hit);

    pool.shutdown();

    // Both artifacts reached the disk level as separate files.
    let entries = std::fs::read_dir(&dir)
        .expect("disk cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().is_file())
        .count();
    assert_eq!(
        entries, 2,
        "elision on/off must persist as two distinct disk artifacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
