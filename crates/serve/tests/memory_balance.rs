//! Leak accounting across the pool: deadline-aborted requests must leave
//! the process-wide memory counters balanced (every `MemoryAcquire` gets
//! its release, even on the abort unwind).
//!
//! This lives in its own test binary so no concurrently running test can
//! perturb the process-wide totals mid-assertion.

use std::time::Duration;
use wolfram_runtime::memory;
use wolfram_serve::{ServeConfig, ServeError, ServePool, ServeRequest};

#[test]
fn aborted_requests_do_not_leak() {
    memory::reset_global_stats();
    let pool = ServePool::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // Holds an acquired managed tensor across an infinite loop, so the
    // abort unwind is what must balance the acquire.
    let spin_tensor = "Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]]}, \
                       Module[{i = 0}, While[True, If[i > 3, i = i - 1, i = i + 1]]; v[[1]]]]";
    for _ in 0..3 {
        let reply = pool.call(
            ServeRequest::new(spin_tensor, ["{1, 2, 3}"]).with_deadline(Duration::from_millis(50)),
        );
        assert_eq!(reply.result, Err(ServeError::DeadlineExceeded));
    }

    // A successful managed run on the same pool, for contrast.
    let sum = "Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]]}, v[[1]] + v[[-1]]]";
    let ok = pool.call(ServeRequest::new(sum, ["{10, 20, 30}"]));
    assert_eq!(ok.result.as_deref(), Ok("40"));

    // Shut down so every worker has flushed its thread-local counters.
    pool.shutdown();
    let stats = memory::global_stats();
    assert!(stats.acquires > 0, "managed runs must record acquires");
    assert!(
        stats.balanced(),
        "acquire/release imbalance after aborts: {stats:?}"
    );
}
