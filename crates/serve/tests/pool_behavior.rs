//! Pool-behavior integration tests: deadlines abort without poisoning
//! the worker, admission rejects with `Overloaded` under backpressure,
//! soft numeric failures fall back per §3, and the adaptive tier policy
//! promotes hot entries.

use std::sync::atomic::Ordering;
use std::time::Duration;
use wolfram_serve::{
    CacheStatus, ServeConfig, ServeError, ServePool, ServeRequest, Tier, TierPolicy,
};

const INC: &str = "Function[{Typed[n, \"MachineInteger\"]}, n + 1]";

/// Spins forever (with abort checks at the loop header); only a deadline
/// ends it.
const SPIN: &str = "Function[{Typed[n, \"MachineInteger\"]}, \
                    Module[{i = 0}, While[True, If[i > 3, i = i - 1, i = i + 1]]; i]]";

#[test]
fn deadline_aborts_without_poisoning_the_pool() {
    let pool = ServePool::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let reply = pool.call(ServeRequest::new(SPIN, ["0"]).with_deadline(Duration::from_millis(60)));
    assert_eq!(reply.result, Err(ServeError::DeadlineExceeded));
    assert!(
        reply.result.unwrap_err().to_string().contains("Aborted"),
        "deadline failures surface as Aborted"
    );
    // The worker survives: the same shard keeps serving, and the abort
    // signal was reset (the next request is not stillborn).
    let ok = pool.call(ServeRequest::new(INC, ["41"]));
    assert_eq!(ok.result.as_deref(), Ok("42"));
    let m = pool.metrics();
    assert_eq!(m.aborted.load(Ordering::Relaxed), 1);
    assert_eq!(m.ok.load(Ordering::Relaxed), 1);
}

/// A request that exhausts its whole budget in the queue is answered
/// `Aborted` without being compiled or executed.
#[test]
fn queue_expired_deadline_skips_execution() {
    let pool = ServePool::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    // Occupy the single worker long enough for the victim to expire.
    let busy = pool
        .submit(ServeRequest::new(SPIN, ["0"]).with_deadline(Duration::from_millis(250)))
        .expect("admit the blocker");
    std::thread::sleep(Duration::from_millis(50));
    let victim = pool
        .submit(ServeRequest::new(INC, ["1"]).with_deadline(Duration::from_millis(1)))
        .expect("admit the victim");
    assert_eq!(busy.wait().result, Err(ServeError::DeadlineExceeded));
    let reply = victim.wait();
    assert_eq!(reply.result, Err(ServeError::DeadlineExceeded));
    assert_eq!(reply.cache, CacheStatus::Unreached);
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let pool = ServePool::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    // Occupy the worker, then fill the one queue slot.
    let busy = pool
        .submit(ServeRequest::new(SPIN, ["0"]).with_deadline(Duration::from_millis(300)))
        .expect("admit the blocker");
    std::thread::sleep(Duration::from_millis(100));
    let queued = pool
        .submit(ServeRequest::new(INC, ["1"]))
        .expect("one queue slot is free");
    // The queue is now full: admission must shed, not block.
    let mut overloads = 0;
    for _ in 0..4 {
        if matches!(
            pool.submit(ServeRequest::new(INC, ["2"])),
            Err(ServeError::Overloaded)
        ) {
            overloads += 1;
        }
    }
    assert!(overloads > 0, "full queue must reject with Overloaded");
    assert_eq!(busy.wait().result, Err(ServeError::DeadlineExceeded));
    assert_eq!(queued.wait().result.as_deref(), Ok("2"));
    let m = pool.metrics();
    assert!(m.rejected.load(Ordering::Relaxed) >= overloads);
    assert_eq!(
        m.queue_depth.load(Ordering::Relaxed),
        0,
        "depth drains to zero"
    );
}

/// Soft numeric failure (§3 F2): the iterative fib overflows machine
/// integers at n = 100; the hosted artifact re-runs under the interpreter
/// and the reply both carries the exact bignum and is flagged.
#[test]
fn soft_failure_falls_back_to_interpreter() {
    let pool = ServePool::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let fib = "Function[{Typed[n, \"MachineInteger\"]}, \
               Module[{a = 0, b = 1, k = 0, t = 0}, \
               While[k < n, t = a + b; a = b; b = t; k = k + 1]; a]]";
    let reply = pool.call(ServeRequest::new(fib, ["100"]));
    assert_eq!(reply.result.as_deref(), Ok("354224848179261915075"));
    assert!(reply.fell_back, "overflow must be served by the fallback");
    // Within machine range the native path answers directly.
    let fast = pool.call(ServeRequest::new(fib, ["50"]));
    assert_eq!(fast.result.as_deref(), Ok("12586269025"));
    assert!(!fast.fell_back);
    assert_eq!(pool.metrics().fallbacks.load(Ordering::Relaxed), 1);
}

/// The adaptive policy starts on the cheap bytecode tier and recompiles
/// natively once an entry has served `promote_after` hits.
#[test]
fn adaptive_policy_promotes_hot_entries() {
    let pool = ServePool::start(ServeConfig {
        workers: 1,
        tier_policy: TierPolicy::Adaptive { promote_after: 2 },
        ..ServeConfig::default()
    });
    let req = ServeRequest::new(INC, ["41"]);

    let first = pool.call(req.clone());
    assert_eq!(first.result.as_deref(), Ok("42"));
    assert_eq!(first.cache, CacheStatus::Miss);
    assert_eq!(first.tier, Some(Tier::Bytecode));

    let second = pool.call(req.clone());
    assert_eq!(second.cache, CacheStatus::Hit);
    assert_eq!(second.tier, Some(Tier::Bytecode), "1 hit < promote_after");

    let third = pool.call(req.clone());
    assert_eq!(third.cache, CacheStatus::Hit);
    assert_eq!(third.tier, Some(Tier::Native), "2nd hit triggers promotion");
    assert_eq!(third.result.as_deref(), Ok("42"));

    let fourth = pool.call(req);
    assert_eq!(fourth.tier, Some(Tier::Native), "promotion is sticky");
    let m = pool.metrics();
    assert_eq!(m.promotions.load(Ordering::Relaxed), 1);
    assert_eq!(
        m.compiles.load(Ordering::Relaxed),
        2,
        "bytecode + promotion"
    );
}
