//! The data-parallel tier through the serve pool: parallel artifacts
//! must be cached separately from scalar ones (fingerprint separation
//! observed end to end), produce identical results, and leave the
//! process-wide memory counters balanced even though the compiled code
//! fans work out to the runtime worker pool from inside a serve worker.
//!
//! Like `memory_balance.rs`, this lives in its own test binary so no
//! concurrently running test can perturb the process-wide totals
//! mid-assertion.

use wolfram_runtime::{memory, ParallelConfig};
use wolfram_serve::{CacheStatus, CompilerOptions, ServeConfig, ServePool, ServeRequest};

#[test]
fn data_parallel_requests_balance_and_cache_separately() {
    memory::reset_global_stats();
    let pool = ServePool::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // A vectorizable loop over a managed tensor: the tier plants a
    // vec.loop plan, so batched acquire/release accounting and the
    // chunked threaded path both run inside a serve worker.
    let src = "Function[{Typed[v, \"Tensor\"[\"Real64\", 1]], Typed[n, \"MachineInteger\"]}, \
               Module[{out, i}, out = ConstantArray[0., {n}]; i = 1; \
               While[i <= n, out[[i]] = 2.0*v[[i]] + 1.0; i = i + 1]; out]]";
    let n = 64usize;
    let vec_arg = format!(
        "{{{}}}",
        (0..n)
            .map(|k| format!("{:.1}", k as f64))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let args = [vec_arg, n.to_string()];
    let parallel_options = CompilerOptions {
        data_parallel: true,
        parallel: ParallelConfig {
            num_threads: 2,
            min_elems_per_chunk: 16,
            simd: true,
        },
        ..CompilerOptions::default()
    };

    let scalar_first = pool.call(ServeRequest::new(src, args.clone()));
    let scalar_again = pool.call(ServeRequest::new(src, args.clone()));
    let par_first =
        pool.call(ServeRequest::new(src, args.clone()).with_options(parallel_options.clone()));
    let par_again =
        pool.call(ServeRequest::new(src, args.clone()).with_options(parallel_options.clone()));

    // Same answer from both tiers, bit for bit in the rendering.
    let expected = scalar_first.result.as_deref().expect("scalar runs");
    assert_eq!(par_first.result.as_deref(), Ok(expected));
    assert_eq!(par_again.result.as_deref(), Ok(expected));

    // Distinct artifacts: the parallel request missed even though the
    // scalar artifact for the identical source was already resident.
    assert_eq!(scalar_first.cache, CacheStatus::Miss);
    assert_eq!(scalar_again.cache, CacheStatus::Hit);
    assert_eq!(par_first.cache, CacheStatus::Miss);
    assert_eq!(par_again.cache, CacheStatus::Hit);

    // Shut down so every worker has flushed its thread-local counters,
    // then require global balance across serve workers AND the runtime
    // pool workers the parallel artifact dispatched to.
    pool.shutdown();
    let stats = memory::global_stats();
    assert!(stats.acquires > 0, "managed runs must record acquires");
    assert!(
        stats.balanced(),
        "acquire/release imbalance with data_parallel: {stats:?}"
    );
}
