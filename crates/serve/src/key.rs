//! Content-addressed cache keys.
//!
//! An artifact is identified by *what was compiled*, not *who asked*: the
//! key is a 128-bit FNV-1a hash of the canonicalized MExpr (the parsed
//! program rendered back to `FullForm`, which erases whitespace, operator
//! sugar, and comment differences) combined with the
//! [`CompilerOptions::fingerprint`] — the same source compiled under
//! different options is a different artifact and must not collide.
//!
//! Routing happens *before* the worker parses the program, so the pool
//! routes on a cheaper pre-key over the raw source bytes. Two textual
//! spellings of the same program may therefore land on different shards
//! and compile once each; within a shard the canonical key still unifies
//! them. This trades a bounded amount of duplicate compilation for
//! lock-free, shared-nothing shard caches (see the crate docs).

use wolfram_compiler_core::CompilerOptions;
use wolfram_expr::Expr;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, seeded so two independent lanes decorrelate.
/// (Also the disk-cache checksum; see [`crate::disk`].)
pub(crate) fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A content-addressed artifact identity: 128 bits of program hash plus
/// the options fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Two independent FNV-1a lanes over the canonical `FullForm` bytes.
    pub program: [u64; 2],
    /// [`CompilerOptions::fingerprint`] of the requested options.
    pub options: u64,
}

impl CacheKey {
    /// The key for a parsed program under `options`: hash of the
    /// canonical `FullForm` rendering plus the options fingerprint.
    pub fn of(program: &Expr, options: &CompilerOptions) -> CacheKey {
        let canonical = program.to_full_form();
        let bytes = canonical.as_bytes();
        CacheKey {
            program: [fnv1a(0, bytes), fnv1a(0x9e37_79b9_7f4a_7c15, bytes)],
            options: options.fingerprint(),
        }
    }

    /// Short hex rendering for logs and stats tables.
    pub fn short(&self) -> String {
        format!("{:08x}", (self.program[0] ^ self.options) as u32)
    }
}

/// The pre-parse routing hash: raw source bytes plus the options
/// fingerprint. Equal sources always route to the same shard, which is
/// what single-flight deduplication relies on.
pub fn route_hash(source: &str, options: &CompilerOptions) -> u64 {
    fnv1a(options.fingerprint(), source.as_bytes())
}

/// The shard index for a request, given `workers` shards.
pub fn shard_for(source: &str, options: &CompilerOptions, workers: usize) -> usize {
    debug_assert!(workers > 0);
    // Multiply-shift spreads the low-entropy FNV tail across shards.
    let spread = route_hash(source, options).wrapping_mul(0x2545_f491_4f6c_dd1d);
    (spread >> 33) as usize % workers
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    #[test]
    fn canonicalization_unifies_spellings() {
        let options = CompilerOptions::default();
        let a = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        let b = parse("Function[ {Typed[n,\"MachineInteger\"]},  Plus[n, 1] ]").unwrap();
        assert_eq!(CacheKey::of(&a, &options), CacheKey::of(&b, &options));
    }

    #[test]
    fn different_programs_differ() {
        let options = CompilerOptions::default();
        let a = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        let b = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 2]").unwrap();
        assert_ne!(CacheKey::of(&a, &options), CacheKey::of(&b, &options));
    }

    #[test]
    fn options_fingerprint_separates_keys() {
        let a = CompilerOptions::default();
        let b = CompilerOptions {
            optimization_level: 0,
            ..CompilerOptions::default()
        };
        let f = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        assert_ne!(CacheKey::of(&f, &a), CacheKey::of(&f, &b));
        assert_ne!(route_hash("x", &a), route_hash("x", &b));
    }

    #[test]
    fn data_parallel_fingerprint_separates_keys() {
        // A data-parallel artifact must never be served from the scalar
        // cache entry (and vice versa): the plan layout and NativeProgram
        // differ. Tuning knobs split keys only while the tier is on.
        let scalar = CompilerOptions::default();
        let parallel = CompilerOptions {
            data_parallel: true,
            ..CompilerOptions::default()
        };
        let tuned = CompilerOptions {
            data_parallel: true,
            parallel: wolfram_runtime::ParallelConfig {
                num_threads: 2,
                ..wolfram_runtime::ParallelConfig::default()
            },
            ..CompilerOptions::default()
        };
        let f = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        assert_ne!(CacheKey::of(&f, &scalar), CacheKey::of(&f, &parallel));
        assert_ne!(CacheKey::of(&f, &parallel), CacheKey::of(&f, &tuned));
        assert_ne!(route_hash("x", &scalar), route_hash("x", &parallel));

        // With the tier off, tuning must NOT perturb the key: a tuned-
        // but-disabled config is the same artifact as the default.
        let tuned_off = CompilerOptions {
            parallel: wolfram_runtime::ParallelConfig {
                num_threads: 7,
                ..wolfram_runtime::ParallelConfig::default()
            },
            ..CompilerOptions::default()
        };
        assert_eq!(CacheKey::of(&f, &scalar), CacheKey::of(&f, &tuned_off));
    }

    #[test]
    fn range_elision_fingerprint_separates_keys() {
        // An artifact compiled with range-check elision (the default) and
        // the fully checked ablation baseline differ instruction for
        // instruction (unchecked RegOp variants), so they must occupy
        // distinct cache entries and route independently.
        let on = CompilerOptions::default();
        assert!(on.range_checks_elision, "elision is the compiler default");
        let off = CompilerOptions {
            range_checks_elision: false,
            ..CompilerOptions::default()
        };
        let f = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        assert_ne!(CacheKey::of(&f, &on), CacheKey::of(&f, &off));
        assert_ne!(route_hash("x", &on), route_hash("x", &off));
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let options = CompilerOptions::default();
        for workers in [1usize, 2, 4, 8] {
            for src in ["a", "b", "Function[{Typed[n, \"MachineInteger\"]}, n]"] {
                let s = shard_for(src, &options, workers);
                assert!(s < workers);
                assert_eq!(s, shard_for(src, &options, workers));
            }
        }
    }
}
