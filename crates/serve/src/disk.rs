//! The disk-backed second cache level: content-addressed bytecode images
//! that let a restarted server start warm.
//!
//! Layout: one file per artifact, named by the full [`CacheKey`] (two
//! program-hash lanes + options fingerprint rendered as hex), so the
//! store is content-addressed — a cache directory can be shared between
//! processes, copied, or deleted wholesale, and a key collision is as
//! unlikely as a 128-bit hash collision.
//!
//! Durability and corruption rules (the vector `disk_v2` buffer and every
//! serious on-disk cache follow the same three):
//!
//! 1. **Atomic visibility**: entries are written to a same-directory temp
//!    file and `rename`d into place, so a reader never observes a partial
//!    write and a crash mid-store leaves at most a stray temp file.
//! 2. **Checksummed**: the payload carries an FNV-1a checksum in a fixed
//!    header; a flipped bit fails the checksum before the (already
//!    corruption-tolerant, versioned) image parser even runs.
//! 3. **Corruption = miss**: any unreadable, truncated, mismatched, or
//!    stale-versioned entry is reported as [`DiskOutcome::Corrupt`] and
//!    treated as a cache miss — the server recompiles and overwrites.
//!    Disk problems can cost a compile; they can never cost an answer.
//!
//! Only bytecode-tier artifacts are stored: a native `NativeProgram` is a
//! pointer-rich in-memory structure with no serial form, while the
//! bytecode `CompiledFunction` is "a serialized compiled object" by
//! design (§2.2) — see [`wolfram_bytecode::image`].

use crate::key::{fnv1a, CacheKey};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use wolfram_bytecode::CompiledFunction;

/// Header magic for a disk entry (distinct from the inner image magic so
/// a mixed-up file is diagnosed as "not a cache entry", not "corrupt
/// image").
const ENTRY_MAGIC: [u8; 4] = *b"WSDC";

/// What a disk lookup resolved to.
#[derive(Debug)]
pub enum DiskOutcome {
    /// A checksum-clean, version-current image.
    Hit(CompiledFunction),
    /// No entry for this key.
    Miss,
    /// An entry exists but is unreadable, truncated, checksum-mismatched,
    /// or version-stale; the caller should recompile (and overwrite).
    Corrupt,
}

/// A content-addressed directory of compiled bytecode images.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    /// Distinguishes temp files across threads of one process.
    temp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures; an unusable directory is a
    /// configuration error, not a cache miss.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a key (exposed so tests can corrupt it).
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!(
            "{:016x}{:016x}-{:016x}.wlbc",
            key.program[0], key.program[1], key.options
        ))
    }

    /// Loads the entry for `key`, checksum-verified.
    pub fn load(&self, key: &CacheKey) -> DiskOutcome {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskOutcome::Miss,
            Err(_) => return DiskOutcome::Corrupt,
        };
        // Header: magic(4) | checksum(8, LE) | payload.
        if bytes.len() < 12 || bytes[..4] != ENTRY_MAGIC {
            return DiskOutcome::Corrupt;
        }
        let stored = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let payload = &bytes[12..];
        if fnv1a(0, payload) != stored {
            return DiskOutcome::Corrupt;
        }
        match wolfram_bytecode::from_image(payload) {
            Ok(cf) => DiskOutcome::Hit(cf),
            Err(_) => DiskOutcome::Corrupt,
        }
    }

    /// Stores a bytecode artifact under `key` with write-then-rename
    /// atomicity.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures; callers treat a failed
    /// store as "the cache stays cold for this key", never as a request
    /// failure.
    pub fn store(&self, key: &CacheKey, cf: &CompiledFunction) -> std::io::Result<()> {
        let payload = wolfram_bytecode::to_image(cf)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut bytes = Vec::with_capacity(12 + payload.len());
        bytes.extend_from_slice(&ENTRY_MAGIC);
        bytes.extend_from_slice(&fnv1a(0, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        // Same-directory temp so the rename cannot cross filesystems.
        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".tmp-{:08x}-{seq}-{}",
            std::process::id(),
            key.short()
        ));
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, self.entry_path(key))
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Number of (apparently valid, by name) entries in the directory.
    pub fn entry_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".wlbc")))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
    use wolfram_expr::parse;
    use wolfram_runtime::Value;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wolfram-serve-disk-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn compile(src: &str) -> CompiledFunction {
        BytecodeCompiler::new()
            .compile(&[ArgSpec::int("n")], &parse(src).unwrap())
            .unwrap()
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            program: [n, n ^ 0x1234],
            options: 99,
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = tempdir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        let cf = compile("n * n + 1");
        cache.store(&key(1), &cf).unwrap();
        assert_eq!(cache.entry_count(), 1);
        match cache.load(&key(1)) {
            DiskOutcome::Hit(back) => {
                assert_eq!(back.run(&[Value::I64(6)]).unwrap(), Value::I64(37));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(cache.load(&key(2)), DiskOutcome::Miss));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_bitflip_are_corrupt_not_fatal() {
        let dir = tempdir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        let cf = compile("n + 1");
        cache.store(&key(1), &cf).unwrap();
        let path = cache.entry_path(&key(1));
        let full = std::fs::read(&path).unwrap();

        // Truncate to every shorter length: always Corrupt, never panic.
        for n in [0, 3, 11, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..n]).unwrap();
            assert!(
                matches!(cache.load(&key(1)), DiskOutcome::Corrupt),
                "truncation to {n} bytes must be corrupt"
            );
        }

        // A single flipped payload bit fails the checksum.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(cache.load(&key(1)), DiskOutcome::Corrupt));

        // Restoring the original bytes restores the hit.
        std::fs::write(&path, &full).unwrap();
        assert!(matches!(cache.load(&key(1)), DiskOutcome::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_overwrite_is_atomic_per_key() {
        let dir = tempdir("overwrite");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(&key(1), &compile("n + 1")).unwrap();
        cache.store(&key(1), &compile("n + 2")).unwrap();
        assert_eq!(cache.entry_count(), 1, "overwrite keeps one entry");
        match cache.load(&key(1)) {
            DiskOutcome::Hit(cf) => {
                assert_eq!(cf.run(&[Value::I64(1)]).unwrap(), Value::I64(3));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        // No temp litter after successful stores.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "stray temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_stale_entries_miss_cleanly() {
        let dir = tempdir("version");
        let cache = DiskCache::open(&dir).unwrap();
        let cf = compile("n");
        cache.store(&key(1), &cf).unwrap();
        // Rewrite the entry with a bumped inner image version and a
        // *correct* outer checksum: the image parser must reject it.
        let path = cache.entry_path(&key(1));
        let bytes = std::fs::read(&path).unwrap();
        let mut payload = bytes[12..].to_vec();
        payload[4] = payload[4].wrapping_add(1); // image version field
        let mut rewritten = Vec::new();
        rewritten.extend_from_slice(&ENTRY_MAGIC);
        rewritten.extend_from_slice(&fnv1a(0, &payload).to_le_bytes());
        rewritten.extend_from_slice(&payload);
        std::fs::write(&path, rewritten).unwrap();
        assert!(matches!(cache.load(&key(1)), DiskOutcome::Corrupt));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
