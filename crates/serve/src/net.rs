//! The TCP wire protocol: length-prefixed frames over a per-client
//! connection, with bounded pipelining as the fairness layer.
//!
//! # Framing
//!
//! Every message — request or reply — is one frame: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 text. Frames
//! larger than [`NetConfig::max_frame`] are a protocol error that closes
//! the connection (a length prefix must never drive an unbounded
//! allocation). Text payloads keep the protocol debuggable with `nc` and
//! independent of any serialization library.
//!
//! # Requests
//!
//! A request frame carries one line in the stdin-mode syntax,
//! `{Function[...], {arg, ...}}` (see [`parse_request_line`]), or a
//! control request starting with `!`:
//!
//! - `!stats` — replies with one `name value` line per
//!   [`crate::metrics::ServeMetrics::snapshot`] counter. The CI
//!   warm-restart gate asserts on `compiles` and `disk_hits` through
//!   this.
//!
//! # Replies
//!
//! Replies come back *in request order*, one frame per request:
//!
//! ```text
//! ok <tier> <hit|disk|miss|-> <compile_ns> <execute_ns> <fell_back> <result...>
//! err <message...>
//! ```
//!
//! # Admission and fairness
//!
//! Two layers bound a client:
//!
//! 1. **Pool shedding** (existing): a full shard queue rejects with
//!    `Overloaded`, reported as an `err` reply.
//! 2. **Per-client pipelining cap** (this module): a connection may have
//!    at most [`NetConfig::max_pipeline`] requests in flight. At the
//!    cap, the server stops *reading* that connection until a reply
//!    drains — per-client backpressure through TCP flow control, so one
//!    greedy client can occupy at most `max_pipeline` queue slots and
//!    can never starve other connections by itself.
//!
//! # Failure modes
//!
//! Malformed frame length / oversized frame / non-UTF-8 payload: the
//! connection is dropped (the stream can no longer be trusted). A
//! malformed *request line* inside a valid frame is an `err` reply; the
//! connection stays usable. Server shutdown mid-flight: in-flight
//! requests finish and their replies are written before the process
//! prints its final stats table.

use crate::pool::{CacheStatus, PendingReply, ServePool, ServeReply, ServeRequest};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wire-protocol knobs.
#[derive(Clone)]
pub struct NetConfig {
    /// Per-connection in-flight request cap (the fairness bound).
    pub max_pipeline: usize,
    /// Largest accepted frame payload, in bytes.
    pub max_frame: usize,
    /// Handler for `!stream` sessions; `None` rejects them. Implemented
    /// by `wolfram-stream` and injected by the CLI, so the wire layer
    /// stays free of a dependency on the streaming engine.
    pub stream: Option<Arc<dyn StreamHandler>>,
}

impl std::fmt::Debug for NetConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetConfig")
            .field("max_pipeline", &self.max_pipeline)
            .field("max_frame", &self.max_frame)
            .field("stream", &self.stream.is_some())
            .finish()
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_pipeline: 32,
            max_frame: 1 << 20,
            stream: None,
        }
    }
}

/// Server-side entry point for `!stream` sessions: compiles the streamed
/// function once and hands back a per-connection session.
pub trait StreamHandler: Send + Sync {
    /// Starts a session for `spec` (the text after `!stream`, normally a
    /// `Function[...]` in input form). An `Err` is reported to the client
    /// as an `err` reply and the connection stays in request mode.
    ///
    /// # Errors
    ///
    /// A human-readable reason the stream could not start (parse or
    /// compile failure, unsupported signature).
    fn begin(&self, spec: &str) -> Result<Box<dyn StreamSession>, String>;
}

/// One active `!stream` session on one connection. While a session is
/// open, every frame on the connection is a record (replied to with one
/// frame, in order) until the `!end` sentinel, which yields the final
/// metrics table and returns the connection to request mode.
///
/// Sessions are created and used on a single connection thread, so they
/// may hold thread-confined execution state (a register machine, its
/// reusable frame) — deliberately no `Send` bound.
pub trait StreamSession {
    /// Processes one record line, returning its wire reply line
    /// (`ok <result...>` or `err <message...>`).
    fn record(&mut self, line: &str) -> String;
    /// Ends the session and renders its metrics summary.
    fn finish(&mut self) -> String;
}

/// Parses one request line: `{Function[...], {arg, ...}}`. Shared by the
/// stdin and socket modes of `reproduce serve`.
///
/// # Errors
///
/// A human-readable description of what is malformed.
pub fn parse_request_line(text: &str) -> Result<ServeRequest, String> {
    let expr = wolfram_expr::parse(text).map_err(|e| e.to_string())?;
    if !expr.has_head("List") || expr.args().len() != 2 {
        return Err("expected {Function[...], {args...}}".into());
    }
    let func = &expr.args()[0];
    let arg_list = &expr.args()[1];
    if !func.has_head("Function") {
        return Err("first element must be a Function".into());
    }
    if !arg_list.has_head("List") {
        return Err("second element must be the argument list".into());
    }
    let args: Vec<String> = arg_list.args().iter().map(|a| a.to_input_form()).collect();
    Ok(ServeRequest::new(func.to_input_form(), args))
}

/// Renders a reply as its wire line (without framing).
pub fn render_reply(reply: &ServeReply) -> String {
    match &reply.result {
        Ok(v) => format!(
            "ok {} {} {} {} {} {v}",
            reply.tier.map_or_else(|| "?".into(), |t| t.to_string()),
            cache_token(reply.cache),
            reply.compile_ns,
            reply.execute_ns,
            u8::from(reply.fell_back),
        ),
        Err(e) => format!("err {e}"),
    }
}

fn cache_token(c: CacheStatus) -> &'static str {
    match c {
        CacheStatus::Hit => "hit",
        CacheStatus::DiskHit => "disk",
        CacheStatus::Miss => "miss",
        CacheStatus::Unreached => "-",
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` is a clean EOF at a frame boundary.
///
/// # Errors
///
/// Truncated frames, oversized lengths, and I/O failures.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {max_frame}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Runs the accept loop until `shutdown` goes true. One thread per
/// connection; connection threads are detached (the process prints final
/// stats and exits on shutdown, which is the CI lifecycle).
///
/// # Errors
///
/// Propagates listener configuration failures; per-connection errors
/// only close that connection.
pub fn serve_listener(
    listener: TcpListener,
    pool: &Arc<ServePool>,
    shutdown: &AtomicBool,
    config: &NetConfig,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let pool = Arc::clone(pool);
                let cfg = config.clone();
                std::thread::Builder::new()
                    .name("wolfram-serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &pool, &cfg);
                    })?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One queued reply slot: either a pool ticket to wait on, a reply that
/// is already known, or a stats request resolved at *write* time (so the
/// snapshot observes every earlier request on this connection as
/// complete).
enum ReplySlot {
    Pending(PendingReply),
    Immediate(String),
    Stats,
}

fn handle_connection(
    stream: TcpStream,
    pool: &Arc<ServePool>,
    config: &NetConfig,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Reader and writer halves: the reader (this thread) parses frames
    // and submits to the pool; the writer thread waits on replies and
    // writes them back *in request order* (the channel is the FIFO). The
    // channel bound IS the per-client pipelining cap: at `max_pipeline`
    // unwritten replies, `send` blocks the reader, which stops draining
    // the socket — backpressure via TCP flow control.
    let (tx, rx) = std::sync::mpsc::sync_channel::<ReplySlot>(config.max_pipeline.max(1));
    let writer_pool = Arc::clone(pool);
    let writer_handle = std::thread::Builder::new()
        .name("wolfram-serve-conn-writer".into())
        .spawn(move || -> std::io::Result<()> {
            while let Ok(slot) = rx.recv() {
                let line = match slot {
                    ReplySlot::Pending(pending) => render_reply(&pending.wait()),
                    ReplySlot::Immediate(line) => line,
                    ReplySlot::Stats => {
                        let mut out = String::new();
                        for (name, value) in writer_pool.metrics().snapshot() {
                            out.push_str(name);
                            out.push(' ');
                            out.push_str(&value.to_string());
                            out.push('\n');
                        }
                        out
                    }
                };
                write_frame(&mut writer, line.as_bytes())?;
            }
            Ok(())
        })?;

    let read_result: std::io::Result<()> = (|| {
        // Runs until client EOF or a protocol error; on server shutdown
        // the process exits, which closes in-flight connections (the CI
        // lifecycle stops clients before the server).
        //
        // While a `!stream` session is open, every frame is a record
        // handled synchronously on this thread (the function was compiled
        // once at `!stream` time; records bypass the pool). Replies still
        // flow through the writer channel, so the pipelining cap bounds
        // un-drained stream replies exactly as it bounds pool requests.
        let mut session: Option<Box<dyn StreamSession>> = None;
        loop {
            let Some(payload) = read_frame(&mut reader, config.max_frame)? else {
                return Ok(()); // clean EOF
            };
            let Ok(text) = String::from_utf8(payload) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "non-UTF-8 request frame",
                ));
            };
            let text = text.trim();
            let slot = if let Some(sess) = session.as_deref_mut() {
                if text == "!end" {
                    let summary = sess.finish();
                    session = None;
                    ReplySlot::Immediate(summary)
                } else {
                    ReplySlot::Immediate(sess.record(text))
                }
            } else if text == "!stats" {
                ReplySlot::Stats
            } else if let Some(spec) = text.strip_prefix("!stream") {
                match &config.stream {
                    None => {
                        ReplySlot::Immediate("err streaming is not enabled on this server".into())
                    }
                    Some(handler) => match handler.begin(spec.trim()) {
                        Ok(sess) => {
                            session = Some(sess);
                            ReplySlot::Immediate("ok stream".into())
                        }
                        Err(e) => ReplySlot::Immediate(format!("err {e}")),
                    },
                }
            } else {
                match parse_request_line(text) {
                    Err(e) => ReplySlot::Immediate(format!("err request error: {e}")),
                    Ok(req) => match pool.submit(req) {
                        Ok(pending) => ReplySlot::Pending(pending),
                        Err(e) => ReplySlot::Immediate(format!("err {e}")),
                    },
                }
            };
            if tx.send(slot).is_err() {
                // Writer hit an I/O error and exited; the connection is
                // dead either way.
                return Ok(());
            }
        }
    })();

    // EOF (or error): close the channel so the writer drains the
    // remaining in-order replies and exits.
    drop(tx);
    let write_result = writer_handle
        .join()
        .unwrap_or_else(|_| Err(std::io::Error::other("connection writer panicked")));
    read_result.and(write_result)
}

/// A reply as parsed off the wire by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetReply {
    /// The rendered result, or the error message.
    pub result: Result<String, String>,
    /// Tier token (`bytecode`/`native`/`?`); empty on errors.
    pub tier: String,
    /// Cache token: `hit`, `disk`, `miss`, or `-`; empty on errors.
    pub cache: String,
    /// Nanoseconds the server spent compiling (saved cost on hits).
    pub compile_ns: u64,
    /// Nanoseconds the server spent executing.
    pub execute_ns: u64,
}

impl NetReply {
    fn parse(line: &str) -> Result<NetReply, String> {
        if let Some(msg) = line.strip_prefix("err ") {
            return Ok(NetReply {
                result: Err(msg.to_owned()),
                tier: String::new(),
                cache: String::new(),
                compile_ns: 0,
                execute_ns: 0,
            });
        }
        let rest = line
            .strip_prefix("ok ")
            .ok_or_else(|| format!("malformed reply {line:?}"))?;
        let mut parts = rest.splitn(6, ' ');
        let mut field = || parts.next().ok_or_else(|| format!("short reply {line:?}"));
        let tier = field()?.to_owned();
        let cache = field()?.to_owned();
        let compile_ns = field()?.parse::<u64>().map_err(|e| e.to_string())?;
        let execute_ns = field()?.parse::<u64>().map_err(|e| e.to_string())?;
        let _fell_back = field()?;
        let result = field()?.to_owned();
        Ok(NetReply {
            result: Ok(result),
            tier,
            cache,
            compile_ns,
            execute_ns,
        })
    }
}

/// A blocking wire-protocol client (the load generator and CI gate).
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame: usize,
}

impl NetClient {
    /// Connects to a serving address.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            max_frame: NetConfig::default().max_frame,
        })
    }

    /// Sends one request line and waits for its reply frame.
    ///
    /// # Errors
    ///
    /// I/O failures, server disconnect, or a malformed reply.
    pub fn call(&mut self, line: &str) -> std::io::Result<NetReply> {
        write_frame(&mut self.writer, line.as_bytes())?;
        self.read_reply()
    }

    /// Sends a request without waiting (pipelining); pair with
    /// [`NetClient::read_reply`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        write_frame(&mut self.writer, line.as_bytes())
    }

    /// Reads the next in-order reply frame.
    ///
    /// # Errors
    ///
    /// I/O failures, server disconnect, or a malformed reply.
    pub fn read_reply(&mut self) -> std::io::Result<NetReply> {
        let payload = read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        let text = String::from_utf8(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        NetReply::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends one raw line and returns the raw reply text (the `!stream`
    /// sub-protocol: `!stream Function[...]`, record lines, `!end`).
    ///
    /// # Errors
    ///
    /// I/O failures or server disconnect.
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<String> {
        write_frame(&mut self.writer, line.as_bytes())?;
        let payload = read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        String::from_utf8(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Fetches the server's metrics snapshot (`!stats`).
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed stats frame.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, u64)>> {
        write_frame(&mut self.writer, b"!stats")?;
        let payload = read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        let text = String::from_utf8(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut out = Vec::new();
        for line in text.lines() {
            let (name, value) = line.split_once(' ').ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad stats line {line:?}"),
                )
            })?;
            let value = value
                .parse::<u64>()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.push((name.to_owned(), value));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{ServeConfig, TierPolicy};

    fn start_server(config: ServeConfig) -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let pool = Arc::new(ServePool::start(config));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            serve_listener(listener, &pool, &flag, &NetConfig::default()).unwrap();
        });
        (addr, shutdown, handle)
    }

    #[test]
    fn call_roundtrip_and_cache_tokens() {
        let (addr, shutdown, handle) = start_server(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let mut client = NetClient::connect(&addr).unwrap();
        let line = "{Function[{Typed[n, \"MachineInteger\"]}, n + 1], {41}}";
        let first = client.call(line).unwrap();
        assert_eq!(first.result.as_deref(), Ok("42"));
        assert_eq!(first.cache, "miss");
        let second = client.call(line).unwrap();
        assert_eq!(second.result.as_deref(), Ok("42"));
        assert_eq!(second.cache, "hit");
        assert_eq!(second.tier, "native");

        let stats = client.stats().unwrap();
        let get = |k: &str| stats.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("ok"), 2);
        assert_eq!(get("compiles"), 1);
        assert_eq!(get("cache_hits"), 1);

        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn pipelined_requests_reply_in_order() {
        let (addr, shutdown, handle) = start_server(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let mut client = NetClient::connect(&addr).unwrap();
        for i in 0..10 {
            client
                .send(&format!(
                    "{{Function[{{Typed[n, \"MachineInteger\"]}}, n * n], {{{i}}}}}"
                ))
                .unwrap();
        }
        for i in 0..10 {
            let reply = client.read_reply().unwrap();
            assert_eq!(reply.result.as_deref(), Ok(format!("{}", i * i).as_str()));
        }
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn malformed_requests_err_but_keep_the_connection() {
        let (addr, shutdown, handle) = start_server(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let mut client = NetClient::connect(&addr).unwrap();
        let bad = client.call("this is not a request").unwrap();
        assert!(bad.result.is_err(), "{bad:?}");
        // The connection survives a bad line.
        let good = client
            .call("{Function[{Typed[n, \"MachineInteger\"]}, n - 1], {10}}")
            .unwrap();
        assert_eq!(good.result.as_deref(), Ok("9"));
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn oversized_frame_drops_the_connection() {
        let (addr, shutdown, handle) = start_server(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        // A length prefix far beyond max_frame: the server must hang up
        // rather than allocate.
        stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        stream.flush().unwrap();
        let mut buf = [0u8; 1];
        // Read returns 0 (server closed) rather than blocking forever.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(stream.read(&mut buf).unwrap(), 0);
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn frame_roundtrip_and_caps() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 9);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 16).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut r, 16).unwrap().is_none(), "clean EOF");

        let mut r = &buf[..];
        assert!(read_frame(&mut r, 3).is_err(), "cap enforced");

        // Truncated payload is an error, not a hang or a short read.
        let mut r = &buf[..7];
        assert!(read_frame(&mut r, 16).is_err());
    }

    #[test]
    fn bytecode_tier_over_the_wire() {
        let (addr, shutdown, handle) = start_server(ServeConfig {
            workers: 2,
            tier_policy: TierPolicy::BytecodeOnly,
            ..ServeConfig::default()
        });
        let mut client = NetClient::connect(&addr).unwrap();
        let reply = client
            .call("{Function[{Typed[n, \"MachineInteger\"]}, n * 3], {14}}")
            .unwrap();
        assert_eq!(reply.result.as_deref(), Ok("42"));
        assert_eq!(reply.tier, "bytecode");
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }
}
