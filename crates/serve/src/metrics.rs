//! Service observability: request counters, cache counters, queue depth,
//! and log-scale latency histograms with the compile/execute split.
//!
//! Everything is lock-free atomics so workers record on the hot path
//! without coordination; rendering reads a consistent-enough snapshot
//! (monotonic counters may be mid-update, which is fine for stats).

use std::sync::atomic::{AtomicU64, Ordering};

/// A log₂-bucketed latency histogram over nanoseconds.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` ns, so the full range
/// covers 1 ns to ~584 years in 64 buckets with ≤ 2× quantile error —
/// plenty for p50/p99 on a serving path measured in µs-to-ms.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        let ix = 63 - u64::leading_zeros(ns.max(1)) as usize;
        self.buckets[ix].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper bound of the
    /// bucket containing it (0 when empty).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (ix, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (ix + 1).min(63);
            }
        }
        1u64 << 63
    }
}

/// Formats nanoseconds human-readably for the stats table.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Pool-wide counters and histograms. One instance is shared (via `Arc`)
/// by every worker, the admission path, and the stats renderer.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted into a shard queue.
    pub admitted: AtomicU64,
    /// Requests rejected at admission with `Overloaded`.
    pub rejected: AtomicU64,
    /// Requests completing with a value.
    pub ok: AtomicU64,
    /// Requests failing to compile.
    pub compile_errors: AtomicU64,
    /// Requests failing at runtime (other than aborts).
    pub runtime_errors: AtomicU64,
    /// Requests stopped by their deadline (`Aborted`).
    pub aborted: AtomicU64,
    /// Soft numeric failures that re-ran under the interpreter (§3 F2).
    pub fallbacks: AtomicU64,
    /// Compiles performed (cache misses that reached the compiler).
    pub compiles: AtomicU64,
    /// Bytecode→native tier promotions performed.
    pub promotions: AtomicU64,
    /// Cache hits across all shards.
    pub cache_hits: AtomicU64,
    /// Cache misses across all shards.
    pub cache_misses: AtomicU64,
    /// LRU evictions across all shards.
    pub cache_evictions: AtomicU64,
    /// In-memory misses served from the disk cache (no compile ran).
    pub disk_hits: AtomicU64,
    /// Artifacts written to the disk cache.
    pub disk_stores: AtomicU64,
    /// Disk entries rejected as corrupt/stale (each cost one recompile).
    pub disk_corrupt: AtomicU64,
    /// Current total queued requests across all shards.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_depth_max: AtomicU64,
    /// Time spent compiling (cache misses only).
    pub compile_latency: Histogram,
    /// Time spent executing (every served request).
    pub execute_latency: Histogram,
    /// End-to-end request latency as the client saw it (queue + compile +
    /// execute), recorded by the pool on completion.
    pub request_latency: Histogram,
}

impl ServeMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let h = self.cache_hits.load(Ordering::Relaxed) as f64;
        let m = self.cache_misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Every counter as stable `name` → value pairs: the machine-readable
    /// face of [`ServeMetrics::render`], served over the wire as the
    /// `!stats` request and asserted on by the CI warm-restart gate.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("admitted", g(&self.admitted)),
            ("rejected", g(&self.rejected)),
            ("ok", g(&self.ok)),
            ("compile_errors", g(&self.compile_errors)),
            ("runtime_errors", g(&self.runtime_errors)),
            ("aborted", g(&self.aborted)),
            ("fallbacks", g(&self.fallbacks)),
            ("compiles", g(&self.compiles)),
            ("promotions", g(&self.promotions)),
            ("cache_hits", g(&self.cache_hits)),
            ("cache_misses", g(&self.cache_misses)),
            ("cache_evictions", g(&self.cache_evictions)),
            ("disk_hits", g(&self.disk_hits)),
            ("disk_stores", g(&self.disk_stores)),
            ("disk_corrupt", g(&self.disk_corrupt)),
            ("request_p50_ns", self.request_latency.quantile_ns(0.50)),
            ("request_p99_ns", self.request_latency.quantile_ns(0.99)),
        ]
    }

    /// Renders the stats table the CLI prints.
    pub fn render(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        out.push_str("serve stats\n");
        out.push_str(&format!(
            "  requests   admitted {:>8}  rejected {:>6}  ok {:>8}  compile-err {:>4}  runtime-err {:>4}  aborted {:>5}  fallback {:>4}\n",
            g(&self.admitted),
            g(&self.rejected),
            g(&self.ok),
            g(&self.compile_errors),
            g(&self.runtime_errors),
            g(&self.aborted),
            g(&self.fallbacks),
        ));
        out.push_str(&format!(
            "  cache      hits {:>12}  misses {:>8}  evictions {:>6}  hit-rate {:>6.1}%  compiles {:>6}  promotions {:>4}\n",
            g(&self.cache_hits),
            g(&self.cache_misses),
            g(&self.cache_evictions),
            self.hit_rate() * 100.0,
            g(&self.compiles),
            g(&self.promotions),
        ));
        out.push_str(&format!(
            "  disk       hits {:>12}  stores {:>8}  corrupt {:>8}\n",
            g(&self.disk_hits),
            g(&self.disk_stores),
            g(&self.disk_corrupt),
        ));
        out.push_str(&format!(
            "  queue      depth {:>11}  max {:>11}\n",
            g(&self.queue_depth),
            g(&self.queue_depth_max),
        ));
        for (name, h) in [
            ("compile", &self.compile_latency),
            ("execute", &self.execute_latency),
            ("request", &self.request_latency),
        ] {
            out.push_str(&format!(
                "  {name}    n {:>12}  mean {:>9}  p50 {:>9}  p99 {:>9}\n",
                h.count(),
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.50)),
                fmt_ns(h.quantile_ns(0.99)),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1_000); // ~1µs
        }
        h.record(1_000_000); // one 1ms outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        assert!((1_000..=2_048).contains(&p50), "{p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 <= 2_048, "p99 {p99} should still be in the 1µs bucket");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 1_000_000, "{p100}");
        assert!(h.mean_ns() >= 1_000 && h.mean_ns() < 100_000);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn render_mentions_every_section() {
        let m = ServeMetrics::new();
        m.admitted.fetch_add(1, Ordering::Relaxed);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        let table = m.render();
        for needle in [
            "requests", "cache", "queue", "compile", "execute", "hit-rate",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
        assert!((m.hit_rate() - 0.75).abs() < 1e-9);
    }
}
