//! The content-addressed artifact cache.
//!
//! Two layers live here:
//!
//! - [`ArtifactCache`]: a strict least-recently-used map from
//!   [`CacheKey`] to a compiled artifact tagged with its tier (bytecode
//!   vs native). Lock-free and single-owner; the building block.
//! - [`SharedArtifactCache`]: the process-wide store every pool worker
//!   shares. Now that artifacts are `Send + Sync`
//!   ([`wolfram_compiler_core::CompiledArtifact`]), one compilation
//!   serves every thread: the store is a vector of `Mutex`-guarded
//!   [`ArtifactCache`] shards (keyed by canonical-key hash, independent
//!   of request routing), each with a [`Condvar`] that implements
//!   cross-worker **single-flight**: the first claimant of an absent key
//!   gets a [`ComputeTicket`] and compiles; every other claimant blocks
//!   on the condvar and wakes to a hit. N concurrent requests for one
//!   uncached program — even different textual spellings landing on
//!   different pool workers — trigger exactly one compile.
//!
//! Request *routing* (which worker runs a request) still hashes raw
//! source bytes (see [`crate::key`]); artifact *storage* hashes the
//! canonical key, so spellings that parse to one program share one entry.

use crate::key::CacheKey;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Which engine an artifact targets (the Titzer-style tier tag: bytecode
/// compiles fast and runs slow; native compiles slow and runs fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The legacy bytecode VM (§2.2) — the cheap tier.
    Bytecode,
    /// The native register machine — the optimizing tier.
    Native,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::Bytecode => "bytecode",
            Tier::Native => "native",
        })
    }
}

/// A resident cache entry.
#[derive(Debug)]
pub struct Entry<A> {
    /// The compiled artifact.
    pub artifact: A,
    /// Which tier compiled it.
    pub tier: Tier,
    /// Nanoseconds the compile took (reported on hits so callers can see
    /// what the cache saved them).
    pub compile_ns: u64,
    /// Times this entry has been served since insertion (drives adaptive
    /// tier promotion).
    pub hits: u64,
}

/// Monotonic counters for one shard's cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a resident artifact.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

/// A strict-LRU, capacity-bounded artifact cache.
///
/// `cap == 0` disables caching entirely (every lookup misses and inserts
/// are dropped) — the bench harness uses this as the cache-off baseline.
#[derive(Debug)]
pub struct ArtifactCache<A> {
    cap: usize,
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot<A>>,
    /// Most-recently-used slot, or `usize::MAX` when empty.
    head: usize,
    /// Least-recently-used slot, or `usize::MAX` when empty.
    tail: usize,
    free: Vec<usize>,
    counters: CacheCounters,
}

#[derive(Debug)]
struct Slot<A> {
    key: CacheKey,
    entry: Entry<A>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<A> ArtifactCache<A> {
    /// A cache bounded to `cap` entries (0 disables caching).
    pub fn new(cap: usize) -> Self {
        ArtifactCache {
            cap,
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// This shard's counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    fn unlink(&mut self, ix: usize) {
        let (prev, next) = (self.slots[ix].prev, self.slots[ix].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, ix: usize) {
        self.slots[ix].prev = NIL;
        self.slots[ix].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = ix;
        }
        self.head = ix;
        if self.tail == NIL {
            self.tail = ix;
        }
    }

    /// Looks up `key`, counting a hit or miss. A hit is promoted to
    /// most-recently-used and its hit count incremented.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<&mut Entry<A>> {
        match self.map.get(key).copied() {
            Some(ix) => {
                self.counters.hits += 1;
                self.unlink(ix);
                self.push_front(ix);
                let e = &mut self.slots[ix].entry;
                e.hits += 1;
                Some(e)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Peeks at `key` without touching recency or counters (tier
    /// promotion re-reads the entry it just looked up).
    pub fn peek_mut(&mut self, key: &CacheKey) -> Option<&mut Entry<A>> {
        let ix = self.map.get(key).copied()?;
        Some(&mut self.slots[ix].entry)
    }

    /// Inserts a freshly compiled artifact as most-recently-used,
    /// evicting the least-recently-used entry if the cache is full.
    /// Returns the evicted key, if any.
    pub fn insert(&mut self, key: CacheKey, entry: Entry<A>) -> Option<CacheKey> {
        if self.cap == 0 {
            return None;
        }
        if let Some(ix) = self.map.get(&key).copied() {
            // Replacement (e.g. tier promotion): keep one slot per key.
            self.unlink(ix);
            self.push_front(ix);
            self.slots[ix].entry = entry;
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.cap {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = self.slots[lru].key;
            self.map.remove(&old);
            self.free.push(lru);
            self.counters.evictions += 1;
            evicted = Some(old);
        }
        let ix = match self.free.pop() {
            Some(ix) => {
                self.slots[ix] = Slot {
                    key,
                    entry,
                    prev: NIL,
                    next: NIL,
                };
                ix
            }
            None => {
                self.slots.push(Slot {
                    key,
                    entry,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, ix);
        self.push_front(ix);
        evicted
    }

    /// Keys from most- to least-recently used (tests assert exact LRU
    /// order through this).
    pub fn keys_by_recency(&self) -> Vec<CacheKey> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut ix = self.head;
        while ix != NIL {
            out.push(self.slots[ix].key);
            ix = self.slots[ix].next;
        }
        out
    }
}

/// What a [`SharedArtifactCache::claim`] resolved to.
pub enum Claim<A> {
    /// The artifact is resident (possibly because another thread just
    /// finished compiling it while we waited).
    Hit {
        /// A clone of the shared artifact.
        artifact: A,
        /// The tier that compiled it.
        tier: Tier,
        /// What the resident artifact cost to compile.
        compile_ns: u64,
        /// Times the entry has served (after this claim).
        hits: u64,
    },
    /// This claimant owns the compile: no other thread will compile this
    /// key until the ticket is fulfilled or dropped.
    Compute(ComputeTicket<A>),
}

/// The single-flight compile permit for one key. Exactly one exists per
/// in-flight key; holders must either [`ComputeTicket::fulfill`] it with
/// a compiled entry or drop it (compile failure), which releases every
/// waiter to retry — the next claimant becomes the new owner.
pub struct ComputeTicket<A> {
    cache: Arc<SharedArtifactCache<A>>,
    key: CacheKey,
    fulfilled: bool,
}

impl<A> ComputeTicket<A> {
    /// The key this ticket owns.
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// Publishes the compiled entry and wakes every waiter. Returns the
    /// evicted key, if the insert displaced one.
    pub fn fulfill(mut self, entry: Entry<A>) -> Option<CacheKey> {
        self.fulfilled = true;
        let shard = self.cache.shard(&self.key);
        let mut st = lock(&shard.state);
        let evicted = st.lru.insert(self.key, entry);
        st.inflight.remove(&self.key);
        shard.cv.notify_all();
        evicted
    }
}

impl<A> Drop for ComputeTicket<A> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // Compile failed (or the holder panicked): release the key so
        // waiters stop blocking and the next claimant retries.
        let shard = self.cache.shard(&self.key);
        let mut st = lock(&shard.state);
        st.inflight.remove(&self.key);
        shard.cv.notify_all();
    }
}

struct ShardState<A> {
    lru: ArtifactCache<A>,
    /// Keys currently being compiled by some thread.
    inflight: HashSet<CacheKey>,
}

struct Shard<A> {
    state: Mutex<ShardState<A>>,
    cv: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker that panics mid-insert leaves consistent state (inserts
    // are single calls); keep serving rather than poisoning the pool.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide artifact store: sharded `Mutex<ArtifactCache>` with
/// per-shard condvars for cross-thread single-flight.
///
/// Storage sharding is by canonical [`CacheKey`] hash and exists only to
/// cut lock contention; it is unrelated to request routing. Capacity is
/// `shards * cap_per_shard` total entries.
pub struct SharedArtifactCache<A> {
    shards: Vec<Shard<A>>,
}

impl<A> SharedArtifactCache<A> {
    fn shard(&self, key: &CacheKey) -> &Shard<A> {
        // The key is already two independent FNV lanes; fold in the
        // options word and spread with a multiply-shift.
        let h = (key.program[0] ^ key.program[1].rotate_left(32) ^ key.options)
            .wrapping_mul(0x2545_f491_4f6c_dd1d);
        &self.shards[(h >> 33) as usize % self.shards.len()]
    }
}

impl<A: Clone> SharedArtifactCache<A> {
    /// A store with `shards` lock shards of `cap_per_shard` entries each.
    pub fn new(shards: usize, cap_per_shard: usize) -> Arc<Self> {
        let n = shards.max(1);
        Arc::new(SharedArtifactCache {
            shards: (0..n)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        lru: ArtifactCache::new(cap_per_shard),
                        inflight: HashSet::new(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
        })
    }

    /// Resolves `key` to a hit or a compute permit, blocking while
    /// another thread holds the permit.
    ///
    /// The caller MUST resolve a returned [`ComputeTicket`] promptly
    /// (fulfill or drop); holding it parks every concurrent claimant of
    /// the same key.
    pub fn claim(self: &Arc<Self>, key: CacheKey) -> Claim<A> {
        let shard = self.shard(&key);
        let mut st = lock(&shard.state);
        loop {
            if let Some(e) = st.lru.lookup(&key) {
                return Claim::Hit {
                    artifact: e.artifact.clone(),
                    tier: e.tier,
                    compile_ns: e.compile_ns,
                    hits: e.hits,
                };
            }
            if st.inflight.insert(key) {
                return Claim::Compute(ComputeTicket {
                    cache: Arc::clone(self),
                    key,
                    fulfilled: false,
                });
            }
            st = shard.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Replaces (or inserts) an entry outside the single-flight protocol
    /// — tier promotion publishes its upgraded artifact through this.
    /// Returns the evicted key, if any.
    pub fn publish(&self, key: CacheKey, entry: Entry<A>) -> Option<CacheKey> {
        let shard = self.shard(&key);
        let mut st = lock(&shard.state);
        st.lru.insert(key, entry)
    }

    /// Total resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.state).lru.len()).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            program: [n, n ^ 0xabcd],
            options: 7,
        }
    }

    fn entry(v: u32) -> Entry<u32> {
        Entry {
            artifact: v,
            tier: Tier::Native,
            compile_ns: 0,
            hits: 0,
        }
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let mut c = ArtifactCache::new(3);
        for n in 0..3 {
            assert_eq!(c.insert(key(n), entry(n as u32)), None);
        }
        assert_eq!(c.keys_by_recency(), vec![key(2), key(1), key(0)]);
        // Touch 0: it becomes MRU, so 1 is now the eviction victim.
        assert!(c.lookup(&key(0)).is_some());
        assert_eq!(c.keys_by_recency(), vec![key(0), key(2), key(1)]);
        assert_eq!(c.insert(key(3), entry(3)), Some(key(1)));
        assert_eq!(c.keys_by_recency(), vec![key(3), key(0), key(2)]);
        // And the next eviction takes 2, then 0.
        assert_eq!(c.insert(key(4), entry(4)), Some(key(2)));
        assert_eq!(c.insert(key(5), entry(5)), Some(key(0)));
        assert_eq!(c.counters().evictions, 3);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = ArtifactCache::new(2);
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), entry(1));
        assert_eq!(c.lookup(&key(1)).unwrap().artifact, 1);
        assert_eq!(c.lookup(&key(1)).unwrap().hits, 2);
        assert_eq!(
            c.counters(),
            CacheCounters {
                hits: 2,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn replacement_keeps_one_slot_per_key() {
        let mut c = ArtifactCache::new(2);
        c.insert(key(1), entry(1));
        c.insert(key(2), entry(2));
        // Tier promotion replaces in place: no eviction, len unchanged.
        let mut promoted = entry(10);
        promoted.tier = Tier::Native;
        assert_eq!(c.insert(key(1), promoted), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&key(1)).unwrap().artifact, 10);
        assert_eq!(c.counters().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ArtifactCache::new(0);
        assert_eq!(c.insert(key(1), entry(1)), None);
        assert!(c.lookup(&key(1)).is_none());
        assert!(c.is_empty());
        assert_eq!(c.counters().misses, 1);
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut c = ArtifactCache::new(2);
        for n in 0..100 {
            c.insert(key(n), entry(n as u32));
        }
        // 100 inserts through a 2-slot cache allocate only 2 slots.
        assert_eq!(c.slots.len(), 2);
        assert_eq!(c.counters().evictions, 98);
    }

    #[test]
    fn shared_cache_single_flight_under_contention() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // 16 threads race to claim the same absent key; exactly one gets
        // the compute ticket, everyone else blocks and wakes to a hit.
        let cache: Arc<SharedArtifactCache<u32>> = SharedArtifactCache::new(4, 8);
        let compiles = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(16));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let compiles = Arc::clone(&compiles);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match cache.claim(key(7)) {
                        Claim::Compute(ticket) => {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            // Hold the permit long enough that the other
                            // 15 threads really do pile up on the condvar.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            ticket.fulfill(entry(42));
                            42
                        }
                        Claim::Hit { artifact, .. } => artifact,
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn dropped_ticket_releases_waiters_to_retry() {
        let cache: Arc<SharedArtifactCache<u32>> = SharedArtifactCache::new(1, 8);
        let Claim::Compute(ticket) = cache.claim(key(1)) else {
            panic!("first claim must be a compute");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.claim(key(1)) {
                Claim::Compute(t) => {
                    // The failed compile fell to us; succeed this time.
                    t.fulfill(entry(9));
                    "retried"
                }
                Claim::Hit { .. } => "hit",
            })
        };
        // Simulated compile failure: drop without fulfilling.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(ticket);
        assert_eq!(waiter.join().unwrap(), "retried");
        // And the retry's artifact is now resident for everyone.
        match cache.claim(key(1)) {
            Claim::Hit { artifact, .. } => assert_eq!(artifact, 9),
            Claim::Compute(_) => panic!("artifact should be resident"),
        }
    }

    #[test]
    fn publish_replaces_entry_in_place() {
        let cache: Arc<SharedArtifactCache<u32>> = SharedArtifactCache::new(2, 4);
        let Claim::Compute(t) = cache.claim(key(3)) else {
            panic!("expected compute");
        };
        t.fulfill(Entry {
            artifact: 1,
            tier: Tier::Bytecode,
            compile_ns: 10,
            hits: 0,
        });
        // Tier promotion path: replace with the native artifact.
        cache.publish(
            key(3),
            Entry {
                artifact: 2,
                tier: Tier::Native,
                compile_ns: 99,
                hits: 0,
            },
        );
        match cache.claim(key(3)) {
            Claim::Hit {
                artifact,
                tier,
                compile_ns,
                ..
            } => {
                assert_eq!((artifact, tier, compile_ns), (2, Tier::Native, 99));
            }
            Claim::Compute(_) => panic!("expected hit"),
        }
        assert_eq!(cache.len(), 1);
    }
}
