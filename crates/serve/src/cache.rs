//! The content-addressed artifact cache.
//!
//! Each pool shard owns one [`ArtifactCache`]: a strict least-recently-used
//! map from [`CacheKey`] to a compiled artifact tagged with its tier
//! (bytecode vs native). Shards are thread-confined — artifacts hold `Rc`
//! internally and never cross threads — so the cache needs no locks; the
//! only shared state is the hit/miss/eviction counters, which the worker
//! reports into the pool-wide [`crate::metrics::ServeMetrics`].
//!
//! Single-flight deduplication is structural rather than lock-based: all
//! requests for one program route to one shard (see [`crate::key`]), and a
//! shard executes its queue serially, so N concurrent requests for the
//! same uncached program trigger exactly one compile — the other N−1 find
//! the artifact already resident when their turn comes.

use crate::key::CacheKey;
use std::collections::HashMap;

/// Which engine an artifact targets (the Titzer-style tier tag: bytecode
/// compiles fast and runs slow; native compiles slow and runs fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The legacy bytecode VM (§2.2) — the cheap tier.
    Bytecode,
    /// The native register machine — the optimizing tier.
    Native,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::Bytecode => "bytecode",
            Tier::Native => "native",
        })
    }
}

/// A resident cache entry.
#[derive(Debug)]
pub struct Entry<A> {
    /// The compiled artifact (thread-confined).
    pub artifact: A,
    /// Which tier compiled it.
    pub tier: Tier,
    /// Nanoseconds the compile took (reported on hits so callers can see
    /// what the cache saved them).
    pub compile_ns: u64,
    /// Times this entry has been served since insertion (drives adaptive
    /// tier promotion).
    pub hits: u64,
}

/// Monotonic counters for one shard's cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a resident artifact.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

/// A strict-LRU, capacity-bounded artifact cache.
///
/// `cap == 0` disables caching entirely (every lookup misses and inserts
/// are dropped) — the bench harness uses this as the cache-off baseline.
#[derive(Debug)]
pub struct ArtifactCache<A> {
    cap: usize,
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot<A>>,
    /// Most-recently-used slot, or `usize::MAX` when empty.
    head: usize,
    /// Least-recently-used slot, or `usize::MAX` when empty.
    tail: usize,
    free: Vec<usize>,
    counters: CacheCounters,
}

#[derive(Debug)]
struct Slot<A> {
    key: CacheKey,
    entry: Entry<A>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<A> ArtifactCache<A> {
    /// A cache bounded to `cap` entries (0 disables caching).
    pub fn new(cap: usize) -> Self {
        ArtifactCache {
            cap,
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// This shard's counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    fn unlink(&mut self, ix: usize) {
        let (prev, next) = (self.slots[ix].prev, self.slots[ix].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, ix: usize) {
        self.slots[ix].prev = NIL;
        self.slots[ix].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = ix;
        }
        self.head = ix;
        if self.tail == NIL {
            self.tail = ix;
        }
    }

    /// Looks up `key`, counting a hit or miss. A hit is promoted to
    /// most-recently-used and its hit count incremented.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<&mut Entry<A>> {
        match self.map.get(key).copied() {
            Some(ix) => {
                self.counters.hits += 1;
                self.unlink(ix);
                self.push_front(ix);
                let e = &mut self.slots[ix].entry;
                e.hits += 1;
                Some(e)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Peeks at `key` without touching recency or counters (tier
    /// promotion re-reads the entry it just looked up).
    pub fn peek_mut(&mut self, key: &CacheKey) -> Option<&mut Entry<A>> {
        let ix = self.map.get(key).copied()?;
        Some(&mut self.slots[ix].entry)
    }

    /// Inserts a freshly compiled artifact as most-recently-used,
    /// evicting the least-recently-used entry if the cache is full.
    /// Returns the evicted key, if any.
    pub fn insert(&mut self, key: CacheKey, entry: Entry<A>) -> Option<CacheKey> {
        if self.cap == 0 {
            return None;
        }
        if let Some(ix) = self.map.get(&key).copied() {
            // Replacement (e.g. tier promotion): keep one slot per key.
            self.unlink(ix);
            self.push_front(ix);
            self.slots[ix].entry = entry;
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.cap {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = self.slots[lru].key;
            self.map.remove(&old);
            self.free.push(lru);
            self.counters.evictions += 1;
            evicted = Some(old);
        }
        let ix = match self.free.pop() {
            Some(ix) => {
                self.slots[ix] = Slot {
                    key,
                    entry,
                    prev: NIL,
                    next: NIL,
                };
                ix
            }
            None => {
                self.slots.push(Slot {
                    key,
                    entry,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, ix);
        self.push_front(ix);
        evicted
    }

    /// Keys from most- to least-recently used (tests assert exact LRU
    /// order through this).
    pub fn keys_by_recency(&self) -> Vec<CacheKey> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut ix = self.head;
        while ix != NIL {
            out.push(self.slots[ix].key);
            ix = self.slots[ix].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            program: [n, n ^ 0xabcd],
            options: 7,
        }
    }

    fn entry(v: u32) -> Entry<u32> {
        Entry {
            artifact: v,
            tier: Tier::Native,
            compile_ns: 0,
            hits: 0,
        }
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let mut c = ArtifactCache::new(3);
        for n in 0..3 {
            assert_eq!(c.insert(key(n), entry(n as u32)), None);
        }
        assert_eq!(c.keys_by_recency(), vec![key(2), key(1), key(0)]);
        // Touch 0: it becomes MRU, so 1 is now the eviction victim.
        assert!(c.lookup(&key(0)).is_some());
        assert_eq!(c.keys_by_recency(), vec![key(0), key(2), key(1)]);
        assert_eq!(c.insert(key(3), entry(3)), Some(key(1)));
        assert_eq!(c.keys_by_recency(), vec![key(3), key(0), key(2)]);
        // And the next eviction takes 2, then 0.
        assert_eq!(c.insert(key(4), entry(4)), Some(key(2)));
        assert_eq!(c.insert(key(5), entry(5)), Some(key(0)));
        assert_eq!(c.counters().evictions, 3);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = ArtifactCache::new(2);
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), entry(1));
        assert_eq!(c.lookup(&key(1)).unwrap().artifact, 1);
        assert_eq!(c.lookup(&key(1)).unwrap().hits, 2);
        assert_eq!(
            c.counters(),
            CacheCounters {
                hits: 2,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn replacement_keeps_one_slot_per_key() {
        let mut c = ArtifactCache::new(2);
        c.insert(key(1), entry(1));
        c.insert(key(2), entry(2));
        // Tier promotion replaces in place: no eviction, len unchanged.
        let mut promoted = entry(10);
        promoted.tier = Tier::Native;
        assert_eq!(c.insert(key(1), promoted), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&key(1)).unwrap().artifact, 10);
        assert_eq!(c.counters().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ArtifactCache::new(0);
        assert_eq!(c.insert(key(1), entry(1)), None);
        assert!(c.lookup(&key(1)).is_none());
        assert!(c.is_empty());
        assert_eq!(c.counters().misses, 1);
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut c = ArtifactCache::new(2);
        for n in 0..100 {
            c.insert(key(n), entry(n as u32));
        }
        // 100 inserts through a 2-slot cache allocate only 2 slots.
        assert_eq!(c.slots.len(), 2);
        assert_eq!(c.counters().evictions, 98);
    }
}
