//! The sharded worker pool: admission, routing, and the request/reply
//! surface.
//!
//! Requests are routed to a shard by content hash (same program + options
//! → same shard, always), admitted into that shard's bounded queue, and
//! executed serially by the shard's worker thread. Backpressure is
//! explicit: a full queue rejects with [`ServeError::Overloaded`] rather
//! than queueing unboundedly — the client decides whether to retry,
//! shed, or slow down.

use crate::cache::{SharedArtifactCache, Tier};
use crate::deadline::DeadlineTimer;
use crate::disk::DiskCache;
use crate::key;
use crate::metrics::ServeMetrics;
use crate::worker;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wolfram_compiler_core::CompilerOptions;

/// Which tier(s) the pool compiles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPolicy {
    /// Always compile with the optimizing pipeline (the default).
    NativeOnly,
    /// Compile with the fast legacy bytecode compiler; programs outside
    /// its subset (limitation L1) still get the native pipeline.
    BytecodeOnly,
    /// Start on the bytecode tier, recompile natively once an entry has
    /// served `promote_after` cache hits — the baseline-compiler tiering
    /// argument (Titzer) applied to our two compiler generations.
    Adaptive {
        /// Cache hits an entry must serve before native promotion.
        promote_after: u64,
    },
}

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (= cache shards). Must be ≥ 1.
    pub workers: usize,
    /// Bounded queue length per shard; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Artifact-cache entries per lock shard of the shared store (the
    /// store has one shard per worker, so total capacity is
    /// `workers * cache_cap`); 0 disables caching (every request
    /// recompiles — the bench baseline).
    pub cache_cap: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Tier selection policy.
    pub tier_policy: TierPolicy,
    /// Directory for the disk-backed second cache level; `None` keeps
    /// the cache purely in-memory. An unusable directory disables the
    /// disk level with a warning (the server must keep answering).
    pub disk_cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 256,
            cache_cap: 512,
            default_deadline: None,
            tier_policy: TierPolicy::NativeOnly,
            disk_cache_dir: None,
        }
    }
}

/// A compile-and-evaluate request. Everything here is plain data
/// (`Send`): the program and its arguments cross the thread boundary as
/// text and are parsed on the owning shard (see the crate-level
/// Send/Sync audit).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// `Function[...]` source text.
    pub source: String,
    /// Argument expressions in `InputForm` (one string per argument).
    pub args: Vec<String>,
    /// Compiler options; `None` uses [`CompilerOptions::default`]. Part
    /// of the cache key — same source under different options is a
    /// different artifact.
    pub options: Option<CompilerOptions>,
    /// Wall-clock budget measured from submission (queue wait included);
    /// `None` uses the pool's default.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// A request with default options and deadline.
    pub fn new(
        source: impl Into<String>,
        args: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ServeRequest {
            source: source.into(),
            args: args.into_iter().map(Into::into).collect(),
            options: None,
            deadline: None,
        }
    }

    /// Sets explicit compiler options.
    #[must_use]
    pub fn with_options(mut self, options: CompilerOptions) -> Self {
        self.options = Some(options);
        self
    }

    /// Sets a per-request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Where the artifact for a request came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from a resident artifact.
    Hit,
    /// Loaded from the disk cache (no compile ran — the warm-restart
    /// path).
    DiskHit,
    /// Compiled on this request.
    Miss,
    /// The request failed before the cache was consulted (parse error,
    /// expired deadline, rejection).
    Unreached,
}

/// A request failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The shard queue was full at admission.
    Overloaded,
    /// The deadline expired (in queue, or mid-execution via the abort
    /// signal).
    DeadlineExceeded,
    /// The program or an argument failed to parse.
    Parse(String),
    /// The program failed to compile.
    Compile(String),
    /// Execution failed (other than aborts).
    Runtime(String),
    /// The pool shut down before the request completed.
    PoolClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "Overloaded: shard queue full"),
            ServeError::DeadlineExceeded => write!(f, "Aborted: deadline exceeded"),
            ServeError::Parse(e) => write!(f, "parse error: {e}"),
            ServeError::Compile(e) => write!(f, "compile error: {e}"),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
            ServeError::PoolClosed => write!(f, "pool closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The reply for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReply {
    /// The result rendered in `InputForm`, or the failure.
    pub result: Result<String, ServeError>,
    /// Tier of the artifact that served the request.
    pub tier: Option<Tier>,
    /// Whether the artifact was cached.
    pub cache: CacheStatus,
    /// Nanoseconds spent compiling. On a hit this is the *saved* cost:
    /// what the resident artifact cost to compile when it was built.
    pub compile_ns: u64,
    /// Nanoseconds spent executing.
    pub execute_ns: u64,
    /// End-to-end nanoseconds from submission to reply.
    pub total_ns: u64,
    /// Whether a soft numeric failure re-ran under the interpreter (§3
    /// F2 — the answer is still correct, just slow).
    pub fell_back: bool,
}

impl ServeReply {
    pub(crate) fn failed(err: ServeError) -> ServeReply {
        ServeReply {
            result: Err(err),
            tier: None,
            cache: CacheStatus::Unreached,
            compile_ns: 0,
            execute_ns: 0,
            total_ns: 0,
            fell_back: false,
        }
    }
}

/// One queued request (crate-internal).
pub(crate) struct Job {
    pub req: ServeRequest,
    pub submitted: Instant,
    pub deadline_at: Option<Instant>,
    pub reply: SyncSender<ServeReply>,
}

/// An in-flight request; [`PendingReply::wait`] blocks for the reply.
pub struct PendingReply {
    rx: Receiver<ServeReply>,
}

impl PendingReply {
    /// Blocks until the worker replies.
    pub fn wait(self) -> ServeReply {
        self.rx
            .recv()
            .unwrap_or_else(|_| ServeReply::failed(ServeError::PoolClosed))
    }
}

/// The serving pool. Dropping it shuts the workers down (in-flight
/// requests finish; queued requests are drained and answered).
pub struct ServePool {
    shards: Vec<SyncSender<Job>>,
    metrics: Arc<ServeMetrics>,
    cache: Arc<SharedArtifactCache<worker::SharedArtifact>>,
    default_options: CompilerOptions,
    default_deadline: Option<Duration>,
    handles: Vec<std::thread::JoinHandle<()>>,
    // Keeps the timer thread alive for the pool's lifetime.
    _timer: DeadlineTimer,
}

impl ServePool {
    /// Starts `config.workers` shard threads and the shared deadline
    /// timer.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`.
    pub fn start(config: ServeConfig) -> ServePool {
        assert!(config.workers > 0, "ServeConfig.workers must be >= 1");
        let metrics = Arc::new(ServeMetrics::new());
        let timer = DeadlineTimer::start();
        // One shared store for the whole pool: one lock shard per worker
        // keeps total capacity = workers * cache_cap, matching the old
        // per-worker-cache semantics while letting every worker see
        // every artifact.
        let cache = SharedArtifactCache::new(config.workers, config.cache_cap);
        let disk = config.disk_cache_dir.as_ref().and_then(|dir| {
            match DiskCache::open(dir) {
                Ok(d) => Some(Arc::new(d)),
                Err(e) => {
                    // Serving beats warm restarts: run memory-only.
                    eprintln!(
                        "wolfram-serve: disk cache at {} unusable ({e}); continuing without it",
                        dir.display()
                    );
                    None
                }
            }
        });
        let mut shards = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for shard in 0..config.workers {
            let (tx, rx) = sync_channel::<Job>(config.queue_cap.max(1));
            let worker_metrics = Arc::clone(&metrics);
            let worker_timer = timer.clone();
            let worker_cfg = worker::WorkerConfig {
                tier_policy: config.tier_policy,
                cache: Arc::clone(&cache),
                disk: disk.clone(),
                // Local instantiations are per-worker; bound them by the
                // worker's fair share of the store (>= 16 so tiny caches
                // still reuse machines).
                instance_cap: config.cache_cap.max(16),
            };
            let handle = std::thread::Builder::new()
                .name(format!("wolfram-serve-{shard}"))
                .spawn(move || worker::run(rx, worker_metrics, worker_timer, worker_cfg))
                .expect("spawn serve worker");
            shards.push(tx);
            handles.push(handle);
        }
        ServePool {
            shards,
            metrics,
            cache,
            default_options: CompilerOptions::default(),
            default_deadline: config.default_deadline,
            handles,
            _timer: timer,
        }
    }

    /// The pool's shared metrics block.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Artifacts resident in the shared in-memory store (all workers see
    /// the same count — there is one store).
    pub fn resident_artifacts(&self) -> usize {
        self.cache.len()
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Submits a request without blocking on execution.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the target shard's queue is full;
    /// [`ServeError::PoolClosed`] if the pool is shutting down.
    pub fn submit(&self, req: ServeRequest) -> Result<PendingReply, ServeError> {
        let options = req.options.as_ref().unwrap_or(&self.default_options);
        let shard = key::shard_for(&req.source, options, self.shards.len());
        let submitted = Instant::now();
        let deadline_at = req
            .deadline
            .or(self.default_deadline)
            .map(|d| submitted + d);
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job {
            req,
            submitted,
            deadline_at,
            reply: reply_tx,
        };
        // Count the depth before sending so the worker's decrement can
        // never observe the queue below zero.
        self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        match self.shards[shard].try_send(job) {
            Ok(()) => {
                self.metrics.admitted.fetch_add(1, Ordering::Relaxed);
                let depth = self.metrics.queue_depth.load(Ordering::Relaxed);
                self.metrics
                    .queue_depth_max
                    .fetch_max(depth, Ordering::Relaxed);
                Ok(PendingReply { rx: reply_rx })
            }
            Err(e) => {
                self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => {
                        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::Overloaded)
                    }
                    TrySendError::Disconnected(_) => Err(ServeError::PoolClosed),
                }
            }
        }
    }

    /// Submits and waits: the closed-loop client call. Admission failures
    /// come back as a failed [`ServeReply`].
    pub fn call(&self, req: ServeRequest) -> ServeReply {
        match self.submit(req) {
            Ok(pending) => pending.wait(),
            Err(e) => ServeReply::failed(e),
        }
    }

    /// Shuts the pool down, joining every worker.
    pub fn shutdown(mut self) {
        self.shards.clear(); // disconnect the queues
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shards.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
