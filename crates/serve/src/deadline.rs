//! A shared deadline timer for the pool.
//!
//! [`wolfram_runtime::AbortSignal::deadline`] spawns one watchdog thread
//! per call, which is the right shape for the difftest oracle's long,
//! rare runs but not for a service executing tens of thousands of
//! sub-millisecond requests. The pool instead keeps **one** timer thread
//! with a min-heap of armed deadlines; workers arm a deadline when they
//! pick a request up and disarm it when the request finishes. Expired
//! entries trigger the request's [`AbortSignal`], which the compiled
//! code observes at its next abort check (loop headers and prologues,
//! §4.5) and unwinds as `Aborted`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use wolfram_runtime::AbortSignal;

/// One armed deadline. Ordered by expiry for the heap; the id breaks ties
/// and identifies the entry for disarm.
struct Armed {
    at: Instant,
    id: u64,
    signal: AbortSignal,
}

impl PartialEq for Armed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl Eq for Armed {}
impl PartialOrd for Armed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Armed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.id).cmp(&(other.at, other.id))
    }
}

#[derive(Default)]
struct TimerState {
    heap: BinaryHeap<Reverse<Armed>>,
    /// Ids disarmed before expiry; their heap entries are skipped lazily.
    cancelled: std::collections::HashSet<u64>,
    next_id: u64,
    shutdown: bool,
}

/// The shared timer. Cloning shares the underlying thread.
#[derive(Clone)]
pub struct DeadlineTimer {
    state: Arc<(Mutex<TimerState>, Condvar)>,
}

/// Disarms its deadline on drop.
pub struct ArmedDeadline {
    timer: DeadlineTimer,
    id: u64,
}

impl Drop for ArmedDeadline {
    fn drop(&mut self) {
        let (lock, cv) = &*self.timer.state;
        let mut st = lock.lock().expect("timer lock poisoned");
        st.cancelled.insert(self.id);
        cv.notify_one();
    }
}

impl DeadlineTimer {
    /// Starts the timer thread. The thread exits when the last clone of
    /// this handle is dropped.
    pub fn start() -> DeadlineTimer {
        let state = Arc::new((Mutex::new(TimerState::default()), Condvar::new()));
        let shared = Arc::downgrade(&state);
        std::thread::Builder::new()
            .name("wolfram-serve-deadline".into())
            .spawn(move || loop {
                let Some(state) = shared.upgrade() else {
                    return;
                };
                let (lock, cv) = &*state;
                let mut st = lock.lock().expect("timer lock poisoned");
                if st.shutdown {
                    return;
                }
                // Fire everything due; drop lazily-cancelled entries.
                let now = Instant::now();
                let mut next: Option<Instant> = None;
                while let Some(Reverse(top)) = st.heap.peek() {
                    if st.cancelled.contains(&top.id) {
                        let Reverse(top) = st.heap.pop().expect("peeked");
                        st.cancelled.remove(&top.id);
                        continue;
                    }
                    if top.at <= now {
                        let Reverse(top) = st.heap.pop().expect("peeked");
                        top.signal.trigger();
                        continue;
                    }
                    next = Some(top.at);
                    break;
                }
                // Sleep until the next expiry (or until armed/disarmed).
                // Dropping the Arc upgrade before sleeping would race, so
                // hold it across the wait; the weak check above still
                // lets the thread exit once all handles are gone.
                let st = match next {
                    Some(at) => {
                        let wait = at.saturating_duration_since(Instant::now());
                        cv.wait_timeout(st, wait).expect("timer lock poisoned").0
                    }
                    None => {
                        cv.wait_timeout(st, std::time::Duration::from_millis(50))
                            .expect("timer lock poisoned")
                            .0
                    }
                };
                drop(st);
            })
            .expect("spawn deadline timer");
        DeadlineTimer { state }
    }

    /// Arms `signal` to trigger at `at`. The deadline disarms when the
    /// returned handle drops.
    pub fn arm(&self, at: Instant, signal: AbortSignal) -> ArmedDeadline {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock().expect("timer lock poisoned");
        let id = st.next_id;
        st.next_id += 1;
        st.heap.push(Reverse(Armed { at, id, signal }));
        cv.notify_one();
        ArmedDeadline {
            timer: self.clone(),
            id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fires_expired_deadlines() {
        let timer = DeadlineTimer::start();
        let signal = AbortSignal::new();
        let _armed = timer.arm(Instant::now() + Duration::from_millis(5), signal.clone());
        let start = Instant::now();
        while !signal.is_triggered() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn disarm_prevents_firing() {
        let timer = DeadlineTimer::start();
        let signal = AbortSignal::new();
        let armed = timer.arm(Instant::now() + Duration::from_millis(30), signal.clone());
        drop(armed);
        std::thread::sleep(Duration::from_millis(80));
        assert!(!signal.is_triggered());
    }

    #[test]
    fn many_deadlines_fire_independently() {
        let timer = DeadlineTimer::start();
        let quick = AbortSignal::new();
        let slow = AbortSignal::new();
        let _q = timer.arm(Instant::now() + Duration::from_millis(5), quick.clone());
        let s = timer.arm(Instant::now() + Duration::from_secs(60), slow.clone());
        let start = Instant::now();
        while !quick.is_triggered() {
            assert!(start.elapsed() < Duration::from_secs(5));
            std::thread::yield_now();
        }
        assert!(!slow.is_triggered());
        drop(s);
    }
}
