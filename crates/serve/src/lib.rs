//! `wolfram-serve`: a concurrent compile-and-evaluate service over the
//! compiler tiers.
//!
//! The paper's compiler is invoked interactively — one `FunctionCompile`
//! per kernel call. A production serving story (the ROADMAP north star)
//! instead amortizes compilation across requests and bounds evaluation:
//!
//! - **Content-addressed compile cache** ([`cache`], keyed by [`key`]):
//!   artifacts are identified by a hash of the canonicalized MExpr plus
//!   the [`CompilerOptions::fingerprint`], LRU-bounded, tagged with their
//!   tier (bytecode vs native), with hit/miss/eviction counters.
//! - **Sharded worker pool** ([`pool`]): requests route by content hash
//!   to a fixed worker; each worker owns its shard of the cache and
//!   executes its queue serially, which makes single-flight deduplication
//!   *structural* — N concurrent requests for one uncached program reach
//!   one shard and trigger exactly one compile. Admission is a bounded
//!   queue with explicit [`ServeError::Overloaded`] rejection.
//! - **Deadlines** ([`deadline`]): every request's remaining budget is
//!   armed on a shared timer that triggers the worker's
//!   [`wolfram_runtime::AbortSignal`]; compiled code observes it at loop
//!   headers and prologues (§4.5) and unwinds as `Aborted` without
//!   poisoning the worker.
//! - **Metrics** ([`metrics`]): request/outcome counters, cache hit
//!   rate, queue depth, and compile/execute/request latency histograms.
//!
//! # Send/Sync audit (why the pool is sharded, not work-stealing)
//!
//! Compiled artifacts are **thread-confined by construction**: a
//! [`wolfram_compiler_core::CompiledCodeFunction`] holds `Rc<ProgramModule>`,
//! `Rc<NativeProgram>` (whose `RegOp` streams embed constant
//! [`wolfram_runtime::Value`]s), and an optional `Rc<RefCell<Interpreter>>`
//! hosting engine; a [`wolfram_runtime::Value`] itself can hold `Rc<String>`,
//! `Rc<BigInt>`, copy-on-write tensors, and `Value::Expr` (the `Rc`-based
//! MExpr). None of these are `Send`, and making them so would put atomic
//! reference counting on the interpreter's hottest paths. The service
//! therefore never moves an artifact, argument value, or result across
//! threads: requests cross the boundary as *text* (source and `InputForm`
//! arguments), replies cross back as text, and everything `Rc`-based
//! lives and dies on its shard. What *does* cross threads is audited at
//! compile time below and in `tests/send_audit.rs`: [`ServeRequest`],
//! [`ServeReply`], the metrics block, and the deadline timer are
//! `Send + Sync`.
//!
//! Compiled artifacts must NOT become sendable by accident; if this
//! compiles, the sharding invariant is gone and the design needs a
//! re-audit:
//!
//! ```compile_fail
//! fn assert_send<T: Send>() {}
//! assert_send::<wolfram_compiler_core::CompiledCodeFunction>();
//! ```
//!
//! Runtime values are equally confined:
//!
//! ```compile_fail
//! fn assert_send<T: Send>() {}
//! assert_send::<wolfram_runtime::Value>();
//! ```
//!
//! # Quickstart
//!
//! ```
//! use wolfram_serve::{ServeConfig, ServePool, ServeRequest};
//!
//! let pool = ServePool::start(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//! let req = ServeRequest::new(
//!     "Function[{Typed[n, \"MachineInteger\"]}, n + 1]",
//!     ["41"],
//! );
//! let reply = pool.call(req.clone());
//! assert_eq!(reply.result.as_deref(), Ok("42"));
//! // Same program again: served from the artifact cache.
//! let again = pool.call(req);
//! assert_eq!(again.cache, wolfram_serve::CacheStatus::Hit);
//! assert!(pool.metrics().hit_rate() > 0.0);
//! ```

pub mod cache;
pub mod deadline;
pub mod key;
pub mod metrics;
pub mod pool;
mod worker;

pub use cache::{ArtifactCache, CacheCounters, Entry, Tier};
pub use deadline::DeadlineTimer;
pub use key::CacheKey;
pub use metrics::{fmt_ns, Histogram, ServeMetrics};
pub use pool::{
    CacheStatus, PendingReply, ServeConfig, ServeError, ServePool, ServeReply, ServeRequest,
    TierPolicy,
};

// Re-exported so callers configuring requests need only this crate.
pub use wolfram_compiler_core::CompilerOptions;
