//! `wolfram-serve`: a concurrent compile-and-evaluate service over the
//! compiler tiers.
//!
//! The paper's compiler is invoked interactively — one `FunctionCompile`
//! per kernel call. A production serving story (the ROADMAP north star)
//! instead amortizes compilation across requests, across workers, and
//! across process restarts, and bounds evaluation:
//!
//! - **Shared two-level compile cache** ([`cache`] and [`disk`], keyed by
//!   [`key`]): artifacts are identified by a hash of the canonicalized
//!   MExpr plus the [`CompilerOptions::fingerprint`]. Level 1 is one
//!   process-wide [`SharedArtifactCache`] — a sharded-lock map of
//!   `Send + Sync` artifacts, so a program compiled once serves *every*
//!   worker. Level 2 is an optional [`DiskCache`] of checksummed,
//!   versioned bytecode images, so a restarted server starts warm.
//! - **Single-flight compilation** ([`cache::Claim`]): N concurrent
//!   requests for one uncached program produce one [`cache::ComputeTicket`]
//!   and N−1 condvar waiters; exactly one compile runs, and a failed or
//!   abandoned compile releases the waiters to retry rather than wedging
//!   them.
//! - **Worker pool with bounded admission** ([`pool`]): requests route by
//!   content hash to a fixed worker queue; overflow is an explicit
//!   [`ServeError::Overloaded`] rejection, never an unbounded backlog.
//! - **Wire protocol** ([`net`]): `u32`-length-prefixed UTF-8 frames over
//!   TCP with in-order replies and a per-client pipelining cap as the
//!   fairness layer on top of pool shedding.
//! - **Deadlines** ([`deadline`]): every request's remaining budget is
//!   armed on a shared timer that triggers the worker's
//!   [`wolfram_runtime::AbortSignal`]; compiled code observes it at loop
//!   headers and prologues (§4.5) and unwinds as `Aborted` without
//!   poisoning the worker.
//! - **Metrics** ([`metrics`]): request/outcome counters, cache and disk
//!   hit counters, queue depth, and compile/execute/request latency
//!   histograms, served machine-readably over the wire as `!stats`.
//!
//! # Send/Sync audit (what crosses threads, and what never does)
//!
//! The shared level-1 cache only works because compiled artifacts are
//! `Send + Sync` by construction: a
//! [`wolfram_compiler_core::CompiledArtifact`] holds `Arc<ProgramModule>`
//! and `Arc<NativeProgram>` (whose `RegOp` streams embed constant
//! [`wolfram_runtime::Value`]s — themselves `Arc`-based, including
//! interned strings, big integers, copy-on-write tensors, and the MExpr
//! form), and the bytecode tier's `CompiledFunction` is a plain data
//! image. `tests/send_audit.rs` asserts all of this positively at compile
//! time.
//!
//! What stays thread-confined is *execution state*: a
//! [`wolfram_compiler_core::CompiledCodeFunction`] wraps an artifact
//! together with its abort signal, its register machine, and an optional
//! `Rc<RefCell<Interpreter>>` hosting engine for eval-escapes. Workers
//! therefore share artifacts but instantiate per-worker execution handles
//! ([`wolfram_compiler_core::CompiledArtifact::instantiate`]); arguments
//! and results still cross the boundary as text. If this ever compiles,
//! an interpreter handle has leaked across threads and the design needs a
//! re-audit:
//!
//! ```compile_fail
//! fn assert_send<T: Send>() {}
//! assert_send::<wolfram_compiler_core::CompiledCodeFunction>();
//! ```
//!
//! # Quickstart
//!
//! ```
//! use wolfram_serve::{ServeConfig, ServePool, ServeRequest};
//!
//! let pool = ServePool::start(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//! let req = ServeRequest::new(
//!     "Function[{Typed[n, \"MachineInteger\"]}, n + 1]",
//!     ["41"],
//! );
//! let reply = pool.call(req.clone());
//! assert_eq!(reply.result.as_deref(), Ok("42"));
//! // Same program again: served from the shared artifact cache.
//! let again = pool.call(req);
//! assert_eq!(again.cache, wolfram_serve::CacheStatus::Hit);
//! assert!(pool.metrics().hit_rate() > 0.0);
//! ```

pub mod cache;
pub mod deadline;
pub mod disk;
pub mod key;
pub mod metrics;
pub mod net;
pub mod pool;
mod worker;

pub use cache::{
    ArtifactCache, CacheCounters, Claim, ComputeTicket, Entry, SharedArtifactCache, Tier,
};
pub use deadline::DeadlineTimer;
pub use disk::{DiskCache, DiskOutcome};
pub use key::CacheKey;
pub use metrics::{fmt_ns, Histogram, ServeMetrics};
pub use net::{serve_listener, NetClient, NetConfig, NetReply, StreamHandler, StreamSession};
pub use pool::{
    CacheStatus, PendingReply, ServeConfig, ServeError, ServePool, ServeReply, ServeRequest,
    TierPolicy,
};

// Re-exported so callers configuring requests need only this crate.
pub use wolfram_compiler_core::CompilerOptions;
