//! The shard worker: owns one cache shard, one hosting interpreter, and
//! the per-options compilers; executes its queue serially.
//!
//! Everything `Rc`-based (compiled artifacts, values, the engine) is
//! created on this thread and never leaves it — see the crate-level
//! Send/Sync audit. The worker's only cross-thread traffic is the job
//! queue (text in), the reply channels (text out), the shared metrics
//! atomics, and the deadline timer.

use crate::cache::{ArtifactCache, Entry, Tier};
use crate::deadline::DeadlineTimer;
use crate::key::CacheKey;
use crate::metrics::ServeMetrics;
use crate::pool::{CacheStatus, Job, ServeError, ServeReply, TierPolicy};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;
use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
use wolfram_compiler_core::{CompiledCodeFunction, Compiler, CompilerOptions};
use wolfram_expr::{parse, Expr};
use wolfram_interp::Interpreter;
use wolfram_runtime::{AbortSignal, RuntimeError, Value};

pub(crate) struct WorkerConfig {
    pub cache_cap: usize,
    pub tier_policy: TierPolicy,
}

/// A compiled artifact, tagged by engine. Clones are cheap (`Rc` bumps
/// plus small vectors): the worker clones an artifact out of the cache to
/// execute it so cache bookkeeping and execution don't fight over
/// borrows.
#[derive(Clone)]
enum Artifact {
    Native(CompiledCodeFunction),
    Bytecode(wolfram_bytecode::CompiledFunction),
}

struct Worker {
    cache: ArtifactCache<Artifact>,
    /// The hosting engine: kernel escapes, soft-failure fallback (§3 F2),
    /// and the abort signal shared with every hosted artifact.
    engine: Rc<RefCell<Interpreter>>,
    signal: AbortSignal,
    /// One compiler per options fingerprint (macro/type environments are
    /// reusable across requests — the §4.7 extension points are
    /// per-options, not per-request).
    compilers: HashMap<u64, Compiler>,
    metrics: Arc<ServeMetrics>,
    timer: DeadlineTimer,
    tier_policy: TierPolicy,
}

pub(crate) fn run(
    jobs: Receiver<Job>,
    metrics: Arc<ServeMetrics>,
    timer: DeadlineTimer,
    cfg: WorkerConfig,
) {
    let engine = Rc::new(RefCell::new(Interpreter::new()));
    let signal = engine.borrow().abort_signal().clone();
    let mut worker = Worker {
        cache: ArtifactCache::new(cfg.cache_cap),
        engine,
        signal,
        compilers: HashMap::new(),
        metrics,
        timer,
        tier_policy: cfg.tier_policy,
    };
    while let Ok(job) = jobs.recv() {
        worker.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let mut reply = worker.serve_one(&job);
        reply.total_ns = elapsed_ns(job.submitted);
        worker.metrics.request_latency.record(reply.total_ns);
        // Leak accounting must survive the pool: move this thread's
        // memory counters into the process-wide totals after every
        // request (aborted runs included — the machine balances its
        // acquire/release bracket on unwind).
        wolfram_runtime::memory::flush_thread_stats();
        // A dropped receiver means the client gave up; the work is done
        // either way.
        let _ = job.reply.send(reply);
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl Worker {
    fn count_failure(&self, err: &ServeError) {
        let counter = match err {
            ServeError::DeadlineExceeded => &self.metrics.aborted,
            ServeError::Parse(_) | ServeError::Compile(_) => &self.metrics.compile_errors,
            _ => &self.metrics.runtime_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn fail(&self, err: ServeError) -> ServeReply {
        self.count_failure(&err);
        ServeReply::failed(err)
    }

    fn serve_one(&mut self, job: &Job) -> ServeReply {
        // A request can spend its whole budget queued; answer `Aborted`
        // without doing any work.
        if let Some(at) = job.deadline_at {
            if Instant::now() >= at {
                return self.fail(ServeError::DeadlineExceeded);
            }
        }
        let options = job.req.options.clone().unwrap_or_default();
        let func = match parse(&job.req.source) {
            Ok(f) => f,
            Err(e) => return self.fail(ServeError::Parse(e.to_string())),
        };
        let mut args = Vec::with_capacity(job.req.args.len());
        for a in &job.req.args {
            match parse(a) {
                Ok(e) => args.push(e),
                Err(e) => return self.fail(ServeError::Parse(format!("argument {a:?}: {e}"))),
            }
        }

        // The deadline is armed across compile + execute: the compiler
        // itself is not abortable, but a deadline firing mid-compile
        // still aborts the subsequent execution at its first check.
        let armed = job
            .deadline_at
            .map(|at| self.timer.arm(at, self.signal.clone()));

        let key = CacheKey::of(&func, &options);
        let (artifact, tier, compile_ns, cache_status) =
            match self.lookup_or_compile(key, &func, &options) {
                Ok(found) => found,
                Err(e) => {
                    drop(armed);
                    self.signal.reset();
                    return self.fail(e);
                }
            };

        let exec_start = Instant::now();
        let outcome = self.execute(&artifact, &args);
        let execute_ns = elapsed_ns(exec_start);
        self.metrics.execute_latency.record(execute_ns);

        // Soft numeric failures re-ran under the interpreter inside the
        // artifact (§3 F2); the engine's output log is how they announce
        // themselves.
        let warnings = self.engine.borrow_mut().take_output();
        let fell_back = warnings
            .iter()
            .any(|w| w.contains("reverting to uncompiled evaluation"));
        if fell_back {
            self.metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
        }

        drop(armed);
        self.signal.reset();

        let result = match outcome {
            Ok(rendered) => {
                self.metrics.ok.fetch_add(1, Ordering::Relaxed);
                Ok(rendered)
            }
            Err(RuntimeError::Aborted) => {
                self.metrics.aborted.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::DeadlineExceeded)
            }
            Err(e) => {
                self.metrics.runtime_errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Runtime(e.to_string()))
            }
        };
        ServeReply {
            result,
            tier: Some(tier),
            cache: cache_status,
            compile_ns,
            execute_ns,
            total_ns: 0, // stamped by the pool loop
            fell_back,
        }
    }

    /// Cache lookup, compile-on-miss, and adaptive tier promotion.
    fn lookup_or_compile(
        &mut self,
        key: CacheKey,
        func: &Expr,
        options: &CompilerOptions,
    ) -> Result<(Artifact, Tier, u64, CacheStatus), ServeError> {
        if let Some(entry) = self.cache.lookup(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            let (artifact, tier, compile_ns, hits) = (
                entry.artifact.clone(),
                entry.tier,
                entry.compile_ns,
                entry.hits,
            );
            // Tier promotion: a hot bytecode entry graduates to native.
            if let TierPolicy::Adaptive { promote_after } = self.tier_policy {
                if tier == Tier::Bytecode && hits >= promote_after {
                    if let Ok((native, ns)) = self.compile_native(func, options) {
                        self.metrics.promotions.fetch_add(1, Ordering::Relaxed);
                        self.record_compile(ns);
                        let promoted = native.clone();
                        self.cache.insert(
                            key,
                            Entry {
                                artifact: native,
                                tier: Tier::Native,
                                compile_ns: ns,
                                hits: 0,
                            },
                        );
                        return Ok((promoted, Tier::Native, ns, CacheStatus::Hit));
                    }
                }
            }
            return Ok((artifact, tier, compile_ns, CacheStatus::Hit));
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        let (artifact, tier, compile_ns) = self.compile(func, options)?;
        self.record_compile(compile_ns);
        if self
            .cache
            .insert(
                key,
                Entry {
                    artifact: artifact.clone(),
                    tier,
                    compile_ns,
                    hits: 0,
                },
            )
            .is_some()
        {
            self.metrics.cache_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok((artifact, tier, compile_ns, CacheStatus::Miss))
    }

    fn record_compile(&self, ns: u64) {
        self.metrics.compiles.fetch_add(1, Ordering::Relaxed);
        self.metrics.compile_latency.record(ns);
    }

    /// Compiles `func` per the tier policy. Bytecode-tier failures
    /// (outside the legacy subset, limitation L1) fall through to the
    /// native pipeline.
    fn compile(
        &mut self,
        func: &Expr,
        options: &CompilerOptions,
    ) -> Result<(Artifact, Tier, u64), ServeError> {
        if !matches!(self.tier_policy, TierPolicy::NativeOnly) {
            let start = Instant::now();
            if let Ok(cf) = compile_bytecode(func) {
                return Ok((Artifact::Bytecode(cf), Tier::Bytecode, elapsed_ns(start)));
            }
        }
        let (cf, ns) = self.compile_native(func, options)?;
        Ok((cf, Tier::Native, ns))
    }

    fn compile_native(
        &mut self,
        func: &Expr,
        options: &CompilerOptions,
    ) -> Result<(Artifact, u64), ServeError> {
        let compiler = self
            .compilers
            .entry(options.fingerprint())
            .or_insert_with(|| Compiler::new(options.clone()));
        let start = Instant::now();
        let cf = compiler
            .function_compile(func)
            .map_err(|e| ServeError::Compile(e.to_string()))?;
        let ns = elapsed_ns(start);
        Ok((Artifact::Native(cf.hosted(self.engine.clone())), ns))
    }

    /// Runs the artifact and renders the result as `InputForm` text.
    fn execute(&self, artifact: &Artifact, args: &[Expr]) -> Result<String, RuntimeError> {
        match artifact {
            Artifact::Native(cf) => {
                let out = cf.call_exprs(args)?;
                Ok(out.to_input_form())
            }
            Artifact::Bytecode(cf) => {
                let values: Vec<Value> = args.iter().map(Value::from_expr).collect();
                let out = cf.run_with_engine(&values, &mut self.engine.borrow_mut())?;
                Ok(out.to_expr().to_input_form())
            }
        }
    }
}

fn compile_bytecode(func: &Expr) -> Result<wolfram_bytecode::CompiledFunction, String> {
    let specs = ArgSpec::from_function(func)?;
    let body = func
        .args()
        .get(1)
        .cloned()
        .ok_or_else(|| "function has no body".to_owned())?;
    BytecodeCompiler::new()
        .compile(&specs, &body)
        .map_err(|e| e.to_string())
}
