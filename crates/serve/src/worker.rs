//! The shard worker: a request executor over the process-wide artifact
//! store.
//!
//! Since the artifact types went `Send + Sync` (see
//! [`wolfram_compiler_core::CompiledArtifact`]), workers no longer own
//! private caches: every worker resolves requests against the shared
//! [`SharedArtifactCache`], whose compute tickets guarantee one compile
//! per program across the whole pool. What stays thread-local is the
//! *execution* state — the hosting interpreter, its abort signal, and a
//! bounded cache of per-worker [`CompiledCodeFunction`] instantiations
//! (machine/frame-pool reuse) that is revalidated against the shared
//! artifact by `Arc` pointer identity, so a republished (e.g. promoted)
//! artifact is picked up immediately.

use crate::cache::{Claim, Entry, SharedArtifactCache, Tier};
use crate::deadline::DeadlineTimer;
use crate::disk::{DiskCache, DiskOutcome};
use crate::key::CacheKey;
use crate::metrics::ServeMetrics;
use crate::pool::{CacheStatus, Job, ServeError, ServeReply, TierPolicy};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;
use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
use wolfram_compiler_core::{CompiledCodeFunction, Compiler, CompilerOptions};
use wolfram_expr::{parse, Expr};
use wolfram_interp::Interpreter;
use wolfram_runtime::{AbortSignal, RuntimeError, Value};

pub(crate) struct WorkerConfig {
    pub tier_policy: TierPolicy,
    /// The process-wide artifact store, shared by every worker.
    pub cache: Arc<SharedArtifactCache<SharedArtifact>>,
    /// The optional disk-backed second level.
    pub disk: Option<Arc<DiskCache>>,
    /// Bound on the per-worker instantiation cache.
    pub instance_cap: usize,
}

/// A compiled artifact as stored in the shared cache: `Send + Sync`,
/// cheap to clone (`Arc` bumps), execution-state-free.
#[derive(Clone)]
pub(crate) enum SharedArtifact {
    /// The optimizing tier's shareable handle.
    Native(wolfram_compiler_core::CompiledArtifact),
    /// The bytecode tier's (already immutable) compiled object.
    Bytecode(Arc<wolfram_bytecode::CompiledFunction>),
}

// The invariant the tentpole bought: what the cache shares must stay
// shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedArtifact>();
};

/// A worker-local, executable binding of a shared artifact.
enum LocalArtifact {
    Native(CompiledCodeFunction),
    Bytecode(Arc<wolfram_bytecode::CompiledFunction>),
}

struct Worker {
    cache: Arc<SharedArtifactCache<SharedArtifact>>,
    disk: Option<Arc<DiskCache>>,
    /// The hosting engine: kernel escapes, soft-failure fallback (§3 F2),
    /// and the abort signal shared with every hosted instantiation.
    engine: Rc<RefCell<Interpreter>>,
    signal: AbortSignal,
    /// Hosted instantiations of shared native artifacts, revalidated by
    /// `Arc::ptr_eq` on every hit (machine/frame-pool reuse).
    instances: HashMap<CacheKey, CompiledCodeFunction>,
    instance_cap: usize,
    /// One compiler per options fingerprint (macro/type environments are
    /// reusable across requests — the §4.7 extension points are
    /// per-options, not per-request).
    compilers: HashMap<u64, Compiler>,
    metrics: Arc<ServeMetrics>,
    timer: DeadlineTimer,
    tier_policy: TierPolicy,
}

pub(crate) fn run(
    jobs: Receiver<Job>,
    metrics: Arc<ServeMetrics>,
    timer: DeadlineTimer,
    cfg: WorkerConfig,
) {
    let engine = Rc::new(RefCell::new(Interpreter::new()));
    let signal = engine.borrow().abort_signal().clone();
    let mut worker = Worker {
        cache: cfg.cache,
        disk: cfg.disk,
        engine,
        signal,
        instances: HashMap::new(),
        instance_cap: cfg.instance_cap.max(1),
        compilers: HashMap::new(),
        metrics,
        timer,
        tier_policy: cfg.tier_policy,
    };
    while let Ok(job) = jobs.recv() {
        worker.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let mut reply = worker.serve_one(&job);
        reply.total_ns = elapsed_ns(job.submitted);
        worker.metrics.request_latency.record(reply.total_ns);
        // Leak accounting must survive the pool: move this thread's
        // memory counters into the process-wide totals after every
        // request (aborted runs included — the machine balances its
        // acquire/release bracket on unwind).
        wolfram_runtime::memory::flush_thread_stats();
        // A dropped receiver means the client gave up; the work is done
        // either way.
        let _ = job.reply.send(reply);
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl Worker {
    fn count_failure(&self, err: &ServeError) {
        let counter = match err {
            ServeError::DeadlineExceeded => &self.metrics.aborted,
            ServeError::Parse(_) | ServeError::Compile(_) => &self.metrics.compile_errors,
            _ => &self.metrics.runtime_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn fail(&self, err: ServeError) -> ServeReply {
        self.count_failure(&err);
        ServeReply::failed(err)
    }

    fn serve_one(&mut self, job: &Job) -> ServeReply {
        // A request can spend its whole budget queued; answer `Aborted`
        // without doing any work.
        if let Some(at) = job.deadline_at {
            if Instant::now() >= at {
                return self.fail(ServeError::DeadlineExceeded);
            }
        }
        let options = job.req.options.clone().unwrap_or_default();
        let func = match parse(&job.req.source) {
            Ok(f) => f,
            Err(e) => return self.fail(ServeError::Parse(e.to_string())),
        };
        let mut args = Vec::with_capacity(job.req.args.len());
        for a in &job.req.args {
            match parse(a) {
                Ok(e) => args.push(e),
                Err(e) => return self.fail(ServeError::Parse(format!("argument {a:?}: {e}"))),
            }
        }

        // The deadline is armed across compile + execute: the compiler
        // itself is not abortable, but a deadline firing mid-compile
        // still aborts the subsequent execution at its first check.
        let armed = job
            .deadline_at
            .map(|at| self.timer.arm(at, self.signal.clone()));

        let key = CacheKey::of(&func, &options);
        let (artifact, tier, compile_ns, cache_status) =
            match self.lookup_or_compile(key, &func, &options) {
                Ok(found) => found,
                Err(e) => {
                    drop(armed);
                    self.signal.reset();
                    return self.fail(e);
                }
            };

        let exec_start = Instant::now();
        let outcome = self.execute(&artifact, &args);
        let execute_ns = elapsed_ns(exec_start);
        self.metrics.execute_latency.record(execute_ns);

        // Soft numeric failures re-ran under the interpreter inside the
        // artifact (§3 F2); the engine's output log is how they announce
        // themselves.
        let warnings = self.engine.borrow_mut().take_output();
        let fell_back = warnings
            .iter()
            .any(|w| w.contains("reverting to uncompiled evaluation"));
        if fell_back {
            self.metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
        }

        drop(armed);
        self.signal.reset();

        let result = match outcome {
            Ok(rendered) => {
                self.metrics.ok.fetch_add(1, Ordering::Relaxed);
                Ok(rendered)
            }
            Err(RuntimeError::Aborted) => {
                self.metrics.aborted.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::DeadlineExceeded)
            }
            Err(e) => {
                self.metrics.runtime_errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Runtime(e.to_string()))
            }
        };
        ServeReply {
            result,
            tier: Some(tier),
            cache: cache_status,
            compile_ns,
            execute_ns,
            total_ns: 0, // stamped by the pool loop
            fell_back,
        }
    }

    /// Shared-cache claim, disk probe, compile-on-miss, and adaptive tier
    /// promotion. A `claim` may block while another worker compiles the
    /// same program — that wait IS the single-flight dedup.
    fn lookup_or_compile(
        &mut self,
        key: CacheKey,
        func: &Expr,
        options: &CompilerOptions,
    ) -> Result<(LocalArtifact, Tier, u64, CacheStatus), ServeError> {
        let ticket = match self.cache.claim(key) {
            Claim::Hit {
                artifact,
                tier,
                compile_ns,
                hits,
            } => {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                // Tier promotion: a hot bytecode entry graduates to
                // native, republished for every worker at once.
                if let TierPolicy::Adaptive { promote_after } = self.tier_policy {
                    if tier == Tier::Bytecode && hits >= promote_after {
                        if let Ok((native, ns)) = self.compile_native(func, options) {
                            self.metrics.promotions.fetch_add(1, Ordering::Relaxed);
                            self.record_compile(ns);
                            let shared = SharedArtifact::Native(native.artifact());
                            if self
                                .cache
                                .publish(
                                    key,
                                    Entry {
                                        artifact: shared,
                                        tier: Tier::Native,
                                        compile_ns: ns,
                                        hits: 0,
                                    },
                                )
                                .is_some()
                            {
                                self.metrics.cache_evictions.fetch_add(1, Ordering::Relaxed);
                            }
                            let local = self.adopt_native(key, native);
                            return Ok((local, Tier::Native, ns, CacheStatus::Hit));
                        }
                    }
                }
                return Ok((
                    self.localize(key, &artifact),
                    tier,
                    compile_ns,
                    CacheStatus::Hit,
                ));
            }
            Claim::Compute(ticket) => ticket,
        };
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Second level: the disk cache holds bytecode images, so it only
        // applies when the policy can serve the bytecode tier at all.
        if !matches!(self.tier_policy, TierPolicy::NativeOnly) {
            if let Some(disk) = self.disk.clone() {
                match disk.load(&key) {
                    DiskOutcome::Hit(cf) => {
                        self.metrics.disk_hits.fetch_add(1, Ordering::Relaxed);
                        let shared = SharedArtifact::Bytecode(Arc::new(cf));
                        let local = self.localize(key, &shared);
                        if ticket
                            .fulfill(Entry {
                                artifact: shared,
                                tier: Tier::Bytecode,
                                compile_ns: 0,
                                hits: 0,
                            })
                            .is_some()
                        {
                            self.metrics.cache_evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok((local, Tier::Bytecode, 0, CacheStatus::DiskHit));
                    }
                    DiskOutcome::Corrupt => {
                        // Unreadable entry: recompile below and overwrite
                        // it with a fresh store.
                        self.metrics.disk_corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    DiskOutcome::Miss => {}
                }
            }
        }

        // A compile error drops the ticket, releasing waiters to retry
        // (and fail with their own error — results stay deterministic).
        let (shared, local, tier, compile_ns) = self.compile(key, func, options)?;
        self.record_compile(compile_ns);
        if tier == Tier::Bytecode {
            if let (Some(disk), SharedArtifact::Bytecode(cf)) = (&self.disk, &shared) {
                if disk.store(&key, cf).is_ok() {
                    self.metrics.disk_stores.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if ticket
            .fulfill(Entry {
                artifact: shared,
                tier,
                compile_ns,
                hits: 0,
            })
            .is_some()
        {
            self.metrics.cache_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok((local, tier, compile_ns, CacheStatus::Miss))
    }

    /// Binds a shared artifact to this worker for execution, reusing the
    /// local instantiation when it still points at the same program.
    fn localize(&mut self, key: CacheKey, shared: &SharedArtifact) -> LocalArtifact {
        match shared {
            SharedArtifact::Bytecode(cf) => LocalArtifact::Bytecode(Arc::clone(cf)),
            SharedArtifact::Native(art) => {
                if let Some(cf) = self.instances.get(&key) {
                    if Arc::ptr_eq(&cf.program, &art.program) {
                        return LocalArtifact::Native(cf.clone());
                    }
                }
                self.adopt_native(key, art.instantiate_hosted(self.engine.clone()))
            }
        }
    }

    /// Caches a hosted instantiation under `key` (bounded; wholesale
    /// clear on overflow — instantiation is two `Arc` bumps, so the
    /// refill cost is trivial).
    fn adopt_native(&mut self, key: CacheKey, cf: CompiledCodeFunction) -> LocalArtifact {
        if self.instances.len() >= self.instance_cap {
            self.instances.clear();
        }
        self.instances.insert(key, cf.clone());
        LocalArtifact::Native(cf)
    }

    fn record_compile(&self, ns: u64) {
        self.metrics.compiles.fetch_add(1, Ordering::Relaxed);
        self.metrics.compile_latency.record(ns);
    }

    /// Compiles `func` per the tier policy. Bytecode-tier failures
    /// (outside the legacy subset, limitation L1) fall through to the
    /// native pipeline.
    fn compile(
        &mut self,
        key: CacheKey,
        func: &Expr,
        options: &CompilerOptions,
    ) -> Result<(SharedArtifact, LocalArtifact, Tier, u64), ServeError> {
        if !matches!(self.tier_policy, TierPolicy::NativeOnly) {
            let start = Instant::now();
            if let Ok(cf) = compile_bytecode(func) {
                let shared = Arc::new(cf);
                return Ok((
                    SharedArtifact::Bytecode(Arc::clone(&shared)),
                    LocalArtifact::Bytecode(shared),
                    Tier::Bytecode,
                    elapsed_ns(start),
                ));
            }
        }
        let (cf, ns) = self.compile_native(func, options)?;
        let shared = SharedArtifact::Native(cf.artifact());
        let local = self.adopt_native(key, cf);
        Ok((shared, local, Tier::Native, ns))
    }

    /// Runs the native pipeline, returning a hosted instantiation.
    fn compile_native(
        &mut self,
        func: &Expr,
        options: &CompilerOptions,
    ) -> Result<(CompiledCodeFunction, u64), ServeError> {
        let compiler = self
            .compilers
            .entry(options.fingerprint())
            .or_insert_with(|| Compiler::new(options.clone()));
        let start = Instant::now();
        let cf = compiler
            .function_compile(func)
            .map_err(|e| ServeError::Compile(e.to_string()))?;
        let ns = elapsed_ns(start);
        Ok((cf.hosted(self.engine.clone()), ns))
    }

    /// Runs the artifact and renders the result as `InputForm` text.
    fn execute(&self, artifact: &LocalArtifact, args: &[Expr]) -> Result<String, RuntimeError> {
        match artifact {
            LocalArtifact::Native(cf) => {
                let out = cf.call_exprs(args)?;
                Ok(out.to_input_form())
            }
            LocalArtifact::Bytecode(cf) => {
                let values: Vec<Value> = args.iter().map(Value::from_expr).collect();
                let out = cf.run_with_engine(&values, &mut self.engine.borrow_mut())?;
                Ok(out.to_expr().to_input_form())
            }
        }
    }
}

fn compile_bytecode(func: &Expr) -> Result<wolfram_bytecode::CompiledFunction, String> {
    let specs = ArgSpec::from_function(func)?;
    let body = func
        .args()
        .get(1)
        .cloned()
        .ok_or_else(|| "function has no body".to_owned())?;
    BytecodeCompiler::new()
        .compile(&specs, &body)
        .map_err(|e| e.to_string())
}
