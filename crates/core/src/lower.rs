//! Lowering MExpr to WIR (§4.3): direct SSA construction, lambda lifting
//! (closure conversion), and automatic `KernelFunction` escapes for
//! functions outside the compiled subset (F9).

use crate::binding::BoundFunction;
use std::collections::HashSet;
use std::sync::Arc;
use wolfram_expr::{Expr, ExprKind};
use wolfram_ir::module::{Callee, Constant, Instr, Operand};
use wolfram_ir::{BlockId, FuncId, FunctionBuilder, ProgramModule};
use wolfram_types::{Type, TypeEnvironment};

/// Lowering failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a bound function into a WIR program module. `public_name` is the
/// user-visible binding (enables self-recursion as in the paper's `cfib`).
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower(
    bound: &BoundFunction,
    public_name: Option<&str>,
    type_env: &TypeEnvironment,
) -> Result<ProgramModule, LowerError> {
    let mut mc = ModuleCtx {
        module: ProgramModule::default(),
        type_env,
        lambda_counter: 0,
        public_name: public_name.map(str::to_owned),
    };
    lower_function(&mut mc, "Main", &bound.params, &bound.body)?;
    Ok(mc.module)
}

struct ModuleCtx<'a> {
    module: ProgramModule,
    type_env: &'a TypeEnvironment,
    lambda_counter: u32,
    public_name: Option<String>,
}

struct FnCtx<'a, 'm> {
    mc: &'m mut ModuleCtx<'a>,
    b: FunctionBuilder,
    /// Names readable in the current scope (parameters and assigned
    /// locals), used for closure capture analysis.
    scope: Vec<String>,
    /// (break target, continue target) per enclosing loop.
    loops: Vec<(BlockId, BlockId)>,
    self_id: FuncId,
    temp_counter: u32,
}

fn lower_function(
    mc: &mut ModuleCtx,
    name: &str,
    params: &[(String, Option<Type>)],
    body: &Expr,
) -> Result<FuncId, LowerError> {
    // Reserve the slot up front so self-recursive calls resolve.
    let self_id = mc
        .module
        .add_function(wolfram_ir::Function::new(name, params.len()));
    let mut b = FunctionBuilder::new(name, params.len());
    b.func.param_names = params.iter().map(|(n, _)| n.clone()).collect();
    let mut scope = Vec::new();
    for (ix, (pname, ty)) in params.iter().enumerate() {
        let v = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: v, index: ix });
        b.write_var(pname, v);
        if let Some(ty) = ty {
            b.func.var_types.insert(v, ty.clone());
        }
        scope.push(pname.clone());
    }
    let mut ctx = FnCtx {
        mc,
        b,
        scope,
        loops: Vec::new(),
        self_id,
        temp_counter: 0,
    };
    let result = ctx.expr(body)?;
    if !ctx.b.is_terminated() {
        ctx.b.ret(result);
    }
    // Unreachable trailing blocks must still satisfy the builder.
    let func = ctx.b.finish();
    mc.module.functions[self_id.0 as usize] = func;
    Ok(self_id)
}

impl FnCtx<'_, '_> {
    fn temp_name(&mut self, base: &str) -> String {
        self.temp_counter += 1;
        format!("${base}{}", self.temp_counter)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError(msg.into()))
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand, LowerError> {
        match e.kind() {
            ExprKind::Integer(v) => Ok(Constant::I64(*v).into()),
            ExprKind::Real(v) => Ok(Constant::F64(*v).into()),
            ExprKind::Complex(re, im) => Ok(Constant::Complex(*re, *im).into()),
            ExprKind::Str(s) => Ok(Constant::Str(Arc::from(&**s)).into()),
            ExprKind::BigInteger(_) => {
                self.err("arbitrary-precision literals are not compilable (use the interpreter)")
            }
            ExprKind::Symbol(s) => self.symbol(s.name(), e),
            ExprKind::Normal(_) => self.normal(e),
        }
    }

    fn symbol(&mut self, name: &str, e: &Expr) -> Result<Operand, LowerError> {
        if let Some(v) = self.b.read_var(name) {
            return Ok(v);
        }
        match name {
            "True" => Ok(Constant::Bool(true).into()),
            "False" => Ok(Constant::Bool(false).into()),
            "Null" => Ok(Constant::Null.into()),
            "Pi" => Ok(Constant::F64(std::f64::consts::PI).into()),
            "E" => Ok(Constant::F64(std::f64::consts::E).into()),
            "GoldenRatio" => Ok(Constant::F64((1.0 + 5f64.sqrt()) / 2.0).into()),
            "I" => Ok(Constant::Complex(0.0, 1.0).into()),
            "Infinity" => Ok(Constant::F64(f64::INFINITY).into()),
            _ => {
                // A declared function used as a *value* becomes an
                // eta-expanded closure (`If[i == 0, Sin, Cos]`, §3 F6).
                if self.mc.type_env.is_declared(name) {
                    let w = self.temp_name("eta");
                    let lambda = Expr::call(
                        "Function",
                        [
                            Expr::list([Expr::sym(&w)]),
                            Expr::call(name, [Expr::sym(&w)]),
                        ],
                    );
                    return self.lift_lambda(&lambda);
                }
                // Free symbols stay symbolic (F8).
                Ok(Constant::Expr(e.clone()).into())
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn normal(&mut self, e: &Expr) -> Result<Operand, LowerError> {
        let head = e.head();
        let args = e.args();
        let head_name = head.as_symbol().map(|s| s.name().to_owned());
        match head_name.as_deref() {
            Some("CompoundExpression") => {
                let mut last: Operand = Constant::Null.into();
                for a in args {
                    if self.b.is_terminated() {
                        break; // dead code after Return/Break/Continue
                    }
                    last = self.expr(a)?;
                }
                Ok(last)
            }
            Some("Set") => self.set(&args[0], &args[1]),
            Some("If") if (2..=3).contains(&args.len()) => self.if_expr(args),
            Some("While") if !args.is_empty() => self.while_expr(args),
            Some("For") if (3..=4).contains(&args.len()) => self.for_expr(args),
            Some("Return") => {
                let v = match args.first() {
                    Some(a) => self.expr(a)?,
                    None => Constant::Null.into(),
                };
                self.b.ret(v);
                Ok(Constant::Null.into())
            }
            Some("Break") if args.is_empty() => {
                let Some(&(brk, _)) = self.loops.last() else {
                    return self.err("Break[] outside of a loop");
                };
                self.b.jump(brk);
                Ok(Constant::Null.into())
            }
            Some("Continue") if args.is_empty() => {
                let Some(&(_, cont)) = self.loops.last() else {
                    return self.err("Continue[] outside of a loop");
                };
                self.b.jump(cont);
                Ok(Constant::Null.into())
            }
            // Short-circuit evaluation: the interpreter's `And`/`Or` are
            // HoldAll, so a deciding left operand must suppress evaluation
            // (and errors) in the operands after it. Desugar to an `If`
            // chain instead of an eager builtin call — the differential
            // fuzzer caught `a && Quotient[1, b] == 0` hard-erroring
            // natively on `a == False, b == 0` where the interpreter and
            // the bytecode VM both return False.
            Some("And") if args.len() >= 2 => {
                let folded = args
                    .iter()
                    .rev()
                    .cloned()
                    .reduce(|acc, a| Expr::call("If", [a, acc, Expr::sym("False")]))
                    .expect("len >= 2");
                self.expr(&folded)
            }
            Some("Or") if args.len() >= 2 => {
                let folded = args
                    .iter()
                    .rev()
                    .cloned()
                    .reduce(|acc, a| Expr::call("If", [a, Expr::sym("True"), acc]))
                    .expect("len >= 2");
                self.expr(&folded)
            }
            Some("List") => self.list(e),
            Some("Part") if args.len() >= 2 => {
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.expr(a)?);
                }
                Ok(self.call_builtin("Part", ops, e))
            }
            Some("Typed") if args.len() == 2 => {
                let op = self.expr(&args[0])?;
                let ty = Type::from_expr(&args[1])
                    .map_err(|te| LowerError(format!("bad Typed annotation: {te}")))?;
                if let Operand::Var(v) = &op {
                    self.b.func.var_types.entry(*v).or_insert(ty);
                }
                Ok(op)
            }
            Some("Function") => self.lift_lambda(e),
            Some("KernelFunction") if args.len() == 1 => {
                // KernelFunction[f] as a value: not representable natively;
                // only KernelFunction[f][args] call syntax is supported.
                self.err("KernelFunction[...] must be applied directly")
            }
            Some("ConstantArray") if args.len() == 2 => {
                let c = self.expr(&args[0])?;
                let spec = &args[1];
                let mut ops = vec![c];
                if spec.has_head("List") {
                    for d in spec.args() {
                        ops.push(self.expr(d)?);
                    }
                } else {
                    ops.push(self.expr(spec)?);
                }
                Ok(self.call_builtin("ConstantArray", ops, e))
            }
            Some("RandomReal") if args.is_empty() => Ok(self.call_builtin("RandomReal", vec![], e)),
            Some(name) => {
                // Call through a local function value?
                if let Some(fv) = self.b.read_var(name) {
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        ops.push(self.expr(a)?);
                    }
                    let Operand::Var(v) = fv else {
                        return self.err(format!("cannot call constant `{name}`"));
                    };
                    let dst = self.b.func.fresh_var();
                    self.b.push(Instr::Call {
                        dst,
                        callee: Callee::Value(v),
                        args: ops,
                    });
                    self.b.func.provenance.insert(dst, e.clone());
                    return Ok(dst.into());
                }
                // Self recursion via the public binding (the paper's cfib).
                let is_self = self.mc.public_name.as_deref() == Some(name);
                if is_self {
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        ops.push(self.expr(a)?);
                    }
                    let dst = self.b.func.fresh_var();
                    let fname = self.mc.module.functions[self.self_id.0 as usize]
                        .name
                        .clone();
                    self.b.push(Instr::Call {
                        dst,
                        callee: Callee::Function {
                            name: Arc::from(fname.as_str()),
                            func: self.self_id,
                        },
                        args: ops,
                    });
                    self.b.func.provenance.insert(dst, e.clone());
                    return Ok(dst.into());
                }
                if self.mc.type_env.is_declared(name) {
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        ops.push(self.expr(a)?);
                    }
                    return Ok(self.call_builtin(name, ops, e));
                }
                // Escape to the interpreter (§4.5 "Escape to Interpreter"):
                // gradual compilation for everything else.
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.expr(a)?);
                }
                let dst = self.b.func.fresh_var();
                self.b.push(Instr::Call {
                    dst,
                    callee: Callee::Kernel(Arc::from(name)),
                    args: ops,
                });
                self.b.func.provenance.insert(dst, e.clone());
                Ok(dst.into())
            }
            None => {
                // Compound head: KernelFunction[f][args] or lambda call.
                if head.has_head("KernelFunction") && head.length() == 1 {
                    let Some(f) = head.args()[0].as_symbol() else {
                        return self.err("KernelFunction expects a symbol");
                    };
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        ops.push(self.expr(a)?);
                    }
                    let dst = self.b.func.fresh_var();
                    self.b.push(Instr::Call {
                        dst,
                        callee: Callee::Kernel(Arc::from(f.name())),
                        args: ops,
                    });
                    self.b.func.provenance.insert(dst, e.clone());
                    return Ok(dst.into());
                }
                // Immediately-applied lambda.
                let fv = self.expr(&head)?;
                let Operand::Var(v) = fv else {
                    return self.err(format!("cannot apply {}", head.to_input_form()));
                };
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.expr(a)?);
                }
                let dst = self.b.func.fresh_var();
                self.b.push(Instr::Call {
                    dst,
                    callee: Callee::Value(v),
                    args: ops,
                });
                self.b.func.provenance.insert(dst, e.clone());
                Ok(dst.into())
            }
        }
    }

    fn call_builtin(&mut self, name: &str, args: Vec<Operand>, prov: &Expr) -> Operand {
        let dst = self.b.func.fresh_var();
        self.b.push(Instr::Call {
            dst,
            callee: Callee::Builtin(Arc::from(name)),
            args,
        });
        self.b.func.provenance.insert(dst, prov.clone());
        dst.into()
    }

    fn list(&mut self, e: &Expr) -> Result<Operand, LowerError> {
        let args = e.args();
        // Literal numeric lists become packed constant arrays (the PrimeQ
        // seed table, §6).
        if args.len() > 8 || (args.len() >= 4 && args.iter().all(|a| a.as_i64().is_some())) {
            if let Some(ints) = args.iter().map(Expr::as_i64).collect::<Option<Vec<i64>>>() {
                return Ok(Constant::I64Array(Arc::from(ints.as_slice())).into());
            }
            if let Some(reals) = args.iter().map(Expr::as_f64).collect::<Option<Vec<f64>>>() {
                return Ok(Constant::F64Array(Arc::from(reals.as_slice())).into());
            }
        }
        if args.is_empty() {
            return self.err("empty lists are not compilable");
        }
        let mut ops = Vec::with_capacity(args.len());
        for a in args {
            ops.push(self.expr(a)?);
        }
        Ok(self.call_builtin("List", ops, e))
    }

    fn set(&mut self, lhs: &Expr, rhs: &Expr) -> Result<Operand, LowerError> {
        if let Some(s) = lhs.as_symbol() {
            let v = self.expr(rhs)?;
            // Pin to a variable so phis have a definition to reference.
            let pinned = match v {
                Operand::Var(var) => Operand::Var(var),
                Operand::Const(c) => {
                    let dst = self.b.func.fresh_var();
                    self.b.push(Instr::LoadConst { dst, value: c });
                    Operand::Var(dst)
                }
            };
            self.b.write_var(s.name(), pinned.clone());
            if !self.scope.contains(&s.name().to_owned()) {
                self.scope.push(s.name().to_owned());
            }
            return Ok(pinned);
        }
        if lhs.has_head("Part") && lhs.length() >= 2 {
            let base = &lhs.args()[0];
            let Some(base_sym) = base.as_symbol() else {
                return self.err("Part assignment requires a variable base");
            };
            let Some(base_op) = self.b.read_var(base_sym.name()) else {
                return self.err(format!("Part assignment to unknown variable {base_sym}"));
            };
            let mut ops = vec![base_op];
            for ix in &lhs.args()[1..] {
                ops.push(self.expr(ix)?);
            }
            let value = self.expr(rhs)?;
            ops.push(value.clone());
            let updated = self.call_builtin("Part$Set", ops, lhs);
            self.b.write_var(base_sym.name(), updated);
            return Ok(value);
        }
        self.err(format!("cannot assign to {}", lhs.to_input_form()))
    }

    fn if_expr(&mut self, args: &[Expr]) -> Result<Operand, LowerError> {
        let cond = self.expr(&args[0])?;
        let then_b = self.b.create_block("then");
        let else_b = self.b.create_block("else");
        let join = self.b.create_block("if-join");
        self.b.branch(cond, then_b, else_b);
        self.b.seal_block(then_b);
        self.b.seal_block(else_b);
        let result = self.temp_name("if");

        self.b.switch_to(then_b);
        let tv = self.expr(&args[1])?;
        if !self.b.is_terminated() {
            self.b.write_var(&result, tv);
            self.b.jump(join);
        }

        self.b.switch_to(else_b);
        let ev = match args.get(2) {
            Some(f) => self.expr(f)?,
            None => Constant::Null.into(),
        };
        if !self.b.is_terminated() {
            self.b.write_var(&result, ev);
            self.b.jump(join);
        }

        self.b.seal_block(join);
        self.b.switch_to(join);
        if self.b.predecessors(join).is_empty() {
            // Both branches returned/broke: the join is unreachable.
            // Terminate it and continue lowering into a fresh unreachable
            // block (terminated by whatever follows, or the final return).
            self.b.ret(Constant::Null);
            let dead = self.b.create_block("dead");
            self.b.seal_block(dead);
            self.b.switch_to(dead);
        }
        Ok(self.b.read_var(&result).unwrap_or(Constant::Null.into()))
    }

    fn while_expr(&mut self, args: &[Expr]) -> Result<Operand, LowerError> {
        let header = self.b.create_block("while-head");
        let body_b = self.b.create_block("while-body");
        let exit = self.b.create_block("while-exit");
        self.b.jump(header);
        self.b.switch_to(header);
        let cond = self.expr(&args[0])?;
        self.b.branch(cond, body_b, exit);
        self.b.seal_block(body_b);

        self.loops.push((exit, header));
        self.b.switch_to(body_b);
        if let Some(body) = args.get(1) {
            self.expr(body)?;
        }
        if !self.b.is_terminated() {
            self.b.jump(header);
        }
        self.loops.pop();
        self.b.seal_block(header);
        self.b.seal_block(exit);
        self.b.switch_to(exit);
        Ok(Constant::Null.into())
    }

    fn for_expr(&mut self, args: &[Expr]) -> Result<Operand, LowerError> {
        self.expr(&args[0])?;
        let header = self.b.create_block("for-head");
        let body_b = self.b.create_block("for-body");
        let incr_b = self.b.create_block("for-incr");
        let exit = self.b.create_block("for-exit");
        self.b.jump(header);
        self.b.switch_to(header);
        let cond = self.expr(&args[1])?;
        self.b.branch(cond, body_b, exit);
        self.b.seal_block(body_b);

        self.loops.push((exit, incr_b));
        self.b.switch_to(body_b);
        if let Some(body) = args.get(3) {
            self.expr(body)?;
        }
        if !self.b.is_terminated() {
            self.b.jump(incr_b);
        }
        self.loops.pop();
        self.b.seal_block(incr_b);
        self.b.switch_to(incr_b);
        self.expr(&args[2])?;
        if !self.b.is_terminated() {
            self.b.jump(header);
        }
        self.b.seal_block(header);
        self.b.seal_block(exit);
        self.b.switch_to(exit);
        Ok(Constant::Null.into())
    }

    /// Lambda lifting with closure conversion (§4.2): free local variables
    /// become captures, prepended to the lifted function's parameters.
    fn lift_lambda(&mut self, lambda: &Expr) -> Result<Operand, LowerError> {
        // The binding pass normalized lambdas to Function[{params}, body].
        if lambda.length() != 2 || !lambda.args()[0].has_head("List") {
            return self.err(format!(
                "unnormalized lambda reached lowering: {}",
                lambda.to_input_form()
            ));
        }
        let params_e = &lambda.args()[0];
        let body = &lambda.args()[1];
        let mut params: Vec<(String, Option<Type>)> = Vec::new();
        let mut own_names = HashSet::new();
        for p in params_e.args() {
            let (name, ty) = if let Some(s) = p.as_symbol() {
                (s.name().to_owned(), None)
            } else if p.has_head("Typed") && p.length() == 2 {
                let Some(s) = p.args()[0].as_symbol() else {
                    return self.err("bad lambda parameter");
                };
                let ty = Type::from_expr(&p.args()[1])
                    .map_err(|te| LowerError(format!("bad Typed annotation: {te}")))?;
                (s.name().to_owned(), Some(ty))
            } else {
                return self.err("bad lambda parameter");
            };
            own_names.insert(name.clone());
            params.push((name, ty));
        }
        // Captures: scope names free in the body.
        let captures: Vec<String> = self
            .scope
            .iter()
            .filter(|n| !own_names.contains(*n) && body.contains_symbol(n))
            .cloned()
            .collect();
        self.mc.lambda_counter += 1;
        let name = format!("Main`lambda{}", self.mc.lambda_counter);
        let mut lifted_params: Vec<(String, Option<Type>)> =
            captures.iter().map(|c| (c.clone(), None)).collect();
        lifted_params.extend(params);
        let func = lower_function(self.mc, &name, &lifted_params, body)?;
        let mut capture_ops = Vec::with_capacity(captures.len());
        for c in &captures {
            let v = self.b.read_var(c).unwrap_or_else(|| Constant::Null.into());
            capture_ops.push(v);
        }
        let dst = self.b.func.fresh_var();
        self.b.push(Instr::MakeClosure {
            dst,
            func: Arc::from(self.mc.module.functions[func.0 as usize].name.as_str()),
            captures: capture_ops,
        });
        self.b.func.provenance.insert(dst, lambda.clone());
        Ok(dst.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::analyze;
    use crate::pipeline::CompilerOptions;

    fn lower_src(src: &str) -> ProgramModule {
        let macros = crate::macros::MacroEnvironment::builtin();
        let expanded = macros.expand(
            &wolfram_expr::parse(src).unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let pm = lower(&bound, None, &env).unwrap();
        for f in &pm.functions {
            wolfram_ir::verify_function(f).unwrap_or_else(|e| panic!("{e}\n{}", f.to_text()));
        }
        pm
    }

    #[test]
    fn straight_line() {
        let pm = lower_src("Function[{Typed[n, \"MachineInteger\"]}, n + 1]");
        let main = pm.main();
        assert_eq!(main.arity, 1);
        let text = main.to_text();
        assert!(text.contains("LoadArgument"), "{text}");
        assert!(text.contains("Call Plus [%0, 1:I64]"), "{text}");
    }

    #[test]
    fn while_loop_structure() {
        let pm = lower_src(
            "Function[{Typed[n, \"MachineInteger\"]}, \
             Module[{i = 0, s = 0}, While[i < n, s = s + i; i = i + 1]; s]]",
        );
        let main = pm.main();
        assert!(main.blocks.len() >= 3, "{}", main.to_text());
        let phis = main
            .instrs()
            .filter(|i| matches!(i, Instr::Phi { .. }))
            .count();
        assert!(phis >= 2, "loop variables need phis:\n{}", main.to_text());
    }

    #[test]
    fn if_expression_value() {
        let pm = lower_src("Function[{Typed[x, \"MachineInteger\"]}, If[x > 0, x, 0 - x]]");
        let text = pm.main().to_text();
        assert!(text.contains("Branch"), "{text}");
        assert!(text.contains("Phi"), "{text}");
    }

    #[test]
    fn part_assignment_threads_tensor() {
        let pm = lower_src("Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]]}, v[[1]] = 9; v]");
        let text = pm.main().to_text();
        assert!(text.contains("Part$Set"), "{text}");
    }

    #[test]
    fn lambda_lifting_with_captures() {
        let pm = lower_src(
            "Function[{Typed[k, \"MachineInteger\"]}, Module[{f = Function[{x}, x + k]}, f[2]]]",
        );
        assert_eq!(pm.functions.len(), 2, "lifted lambda expected");
        let main_text = pm.main().to_text();
        assert!(main_text.contains("MakeClosure"), "{main_text}");
        // The lifted function takes the capture as an extra parameter.
        assert_eq!(pm.functions[1].arity, 2);
    }

    #[test]
    fn kernel_escape_for_unknown_functions() {
        let pm = lower_src("Function[{Typed[x, \"MachineInteger\"]}, NoSuchFunction[x] ]");
        let text = pm.main().to_text();
        assert!(text.contains("KernelFunction[NoSuchFunction]"), "{text}");
    }

    #[test]
    fn explicit_kernel_function() {
        let pm = lower_src("Function[{Typed[x, \"MachineInteger\"]}, KernelFunction[Print][x]]");
        let text = pm.main().to_text();
        assert!(text.contains("KernelFunction[Print]"), "{text}");
    }

    #[test]
    fn constant_arrays_packed() {
        let pm = lower_src("Function[{Typed[i, \"MachineInteger\"]}, {2, 3, 5, 7, 11, 13}[[i]]]");
        let text = pm.main().to_text();
        assert!(text.contains("<6 x I64>"), "{text}");
    }

    #[test]
    fn self_recursion_via_public_name() {
        let macros = crate::macros::MacroEnvironment::builtin();
        let src = "Function[{Typed[n, \"MachineInteger\"]}, If[n < 1, 1, cfib[n-1] + cfib[n-2]]]";
        let expanded = macros.expand(
            &wolfram_expr::parse(src).unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let pm = lower(&bound, Some("cfib"), &env).unwrap();
        let text = pm.main().to_text();
        assert!(text.contains("Call Main ["), "self call expected: {text}");
    }

    #[test]
    fn eta_expansion_of_builtin_values() {
        // If[i == 0, Sin, Cos] from §3 F6.
        let pm = lower_src(
            "Function[{Typed[i, \"MachineInteger\"], Typed[v, \"Real64\"]}, \
             Module[{f = If[i == 0, Sin, Cos]}, f[v]]]",
        );
        assert!(
            pm.functions.len() >= 3,
            "two eta-expanded closures: {}",
            pm.functions.len()
        );
        let text = pm.main().to_text();
        assert!(text.contains("MakeClosure"), "{text}");
    }

    #[test]
    fn early_return() {
        let pm = lower_src("Function[{Typed[x, \"MachineInteger\"]}, If[x < 0, Return[0]]; x]");
        let text = pm.main().to_text();
        assert!(text.matches("Return").count() >= 2, "{text}");
    }

    #[test]
    fn break_and_continue() {
        let pm = lower_src(
            "Function[{Typed[n, \"MachineInteger\"]}, Module[{i = 0}, \
             While[True, If[i > n, Break[]]; i = i + 1]; i]]",
        );
        let text = pm.main().to_text();
        assert!(text.contains("while-exit"), "{text}");
    }
}
