//! Function resolution (§4.5): "For each call instruction, a lookup into
//! the type environment is performed. ... If a function has a monomorphic
//! implementation, then it is inserted into the TWIR. If the function
//! exists polymorphically ..., then it is instantiated with the appropriate
//! type, the function is inserted into the TWIR, and the call instruction
//! is rewritten to the mangled name of the function. A function is inlined
//! at this stage if it has been marked by users to be forcibly inlined."

use crate::infer::{infer, sites_of, Inference};
use crate::stdlib::mangle;
use std::collections::HashMap;
use std::sync::Arc;
use wolfram_ir::module::{Block, BlockId, Callee, Function, InlineValue, Instr, Operand, VarId};
use wolfram_ir::{FuncId, ProgramModule};
use wolfram_types::{FunctionImpl, SolveError, Type, TypeEnvironment};

/// Resolution failure.
#[derive(Debug)]
pub enum ResolveFail {
    /// Inference failed on an instantiated implementation.
    Infer(SolveError),
    /// An instantiated source implementation could not be processed.
    Source(String),
}

impl std::fmt::Display for ResolveFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveFail::Infer(e) => write!(f, "{e}"),
            ResolveFail::Source(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ResolveFail {}

/// Inlining policy (§4.5 / §6: disabling inlining costs ~10× on tight
/// loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlinePolicy {
    /// Inline force-marked and trivial functions (the default).
    Automatic,
    /// Never inline (the ablation mode).
    Never,
    /// Inline everything non-recursive.
    Always,
}

/// Resolves every `Callee::Builtin` call in the module using the inference
/// results, instantiating source implementations on demand, then applies
/// the inlining policy. Iterates inference/resolution until no new
/// instantiations appear.
///
/// # Errors
///
/// See [`ResolveFail`].
pub fn resolve_module(
    pm: &mut ProgramModule,
    env: &TypeEnvironment,
    first: Inference,
    policy: InlinePolicy,
) -> Result<(), ResolveFail> {
    let mut inference = first;
    for _round in 0..16 {
        let added = resolve_pass(pm, env, &inference)?;
        if added == 0 {
            break;
        }
        inference = infer(pm, env).map_err(ResolveFail::Infer)?;
    }
    if policy != InlinePolicy::Never {
        inline_pass(pm, policy);
    }
    // Mark triviality for the dump header.
    for f in &mut pm.functions {
        f.info.is_trivial = f.blocks.len() == 1 && f.instr_count() <= 6;
    }
    Ok(())
}

/// One rewrite pass. Returns the number of newly instantiated functions.
fn resolve_pass(
    pm: &mut ProgramModule,
    env: &TypeEnvironment,
    inference: &Inference,
) -> Result<usize, ResolveFail> {
    let mut added = 0usize;
    let mut func_ix = 0usize;
    while func_ix < pm.functions.len() {
        let sites = sites_of(pm, FuncId(func_ix as u32));
        for (site, bix, iix) in sites {
            let Some(resolved) = inference.calls.get(&site) else {
                continue;
            };
            let instr = pm.functions[func_ix].blocks[bix].instrs[iix].clone();
            let Instr::Call {
                dst,
                callee: Callee::Builtin(name),
                args,
            } = instr
            else {
                continue;
            };
            let new_callee = match &resolved.implementation {
                FunctionImpl::Primitive(base) => {
                    Callee::Primitive(Arc::from(mangle(base, &resolved.params).as_str()))
                }
                FunctionImpl::Kernel => Callee::Kernel(Arc::from(&*name)),
                FunctionImpl::Source(body) => {
                    let mangled = mangle(&name, &resolved.params);
                    let func = match pm.find(&mangled) {
                        Some(id) => id,
                        None => {
                            let id = instantiate_source(
                                pm,
                                env,
                                &mangled,
                                body,
                                &resolved.params,
                                resolved.inline_always,
                            )?;
                            added += 1;
                            id
                        }
                    };
                    Callee::Function {
                        name: Arc::from(mangled.as_str()),
                        func,
                    }
                }
            };
            pm.functions[func_ix].blocks[bix].instrs[iix] = Instr::Call {
                dst,
                callee: new_callee,
                args,
            };
        }
        func_ix += 1;
    }
    Ok(added)
}

/// Compiles a Wolfram-source implementation at concrete parameter types and
/// appends it to the module under its mangled name.
fn instantiate_source(
    pm: &mut ProgramModule,
    env: &TypeEnvironment,
    mangled: &str,
    body: &wolfram_expr::Expr,
    params: &[Type],
    inline_always: bool,
) -> Result<FuncId, ResolveFail> {
    let bound = crate::binding::analyze(body)
        .map_err(|e| ResolveFail::Source(format!("source impl {mangled}: {e}")))?;
    if bound.params.len() != params.len() {
        return Err(ResolveFail::Source(format!(
            "source impl {mangled}: arity mismatch ({} vs {})",
            bound.params.len(),
            params.len()
        )));
    }
    // Pin the instantiated parameter types.
    let typed_params: Vec<(String, Option<Type>)> = bound
        .params
        .iter()
        .zip(params)
        .map(|((name, _), ty)| (name.clone(), Some(ty.clone())))
        .collect();
    let typed = crate::binding::BoundFunction {
        params: typed_params,
        body: bound.body,
        escaped: bound.escaped,
    };
    let sub = crate::lower::lower(&typed, None, env)
        .map_err(|e| ResolveFail::Source(format!("source impl {mangled}: {e}")))?;
    if sub.functions.len() != 1 {
        return Err(ResolveFail::Source(format!(
            "source impl {mangled}: nested lambdas in stdlib sources are unsupported"
        )));
    }
    let mut f = sub.functions.into_iter().next().expect("one function");
    f.name = mangled.to_owned();
    f.info.inline_value = if inline_always {
        InlineValue::Always
    } else {
        InlineValue::Automatic
    };
    Ok(pm.add_function(f))
}

// ---------------------------------------------------------------------
// Inlining.
// ---------------------------------------------------------------------

fn should_inline(
    caller_ix: usize,
    callee_ix: usize,
    callee: &Function,
    policy: InlinePolicy,
) -> bool {
    if caller_ix == callee_ix || is_recursive(callee, callee_ix) {
        return false;
    }
    match policy {
        InlinePolicy::Never => false,
        InlinePolicy::Always => true,
        InlinePolicy::Automatic => {
            callee.info.inline_value == InlineValue::Always
                || (callee.blocks.len() == 1 && callee.instr_count() <= 12)
        }
    }
}

fn is_recursive(f: &Function, own_ix: usize) -> bool {
    f.instrs().any(|i| {
        matches!(i, Instr::Call { callee: Callee::Function { func, .. }, .. }
            if func.0 as usize == own_ix)
    })
}

fn inline_pass(pm: &mut ProgramModule, policy: InlinePolicy) {
    for caller_ix in 0..pm.functions.len() {
        let mut budget = 64usize;
        'retry: while budget > 0 {
            budget -= 1;
            let caller = &pm.functions[caller_ix];
            for bix in 0..caller.blocks.len() {
                for iix in 0..caller.blocks[bix].instrs.len() {
                    if let Instr::Call {
                        callee: Callee::Function { func, .. },
                        ..
                    } = &caller.blocks[bix].instrs[iix]
                    {
                        let callee_ix = func.0 as usize;
                        let callee = &pm.functions[callee_ix];
                        if should_inline(caller_ix, callee_ix, callee, policy) {
                            let callee = callee.clone();
                            inline_one(&mut pm.functions[caller_ix], bix, iix, &callee);
                            continue 'retry;
                        }
                    }
                }
            }
            break;
        }
    }
}

/// Splices `callee` into `caller` at the call site `(bix, iix)`.
fn inline_one(caller: &mut Function, bix: usize, iix: usize, callee: &Function) {
    let var_off = caller.next_var;
    caller.next_var += callee.next_var;
    let block_off = caller.blocks.len() as u32;
    let remap_var = |v: VarId| VarId(v.0 + var_off);
    let remap_block = |b: BlockId| BlockId(b.0 + block_off);
    let cont_block = BlockId(block_off + callee.blocks.len() as u32);

    // Take the call instruction and the tail of the block.
    let tail: Vec<Instr> = caller.blocks[bix].instrs.split_off(iix + 1);
    let call = caller.blocks[bix].instrs.pop().expect("call instruction");
    let Instr::Call { dst, args, .. } = call else {
        unreachable!("inline target is a call")
    };

    // Argument binding: map parameter index -> operand.
    let mut returns: Vec<(BlockId, Operand)> = Vec::new();
    let mut new_blocks: Vec<Block> = Vec::new();
    for (cbix, cblock) in callee.blocks.iter().enumerate() {
        let mut instrs = Vec::with_capacity(cblock.instrs.len());
        for ci in &cblock.instrs {
            let mut ni = ci.clone();
            // Remap uses and defs.
            ni.map_uses(&mut |v| remap_var(v));
            match &mut ni {
                Instr::LoadArgument { dst, index } => {
                    let new_dst = remap_var(*dst);
                    let op = args[*index].clone();
                    instrs.push(match op {
                        Operand::Var(src) => Instr::Copy { dst: new_dst, src },
                        Operand::Const(c) => Instr::LoadConst {
                            dst: new_dst,
                            value: c,
                        },
                    });
                    continue;
                }
                Instr::Return { value } => {
                    returns.push((BlockId(block_off + cbix as u32), value.clone()));
                    instrs.push(Instr::Jump { target: cont_block });
                    continue;
                }
                Instr::LoadConst { dst, .. }
                | Instr::Copy { dst, .. }
                | Instr::Call { dst, .. }
                | Instr::MakeClosure { dst, .. }
                | Instr::Phi { dst, .. } => *dst = remap_var(*dst),
                Instr::MemoryAcquire { var } | Instr::MemoryRelease { var } => {
                    // map_uses already remapped these.
                    let _ = var;
                }
                _ => {}
            }
            match &mut ni {
                Instr::Jump { target } => *target = remap_block(*target),
                Instr::Branch {
                    then_block,
                    else_block,
                    ..
                } => {
                    *then_block = remap_block(*then_block);
                    *else_block = remap_block(*else_block);
                }
                Instr::Phi { incoming, .. } => {
                    for (p, _) in incoming.iter_mut() {
                        *p = remap_block(*p);
                    }
                }
                _ => {}
            }
            instrs.push(ni);
        }
        new_blocks.push(Block {
            label: format!("inline-{}-{}", callee.name, cblock.label),
            instrs,
        });
    }

    // Carry inferred types and provenance across.
    for (v, t) in &callee.var_types {
        caller.var_types.insert(remap_var(*v), t.clone());
    }
    for (v, e) in &callee.provenance {
        caller.provenance.insert(remap_var(*v), e.clone());
    }

    // The call block now jumps into the inlined entry.
    caller.blocks[bix].instrs.push(Instr::Jump {
        target: remap_block(callee.entry),
    });

    caller.blocks.extend(new_blocks);

    // Continuation block: receive the return value, then the original tail.
    let mut cont_instrs = Vec::with_capacity(tail.len() + 1);
    match returns.len() {
        0 => {
            // Callee never returns (infinite loop): keep a placeholder def
            // so uses of dst stay defined; the block is unreachable.
            cont_instrs.push(Instr::LoadConst {
                dst,
                value: wolfram_ir::Constant::Null,
            });
        }
        1 => {
            let (_, op) = returns.into_iter().next().expect("one return");
            cont_instrs.push(match op {
                Operand::Var(src) => Instr::Copy { dst, src },
                Operand::Const(c) => Instr::LoadConst { dst, value: c },
            });
        }
        _ => {
            cont_instrs.push(Instr::Phi {
                dst,
                incoming: returns,
            });
        }
    }
    cont_instrs.extend(tail);
    caller.blocks.push(Block {
        label: "inline-cont".into(),
        instrs: cont_instrs,
    });

    // Phis that named the split block as predecessor now come from cont.
    let old_pred = BlockId(bix as u32);
    for b in 0..caller.blocks.len() {
        if b == bix {
            continue;
        }
        for i in caller.blocks[b].instrs.iter_mut() {
            if let Instr::Phi { incoming, .. } = i {
                for (p, _) in incoming.iter_mut() {
                    if *p == old_pred {
                        *p = cont_block;
                    }
                }
            }
        }
    }
}

/// Counts remaining unresolved builtin calls (should be zero post-resolve).
pub fn unresolved_builtins(pm: &ProgramModule) -> usize {
    pm.functions
        .iter()
        .flat_map(Function::instrs)
        .filter(|i| {
            matches!(
                i,
                Instr::Call {
                    callee: Callee::Builtin(_),
                    ..
                }
            )
        })
        .count()
}

/// Builds a name -> index map used by codegen closure resolution.
pub fn function_indices(pm: &ProgramModule) -> HashMap<String, FuncId> {
    pm.functions
        .iter()
        .enumerate()
        .map(|(ix, f)| (f.name.clone(), FuncId(ix as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::analyze;
    use crate::macros::MacroEnvironment;
    use crate::pipeline::CompilerOptions;

    fn resolved(src: &str, policy: InlinePolicy) -> ProgramModule {
        let macros = MacroEnvironment::builtin();
        let expanded = macros.expand(
            &wolfram_expr::parse(src).unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let mut pm = crate::lower::lower(&bound, None, &env).unwrap();
        let inference = infer(&mut pm, &env).unwrap();
        resolve_module(&mut pm, &env, inference, policy).unwrap();
        for f in &pm.functions {
            wolfram_ir::verify_function(f).unwrap_or_else(|e| panic!("{e}\n{}", f.to_text()));
        }
        pm
    }

    #[test]
    fn primitive_mangling() {
        let pm = resolved(
            "Function[{Typed[n, \"MachineInteger\"]}, n + 1]",
            InlinePolicy::Automatic,
        );
        let text = pm.main().to_text();
        assert!(
            text.contains("checked_binary_plus$Integer64$Integer64"),
            "{text}"
        );
        assert_eq!(unresolved_builtins(&pm), 0);
    }

    #[test]
    fn real_overload_selected() {
        let pm = resolved(
            "Function[{Typed[x, \"Real64\"]}, x + 1]",
            InlinePolicy::Automatic,
        );
        let text = pm.main().to_text();
        assert!(text.contains("checked_binary_plus$Real64$Real64"), "{text}");
    }

    #[test]
    fn source_impl_instantiated_and_inlined() {
        // EvenQ is a source implementation marked inline-always.
        let pm = resolved(
            "Function[{Typed[n, \"MachineInteger\"]}, EvenQ[n]]",
            InlinePolicy::Automatic,
        );
        let text = pm.main().to_text();
        // Inlined: the Mod primitive appears directly in Main.
        assert!(text.contains("checked_binary_mod"), "{text}");
        assert!(!text.contains("Call EvenQ$"), "{text}");
    }

    #[test]
    fn inline_never_keeps_calls() {
        let pm = resolved(
            "Function[{Typed[n, \"MachineInteger\"]}, EvenQ[n]]",
            InlinePolicy::Never,
        );
        let text = pm.main().to_text();
        assert!(text.contains("Call EvenQ$Integer64"), "{text}");
        // The instantiation exists as its own function module.
        assert!(pm.find("EvenQ$Integer64").is_some());
    }

    #[test]
    fn recursive_functions_not_inlined() {
        let macros = MacroEnvironment::builtin();
        let src = "Function[{Typed[n, \"MachineInteger\"]}, If[n < 1, 1, cfib[n-1] + cfib[n-2]]]";
        let expanded = macros.expand(
            &wolfram_expr::parse(src).unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let mut pm = crate::lower::lower(&bound, Some("cfib"), &env).unwrap();
        let inference = infer(&mut pm, &env).unwrap();
        resolve_module(&mut pm, &env, inference, InlinePolicy::Always).unwrap();
        let text = pm.main().to_text();
        assert!(text.contains("Call Main"), "self calls stay: {text}");
    }

    #[test]
    fn two_instantiations_of_same_source() {
        let env = {
            let mut env = crate::stdlib::builtin_type_environment();
            // A polymorphic source Min (the paper's §4.4 example).
            env.declare_function(
                "MyMin",
                Type::from_expr(
                    &wolfram_expr::parse(
                        "TypeForAll[{\"a\"}, {Element[\"a\", \"Ordered\"]}, {\"a\", \"a\"} -> \"a\"]",
                    )
                    .unwrap(),
                )
                .unwrap(),
                FunctionImpl::Source(
                    wolfram_expr::parse("Function[{e1, e2}, If[e1 < e2, e1, e2]]").unwrap(),
                ),
            );
            env
        };
        let macros = MacroEnvironment::builtin();
        let src = "Function[{Typed[i, \"MachineInteger\"], Typed[x, \"Real64\"]}, \
                   MyMin[i, 2] + Floor[MyMin[x, 1.5]]]";
        let expanded = macros.expand(
            &wolfram_expr::parse(src).unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let mut pm = crate::lower::lower(&bound, None, &env).unwrap();
        let inference = infer(&mut pm, &env).unwrap();
        resolve_module(&mut pm, &env, inference, InlinePolicy::Never).unwrap();
        assert!(
            pm.find("MyMin$Integer64$Integer64").is_some(),
            "int instantiation"
        );
        assert!(
            pm.find("MyMin$Real64$Real64").is_some(),
            "real instantiation"
        );
    }
}
