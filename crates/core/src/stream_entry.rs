//! The streaming entry fast path: validate the calling convention once
//! per stream, not once per record.
//!
//! [`CompiledCodeFunction::call`] re-derives the register bank for every
//! parameter type on every call (string-comparing atomic type names),
//! re-borrows its shared machine through a `RefCell`, clones the abort
//! signal, and cycles a frame through the machine pool. None of that work
//! depends on the record — only on the function's signature, which a
//! stream fixes up front. [`StreamCaller`] hoists it all to construction
//! time: parameter types are compiled into a [`ParamPlan`] decode table,
//! the machine and abort signal are bound once, and every call reuses one
//! dedicated frame via [`Machine::call_streaming`] plus one marshaling
//! buffer.
//!
//! Semantics are deliberately bit-identical to instantiating the artifact
//! and calling it once per record in standalone mode: the decode table
//! mirrors `unbox_value`'s match structure case for case (including the
//! absence of a rank check on direct tensor values and the full
//! expression-path checks for `Value::Expr` arguments), and the frame
//! reset zeroes register banks exactly as pool reuse does. The
//! equivalence oracle in `wolfram-stream` asserts this across tiers.

use wolfram_codegen::lower::result_to_value;
use wolfram_codegen::{ArgVal, Bank, CallSession, Machine, NativeProgram};
use wolfram_runtime::{AbortSignal, RuntimeError, Value};
use wolfram_types::Type;

use crate::engine::{CompiledArtifact, CompiledCodeFunction};

use std::sync::Arc;

/// A per-parameter decode plan, precomputed from the parameter type.
///
/// Each variant captures everything `unbox_value` would re-derive from
/// the `Type` on every call; the type itself is kept only for the
/// expression slow path (symbolic arguments), which needs the full
/// boxing rules.
enum PlanKind {
    /// Scalar/value parameter: decode through a precomputed register bank.
    Bank(Bank),
    /// `Arrow` (function-typed) parameter: function values pass through.
    Arrow,
    /// `Tensor[elem, rank?]` parameter: precomputed element promotion and
    /// element-type check for direct tensor values.
    Tensor {
        promote_real: bool,
        elem: Option<Arc<str>>,
    },
}

struct ParamPlan {
    ty: Type,
    kind: PlanKind,
}

impl ParamPlan {
    fn new(ty: &Type) -> Self {
        let kind = match ty {
            Type::Arrow { .. } => PlanKind::Arrow,
            Type::Constructor { name, args } if &**name == "Tensor" => {
                let elem = match args.first() {
                    Some(Type::Atomic(n)) => Some(n.clone()),
                    _ => None,
                };
                PlanKind::Tensor {
                    promote_real: elem.as_deref() == Some("Real64"),
                    elem,
                }
            }
            Type::Atomic(n) => PlanKind::Bank(match &**n {
                "Integer64" | "Integer32" | "Integer16" | "Integer8" | "Boolean" => Bank::I,
                "Real64" | "Real32" => Bank::F,
                "ComplexReal64" => Bank::C,
                _ => Bank::V,
            }),
            _ => PlanKind::Bank(Bank::V),
        };
        ParamPlan {
            ty: ty.clone(),
            kind,
        }
    }
}

/// Decodes one record field against its precomputed plan. This mirrors
/// `CompiledCodeFunction::unbox_value` arm for arm; `cf` is needed only
/// for the `Value::Expr` slow path.
fn decode(cf: &CompiledCodeFunction, plan: &ParamPlan, v: &Value) -> Result<ArgVal, RuntimeError> {
    match (v, &plan.kind) {
        (Value::Function(_), PlanKind::Arrow) => Ok(ArgVal::V(v.clone())),
        (Value::Tensor(t), PlanKind::Tensor { promote_real, elem }) => {
            let t = if *promote_real {
                t.to_f64_tensor()
            } else {
                t.clone()
            };
            if let Some(n) = elem {
                if t.data().element_type() != &**n {
                    return Err(RuntimeError::Type(format!(
                        "{} tensor does not match {}",
                        t.data().element_type(),
                        plan.ty
                    )));
                }
            }
            Ok(ArgVal::V(Value::Tensor(t)))
        }
        (Value::Expr(e), _) => cf.unbox(e, &plan.ty),
        (_, PlanKind::Bank(bank)) => ArgVal::from_value(v, *bank),
        // Non-tensor value against a tensor type, or non-function value
        // against an arrow type: `unbox_value` falls through to the bank
        // branch, which derives `Bank::V` for both constructor shapes.
        _ => ArgVal::from_value(v, Bank::V),
    }
}

/// A compile-once, call-millions entry point over a [`CompiledArtifact`].
///
/// Owns a standalone machine, a dedicated reusable call frame
/// ([`CallSession`]), a reusable marshaling buffer, and the per-parameter
/// decode table. Each worker in a stream holds its own `StreamCaller`
/// (the type is deliberately single-threaded; the artifact it was built
/// from is the `Send + Sync` piece).
pub struct StreamCaller {
    cf: CompiledCodeFunction,
    plans: Vec<ParamPlan>,
    ret_bool: bool,
    machine: Machine,
    session: CallSession,
    buf: Vec<ArgVal>,
}

impl StreamCaller {
    /// Binds `artifact` for streaming: validates the signature and builds
    /// the decode table once.
    pub fn new(artifact: &CompiledArtifact) -> Self {
        let cf = artifact.instantiate();
        let plans = cf.param_types.iter().map(ParamPlan::new).collect();
        let ret_bool = matches!(&cf.return_type, Type::Atomic(n) if &**n == "Boolean");
        let mut machine = Machine::standalone();
        machine.abort = cf.abort.clone();
        StreamCaller {
            cf,
            plans,
            ret_bool,
            machine,
            session: CallSession::new(),
            buf: Vec::new(),
        }
    }

    /// Number of parameters (record fields per event).
    pub fn arity(&self) -> usize {
        self.plans.len()
    }

    /// The abort signal checked by compiled code; trigger it to stop a
    /// record mid-execution (shutdown, deadlines).
    pub fn abort_signal(&self) -> &AbortSignal {
        &self.cf.abort
    }

    /// Applies the compiled function to one record.
    ///
    /// # Errors
    ///
    /// Exactly the errors standalone [`CompiledCodeFunction::call`] would
    /// produce for the same arguments: type mismatches, numeric
    /// exceptions, aborts. An error leaves the caller reusable — the
    /// session frame is unwound with balanced refcount accounting.
    pub fn call(&mut self, args: &[Value]) -> Result<Value, RuntimeError> {
        if args.len() != self.plans.len() {
            return Err(RuntimeError::Type(format!(
                "expected {} arguments, got {}",
                self.plans.len(),
                args.len()
            )));
        }
        self.buf.clear();
        for (v, plan) in args.iter().zip(&self.plans) {
            self.buf.push(decode(&self.cf, plan, v)?);
        }
        let out = self.machine.call_streaming(
            &self.cf.program,
            0,
            &mut self.session,
            &mut self.buf,
            None,
        )?;
        Ok(result_to_value(out, &self.cf.return_type))
    }

    /// The executable program (for introspection in benches).
    pub fn program(&self) -> &NativeProgram {
        &self.cf.program
    }

    /// Whether the return type is `Boolean` (the only type that changes
    /// value repacking; exposed for tests).
    pub fn returns_boolean(&self) -> bool {
        self.ret_bool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiler;
    use wolfram_expr::Expr;

    fn artifact(src: &str) -> CompiledArtifact {
        Compiler::default()
            .function_compile_src(src)
            .unwrap()
            .artifact()
    }

    #[test]
    fn streaming_calls_match_one_shot() {
        let art = artifact("Function[{Typed[n, \"MachineInteger\"]}, 3*n + 7]");
        let mut sc = StreamCaller::new(&art);
        for n in [0i64, 1, -5, 1_000_000] {
            let streamed = sc.call(&[Value::I64(n)]).unwrap();
            let oneshot = art.instantiate().call(&[Value::I64(n)]).unwrap();
            assert_eq!(streamed, oneshot);
        }
    }

    #[test]
    fn frame_reuse_is_recorded() {
        wolfram_runtime::memory::reset_stats();
        let art = artifact("Function[{Typed[n, \"MachineInteger\"]}, n*n]");
        let mut sc = StreamCaller::new(&art);
        for n in 0..10 {
            sc.call(&[Value::I64(n)]).unwrap();
        }
        let stats = wolfram_runtime::memory::stats();
        assert_eq!(stats.frame_misses, 1, "{stats:?}");
        assert_eq!(stats.frame_resets, 9, "{stats:?}");
    }

    #[test]
    fn errors_do_not_poison_the_session() {
        let art = artifact("Function[{Typed[n, \"MachineInteger\"]}, n*n]");
        let mut sc = StreamCaller::new(&art);
        // Thread-local counters are per-test-thread, so the balance of
        // exactly this call sequence is observable here.
        wolfram_runtime::memory::reset_stats();
        assert!(sc.call(&[Value::I64(i64::MAX)]).is_err());
        assert!(sc.call(&[Value::Str(Arc::new("x".into()))]).is_err());
        assert_eq!(sc.call(&[Value::I64(9)]).unwrap(), Value::I64(81));
        let st = wolfram_runtime::memory::stats();
        assert!(st.balanced(), "aborted records must release: {st:?}");
        assert!(st.frame_resets >= 1, "session frame survived the errors");
    }

    #[test]
    fn tensor_and_expr_arguments_decode() {
        let art = artifact("Function[{Typed[v, \"Tensor\"[\"Real64\", 1]]}, v[[1]] + v[[-1]]]");
        let mut sc = StreamCaller::new(&art);
        // Direct tensor value: integer data promotes to the real element
        // type, as in unbox_value.
        let t = Value::Tensor(wolfram_runtime::Tensor::from_i64(vec![1, 2, 3]));
        assert_eq!(sc.call(&[t]).unwrap(), Value::F64(4.0));
        // Symbolic route: a list expression goes through the full unboxer.
        let e = Value::Expr(wolfram_expr::parse("{1.5, 2.0, 3.5}").unwrap());
        assert_eq!(sc.call(&[e]).unwrap(), Value::F64(5.0));
        // Mismatched expression stays an error.
        let bad = Value::Expr(Expr::string("nope"));
        assert!(sc.call(&[bad]).is_err());
    }
}
