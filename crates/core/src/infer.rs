//! Type inference over WIR (§4.4): constraint generation in a traversal of
//! the IR, then the constraint-graph solve, producing a TWIR.
//!
//! "It is enough to specify the input type arguments to a function. The
//! types of all other variables within the function are inferred."

use std::collections::HashMap;
use wolfram_ir::module::{Callee, Constant, Instr, Operand, VarId};
use wolfram_ir::{FuncId, ProgramModule};
use wolfram_types::env::ResolvedCall;
use wolfram_types::{solve, Constraint, SolveError, Subst, Type, TypeEnvironment, TypeVar};

/// The inference result: variable types are written into the module; call
/// resolutions are keyed by (function, site).
#[derive(Debug)]
pub struct Inference {
    /// Chosen overloads per call site (see [`site_key`]).
    pub calls: HashMap<usize, ResolvedCall>,
}

/// Encodes a stable call-site key: function index and the running
/// instruction number within it.
pub fn site_key(func: usize, instr_counter: usize) -> usize {
    func * 1_000_000 + instr_counter
}

/// Infers types for every function in the module (jointly — lifted lambdas
/// constrain and are constrained by their use sites).
///
/// # Errors
///
/// Propagates [`SolveError`]s (mismatches, unresolvable sites,
/// ambiguities).
pub fn infer(pm: &mut ProgramModule, env: &TypeEnvironment) -> Result<Inference, SolveError> {
    // Global type-variable space: per-function offsets, plus one return
    // variable per function at the end.
    let mut offsets = Vec::with_capacity(pm.functions.len());
    let mut next = 0u32;
    for f in &pm.functions {
        offsets.push(next);
        next += f.next_var;
    }
    let ret_base = next;
    let tv = |fix: usize, v: VarId| -> Type { Type::Var(TypeVar(offsets[fix] + v.0)) };
    let ret_var = |fix: usize| -> Type { Type::Var(TypeVar(ret_base + fix as u32)) };

    // Parameter variables per function (for closure/self-call signatures).
    let mut param_vars: Vec<Vec<VarId>> = Vec::new();
    for f in &pm.functions {
        let mut params = vec![VarId(0); f.arity];
        for i in f.instrs() {
            if let Instr::LoadArgument { dst, index } = i {
                params[*index] = *dst;
            }
        }
        param_vars.push(params);
    }
    let func_by_name: HashMap<String, usize> = pm
        .functions
        .iter()
        .enumerate()
        .map(|(ix, f)| (f.name.clone(), ix))
        .collect();

    let mut subst = Subst::new();
    subst.reserve(ret_base + pm.functions.len() as u32);
    let mut constraints: Vec<Constraint> = Vec::new();

    let operand_ty = |fix: usize, o: &Operand, subst: &mut Subst| -> Type {
        match o {
            Operand::Var(v) => tv(fix, *v),
            Operand::Const(Constant::Null) => subst.fresh(),
            Operand::Const(c) => c.ty(),
        }
    };

    for (fix, f) in pm.functions.iter().enumerate() {
        // Pre-annotated variables (Typed parameters and expressions).
        for (v, ty) in &f.var_types {
            constraints.push(Constraint::Equality {
                a: tv(fix, *v),
                b: ty.clone(),
                origin: format!("{}: annotation on %{}", f.name, v.0),
            });
        }
        let mut counter = 0usize;
        for b in f.block_ids() {
            for i in &f.block(b).instrs {
                counter += 1;
                let origin = |what: &str| format!("{}: {what}", f.name);
                match i {
                    Instr::LoadConst { dst, value } => {
                        let ty = match value {
                            Constant::Null => subst.fresh(),
                            other => other.ty(),
                        };
                        constraints.push(Constraint::Equality {
                            a: tv(fix, *dst),
                            b: ty,
                            origin: origin("constant"),
                        });
                    }
                    Instr::Copy { dst, src } => {
                        constraints.push(Constraint::Equality {
                            a: tv(fix, *dst),
                            b: tv(fix, *src),
                            origin: origin("copy"),
                        });
                    }
                    Instr::Phi { dst, incoming } => {
                        for (_, o) in incoming {
                            constraints.push(Constraint::Equality {
                                a: tv(fix, *dst),
                                b: operand_ty(fix, o, &mut subst),
                                origin: origin("phi"),
                            });
                        }
                    }
                    Instr::Call { dst, callee, args } => {
                        let arg_tys: Vec<Type> = args
                            .iter()
                            .map(|a| operand_ty(fix, a, &mut subst))
                            .collect();
                        match callee {
                            Callee::Builtin(name) => {
                                constraints.push(Constraint::Call {
                                    site: site_key(fix, counter),
                                    name: name.to_string(),
                                    args: arg_tys,
                                    ret: tv(fix, *dst),
                                    origin: origin(&format!(
                                        "call to {name} ({})",
                                        f.provenance
                                            .get(dst)
                                            .map(|e| e.to_input_form())
                                            .unwrap_or_default()
                                    )),
                                });
                            }
                            Callee::Value(v) => {
                                constraints.push(Constraint::Equality {
                                    a: tv(fix, *v),
                                    b: Type::arrow(arg_tys, tv(fix, *dst)),
                                    origin: origin("indirect call"),
                                });
                            }
                            Callee::Function { func, .. } => {
                                let callee_ix = func.0 as usize;
                                for (arg_ty, pv) in arg_tys.iter().zip(&param_vars[callee_ix]) {
                                    constraints.push(Constraint::Equality {
                                        a: arg_ty.clone(),
                                        b: tv(callee_ix, *pv),
                                        origin: origin("recursive call argument"),
                                    });
                                }
                                constraints.push(Constraint::Equality {
                                    a: tv(fix, *dst),
                                    b: ret_var(callee_ix),
                                    origin: origin("recursive call result"),
                                });
                            }
                            Callee::Kernel(_) => {
                                constraints.push(Constraint::Equality {
                                    a: tv(fix, *dst),
                                    b: Type::expression(),
                                    origin: origin("kernel escape"),
                                });
                                // Kernel arguments box anything: leave the
                                // argument types unconstrained but pin any
                                // that stay free to Expression afterwards.
                            }
                            Callee::Primitive(_) => {
                                // Pre-resolved calls appear only after
                                // resolution; nothing to infer.
                            }
                        }
                    }
                    Instr::MakeClosure {
                        dst,
                        func,
                        captures,
                    } => {
                        let Some(&callee_ix) = func_by_name.get(&**func) else {
                            continue;
                        };
                        let n_caps = captures.len();
                        for (cap, pv) in captures.iter().zip(&param_vars[callee_ix]) {
                            constraints.push(Constraint::Equality {
                                a: operand_ty(fix, cap, &mut subst),
                                b: tv(callee_ix, *pv),
                                origin: origin("closure capture"),
                            });
                        }
                        let visible: Vec<Type> = param_vars[callee_ix][n_caps..]
                            .iter()
                            .map(|pv| tv(callee_ix, *pv))
                            .collect();
                        constraints.push(Constraint::Equality {
                            a: tv(fix, *dst),
                            b: Type::arrow(visible, ret_var(callee_ix)),
                            origin: origin("closure type"),
                        });
                    }
                    Instr::Branch { cond, .. } => {
                        constraints.push(Constraint::Equality {
                            a: operand_ty(fix, cond, &mut subst),
                            b: Type::boolean(),
                            origin: origin("branch condition"),
                        });
                    }
                    Instr::Return { value } => {
                        constraints.push(Constraint::Equality {
                            a: ret_var(fix),
                            b: operand_ty(fix, value, &mut subst),
                            origin: origin("return"),
                        });
                    }
                    _ => {}
                }
            }
        }
    }

    let solution = solve(constraints, env, subst)?;

    // Write the inferred types back: the WIR becomes a TWIR (§4.5).
    for (fix, f) in pm.functions.iter_mut().enumerate() {
        let mut types: HashMap<VarId, Type> = HashMap::new();
        for b in 0..f.blocks.len() {
            for i in &f.blocks[b].instrs {
                if let Some(d) = i.def() {
                    let resolved = solution.subst.apply(&tv(fix, d));
                    // Unused leftovers (dead Nulls) default to Void.
                    let resolved = if resolved.is_concrete() {
                        resolved
                    } else {
                        Type::void()
                    };
                    types.insert(d, resolved);
                }
            }
        }
        f.var_types = types;
        let ret = solution.subst.apply(&ret_var(fix));
        f.return_type = Some(if ret.is_concrete() { ret } else { Type::void() });
    }
    Ok(Inference {
        calls: solution.calls,
    })
}

/// Recomputes the site keys in the same order the constraint generator
/// used, yielding `(site, block index, instruction index)` triples for a
/// function. Resolution walks this to rewrite calls in place.
pub fn sites_of(pm: &ProgramModule, func: FuncId) -> Vec<(usize, usize, usize)> {
    let f = pm.function(func);
    let mut out = Vec::new();
    let mut counter = 0usize;
    for (bix, block) in f.blocks.iter().enumerate() {
        for (iix, _) in block.instrs.iter().enumerate() {
            counter += 1;
            out.push((site_key(func.0 as usize, counter), bix, iix));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::analyze;
    use crate::macros::MacroEnvironment;
    use crate::pipeline::CompilerOptions;

    fn typed_module(src: &str) -> ProgramModule {
        let macros = MacroEnvironment::builtin();
        let expanded = macros.expand(
            &wolfram_expr::parse(src).unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let mut pm = crate::lower::lower(&bound, None, &env).unwrap();
        infer(&mut pm, &env).unwrap();
        pm
    }

    #[test]
    fn add_one_types() {
        let pm = typed_module("Function[{Typed[n, \"MachineInteger\"]}, n + 1]");
        let main = pm.main();
        assert!(main.is_fully_typed(), "{}", main.to_text());
        assert_eq!(main.return_type, Some(Type::integer64()));
    }

    #[test]
    fn promotion_in_mixed_arithmetic() {
        let pm = typed_module("Function[{Typed[x, \"Real64\"]}, x + 1]");
        assert_eq!(pm.main().return_type, Some(Type::real64()));
    }

    #[test]
    fn loop_types_flow_through_phis() {
        let pm = typed_module(
            "Function[{Typed[n, \"MachineInteger\"]}, \
             Module[{i = 0, s = 0.0}, While[i < n, s = s + 1.5; i = i + 1]; s]]",
        );
        let main = pm.main();
        assert_eq!(main.return_type, Some(Type::real64()));
        assert!(main.is_fully_typed(), "{}", main.to_text());
    }

    #[test]
    fn comparisons_are_boolean() {
        let pm = typed_module("Function[{Typed[x, \"MachineInteger\"]}, x < 3]");
        assert_eq!(pm.main().return_type, Some(Type::boolean()));
    }

    #[test]
    fn tensor_parts() {
        let pm = typed_module("Function[{Typed[v, \"Tensor\"[\"Real64\", 1]]}, v[[1]] + v[[2]]]");
        assert_eq!(pm.main().return_type, Some(Type::real64()));
    }

    #[test]
    fn closure_param_types_inferred_from_use() {
        // The lambda's x is inferred Integer64 from the call f[2] and the
        // capture k.
        let pm = typed_module(
            "Function[{Typed[k, \"MachineInteger\"]}, \
             Module[{f = Function[{x}, x + k]}, f[2]]]",
        );
        assert_eq!(pm.main().return_type, Some(Type::integer64()));
        let lambda = &pm.functions[1];
        assert!(lambda.is_fully_typed(), "{}", lambda.to_text());
        assert_eq!(lambda.return_type, Some(Type::integer64()));
    }

    #[test]
    fn recursion_closes_types() {
        let macros = MacroEnvironment::builtin();
        let src = "Function[{Typed[n, \"MachineInteger\"]}, If[n < 1, 1, cfib[n-1] + cfib[n-2]]]";
        let expanded = macros.expand(
            &wolfram_expr::parse(src).unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let mut pm = crate::lower::lower(&bound, Some("cfib"), &env).unwrap();
        infer(&mut pm, &env).unwrap();
        assert_eq!(pm.main().return_type, Some(Type::integer64()));
    }

    #[test]
    fn missing_annotation_reports_unresolved() {
        let macros = MacroEnvironment::builtin();
        let expanded = macros.expand(
            &wolfram_expr::parse("Function[{n}, n + 1]").unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let mut pm = crate::lower::lower(&bound, None, &env).unwrap();
        assert!(infer(&mut pm, &env).is_err());
    }

    #[test]
    fn type_mismatch_reported() {
        let macros = MacroEnvironment::builtin();
        let expanded = macros.expand(
            &wolfram_expr::parse("Function[{Typed[x, \"Real64\"]}, StringLength[x]]").unwrap(),
            &CompilerOptions::default(),
        );
        let bound = analyze(&expanded).unwrap();
        let env = crate::stdlib::builtin_type_environment();
        let mut pm = crate::lower::lower(&bound, None, &env).unwrap();
        let err = infer(&mut pm, &env).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Sin") || msg.contains("String"), "{msg}");
    }

    #[test]
    fn string_functions_type() {
        let pm = typed_module("Function[{Typed[s, \"String\"]}, StringLength[s]]");
        assert_eq!(pm.main().return_type, Some(Type::integer64()));
    }

    #[test]
    fn symbolic_expression_functions() {
        // §4.5: compiled symbolic computation.
        let pm =
            typed_module("Function[{Typed[a, \"Expression\"], Typed[b, \"Expression\"]}, a + b]");
        assert_eq!(pm.main().return_type, Some(Type::expression()));
    }

    #[test]
    fn kernel_escape_is_expression() {
        let pm = typed_module("Function[{Typed[x, \"MachineInteger\"]}, Unsupported[x]]");
        assert_eq!(pm.main().return_type, Some(Type::expression()));
    }
}
