//! The `FunctionCompile` pipeline (§4, §4.7): `MExpr -> WIR -> TWIR ->
//! code generation`, with user-injectable macro/type environments, pass
//! toggles, per-stage artifacts, and pass timing (the §6 internal
//! benchmark suite measures "compilation time, time to run specific
//! passes").

use crate::binding;
use crate::engine::CompiledCodeFunction;
use crate::infer;
use crate::lower;
use crate::macros::MacroEnvironment;
use crate::resolve::{self, InlinePolicy};
use crate::stdlib;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wolfram_codegen::lower::{lower_program_with, LowerOptions};
use wolfram_codegen::{BackendRegistry, NativeProgram};
use wolfram_expr::{parse, Expr};
use wolfram_interp::Interpreter;
use wolfram_ir::{PassOptions, ProgramModule, VerifyLevel};
use wolfram_runtime::ParallelConfig;
use wolfram_types::TypeEnvironment;

/// The compiler version string (the paper evaluates v1.0.1.0).
pub const COMPILER_VERSION: &str = "1.0.1.0";

/// Compilation target (F4). Only `Native` produces executable code in this
/// reproduction; `C`, `Assembler`, `IR`, and `WVM` are export backends, and
/// `Cuda` exists for the §4.7 conditioned-macro extension point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSystem {
    /// The native register machine (default; the LLVM JIT stand-in).
    Native,
    /// CUDA (macro-level retargeting demo only).
    Cuda,
}

/// Options accepted by `FunctionCompile` (§4.7: "Macro rules, type system
/// definitions, and passes can be predicated on the FunctionCompile
/// options").
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Compilation target.
    pub target_system: TargetSystem,
    /// Insert abort checks (F3); `Native`AbortInhibit` in the paper turns
    /// this off for benchmarking.
    pub abort_handling: bool,
    /// Insert memory-management instructions (F7).
    pub memory_management: bool,
    /// Optimization level (0 disables the optimizing passes).
    pub optimization_level: u8,
    /// Inlining policy (the §6 ablation: Never costs ~10× on Mandelbrot).
    pub inline_policy: InlinePolicy,
    /// Pass names to skip.
    pub disabled_passes: HashSet<String>,
    /// Model the §6 "non-optimal handling of constant arrays" (PrimeQ).
    pub naive_constant_arrays: bool,
    /// Rewrite the native code with superinstructions after register
    /// allocation (fused compare-and-branch, tensor load-op/op-store,
    /// multiply-add, back-edge folding). Off gives the ablation baseline.
    pub superinstruction_fusion: bool,
    /// Per-pass IR verification level. `Full` (the default) runs the SSA
    /// linter plus the `wolfram-analyze` type and refcount checkers after
    /// every pass; benchmarks set `Off` to measure pure pass cost.
    pub verify: VerifyLevel,
    /// Enable the data-parallel execution tier: whole-tensor builtins run
    /// chunked across the runtime's worker pool, and fused counted loops
    /// are batched through the SIMD kernels (`vectorize` pass). Off by
    /// default — the scalar engine is the semantics reference.
    pub data_parallel: bool,
    /// Tuning for the data-parallel tier (threads, chunk granularity,
    /// SIMD on/off). Ignored unless `data_parallel` is set.
    pub parallel: ParallelConfig,
    /// Run the interval range analysis over the optimized TWIR and let
    /// the lowering elide runtime checks it discharges: Part bounds
    /// checks become unchecked accesses, provably overflow-free integer
    /// add/subtract/times become wrapping ops, and redundant refcount
    /// pairs disappear. On by default; off gives the fully checked
    /// ablation baseline.
    pub range_checks_elision: bool,
}

impl CompilerOptions {
    /// A stable 64-bit fingerprint of every option that can change the
    /// compiled artifact. Two option sets with equal fingerprints produce
    /// byte-identical code for the same canonical source, so the serving
    /// layer's content-addressed cache keys on `(canonical MExpr,
    /// fingerprint)` — same source under different options must not
    /// collide (§4.7: "Macro rules, type system definitions, and passes
    /// can be predicated on the FunctionCompile options").
    ///
    /// The hash is FNV-1a over a canonical byte rendering: enum
    /// discriminants, option booleans, and the *sorted* disabled-pass
    /// names (a `HashSet`'s iteration order must not leak into the key).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(match self.target_system {
            TargetSystem::Native => b"target:native",
            TargetSystem::Cuda => b"target:cuda",
        });
        eat(&[
            u8::from(self.abort_handling),
            u8::from(self.memory_management),
            self.optimization_level,
            u8::from(self.naive_constant_arrays),
            u8::from(self.superinstruction_fusion),
            u8::from(self.data_parallel),
            u8::from(self.range_checks_elision),
        ]);
        if self.data_parallel {
            // The config changes the emitted program (the embedded
            // ParallelConfig and the planted VecLoops), so it must
            // separate cache keys; when the tier is off it is inert and
            // must NOT perturb the fingerprint.
            eat(b"parallel:");
            eat(&(self.parallel.num_threads as u64).to_le_bytes());
            eat(&(self.parallel.min_elems_per_chunk as u64).to_le_bytes());
            eat(&[u8::from(self.parallel.simd)]);
        }
        eat(match self.inline_policy {
            InlinePolicy::Automatic => b"inline:auto",
            InlinePolicy::Never => b"inline:never",
            InlinePolicy::Always => b"inline:always",
        });
        eat(match self.verify {
            VerifyLevel::Off => b"verify:off",
            VerifyLevel::Ssa => b"verify:ssa",
            VerifyLevel::Full => b"verify:full",
        });
        let mut disabled: Vec<&str> = self.disabled_passes.iter().map(String::as_str).collect();
        disabled.sort_unstable();
        for pass in disabled {
            eat(b"disable:");
            eat(pass.as_bytes());
        }
        h
    }
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            target_system: TargetSystem::Native,
            abort_handling: true,
            memory_management: true,
            optimization_level: 1,
            inline_policy: InlinePolicy::Automatic,
            disabled_passes: HashSet::new(),
            naive_constant_arrays: false,
            superinstruction_fusion: true,
            verify: VerifyLevel::Full,
            data_parallel: false,
            parallel: ParallelConfig::default(),
            range_checks_elision: true,
        }
    }
}

/// A compile-time failure, tagged by pipeline stage.
#[derive(Debug)]
pub enum CompileError {
    /// Source text failed to parse.
    Parse(wolfram_expr::ParseError),
    /// Binding analysis failed.
    Binding(binding::BindingError),
    /// Lowering failed.
    Lower(lower::LowerError),
    /// Type inference failed.
    Infer(wolfram_types::SolveError),
    /// Function resolution failed.
    Resolve(resolve::ResolveFail),
    /// A pass broke SSA (linter).
    Verify(wolfram_ir::verify::VerifyError),
    /// Code generation failed.
    Codegen(wolfram_codegen::LowerError),
    /// A textual backend failed.
    Backend(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Binding(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Infer(e) => write!(f, "type inference failed: {e}"),
            CompileError::Resolve(e) => write!(f, "function resolution failed: {e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
            CompileError::Codegen(e) => write!(f, "code generation failed: {e}"),
            CompileError::Backend(e) => write!(f, "backend failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The Wolfram Language compiler: a staged pipeline with replaceable macro
/// and type environments.
pub struct Compiler {
    /// Compiler options.
    pub options: CompilerOptions,
    /// The macro environment (extensible, §4.7).
    pub macros: MacroEnvironment,
    /// The type environment (extensible, F6).
    pub types: TypeEnvironment,
    /// Textual export backends (extensible, F4).
    pub backends: BackendRegistry,
    timings: RefCell<Vec<(String, Duration)>>,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new(CompilerOptions::default())
    }
}

/// The builtin backend registry, with the Assembler backend mirroring the
/// `SuperinstructionFusion` option so exports show the code that runs.
fn registry_for(options: &CompilerOptions) -> BackendRegistry {
    let mut backends = BackendRegistry::new();
    backends.register(std::sync::Arc::new(wolfram_codegen::AsmBackend {
        fuse: options.superinstruction_fusion,
    }));
    backends
}

impl Compiler {
    /// A compiler with the builtin macro and type environments.
    pub fn new(options: CompilerOptions) -> Self {
        let backends = registry_for(&options);
        Compiler {
            options,
            macros: MacroEnvironment::builtin(),
            types: stdlib::builtin_type_environment(),
            backends,
            timings: RefCell::new(Vec::new()),
        }
    }

    /// A compiler with custom environments (the paper's
    /// "specify which type environment to use at FunctionCompile time").
    pub fn with_environments(
        options: CompilerOptions,
        macros: MacroEnvironment,
        types: TypeEnvironment,
    ) -> Self {
        let backends = registry_for(&options);
        Compiler {
            options,
            macros,
            types,
            backends,
            timings: RefCell::new(Vec::new()),
        }
    }

    fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.timings
            .borrow_mut()
            .push((name.to_owned(), start.elapsed()));
        out
    }

    /// Per-pass timings of the most recent compilation, in pipeline order.
    pub fn timings(&self) -> Vec<(String, Duration)> {
        self.timings.borrow().clone()
    }

    /// `CompileToAST`: macro-expand (A.6.1).
    pub fn compile_to_ast(&self, f: &Expr) -> Expr {
        self.macros.expand(f, &self.options)
    }

    /// `CompileToIR` with optimizations off: the untyped WIR (A.6.2).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_to_ir(&self, f: &Expr) -> Result<ProgramModule, CompileError> {
        let ast = self.compile_to_ast(f);
        let bound = binding::analyze(&ast).map_err(CompileError::Binding)?;
        lower::lower(&bound, None, &self.types).map_err(CompileError::Lower)
    }

    /// `CompileToIR`: the fully typed, resolved, optimized TWIR (A.6.3).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_to_twir(
        &self,
        f: &Expr,
        public_name: Option<&str>,
    ) -> Result<ProgramModule, CompileError> {
        self.timings.borrow_mut().clear();
        let ast = self.time("macro-expansion", || self.compile_to_ast(f));
        let bound = self
            .time("binding-analysis", || binding::analyze(&ast))
            .map_err(CompileError::Binding)?;
        let mut pm = self
            .time("lowering", || {
                lower::lower(&bound, public_name, &self.types)
            })
            .map_err(CompileError::Lower)?;
        let inference = self
            .time("type-inference", || infer::infer(&mut pm, &self.types))
            .map_err(CompileError::Infer)?;
        self.time("function-resolution", || {
            resolve::resolve_module(&mut pm, &self.types, inference, self.options.inline_policy)
        })
        .map_err(CompileError::Resolve)?;
        let pass_opts = PassOptions {
            optimization_level: self.options.optimization_level,
            abort_handling: self.options.abort_handling,
            memory_management: self.options.memory_management,
            disabled: self.options.disabled_passes.clone(),
            verify: self.options.verify,
            full_check: (self.options.verify == VerifyLevel::Full).then(|| {
                wolfram_analyze::pipeline_verifier(wolfram_analyze::module_signatures(&pm))
            }),
        };
        for fix in 0..pm.functions.len() {
            let name = pm.functions[fix].name.clone();
            self.time(&format!("optimize[{name}]"), || {
                wolfram_ir::run_pipeline(&mut pm.functions[fix], &pass_opts)
            })
            .map_err(CompileError::Verify)?;
        }
        for f in &pm.functions {
            wolfram_ir::verify_function(f).map_err(CompileError::Verify)?;
        }
        if self.options.verify == VerifyLevel::Full {
            self.time("analyze", || wolfram_analyze::verify_module(&pm))
                .map_err(CompileError::Verify)?;
        }
        Ok(pm)
    }

    /// Lowers a TWIR to the native program (the JIT step).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn generate_native(&self, pm: &ProgramModule) -> Result<NativeProgram, CompileError> {
        let opts = LowerOptions {
            naive_constant_arrays: self.options.naive_constant_arrays,
            range_facts: self.options.range_checks_elision.then(|| {
                self.time("range-analysis", || {
                    wolfram_analyze::intervals::analyze_module_ranges(pm)
                })
            }),
        };
        let mut native = self
            .time("code-generation", || lower_program_with(pm, &opts))
            .map_err(CompileError::Codegen)?;
        if self.options.superinstruction_fusion {
            self.time("superinstruction-fusion", || {
                wolfram_codegen::fuse_program(&mut native)
            });
        }
        if self.options.data_parallel {
            // Runs after fusion: the vectorizer recognizes the fused loop
            // header/latch superinstructions. Attaching the config also
            // switches the machine's whole-tensor builtins to the chunked
            // parallel kernels.
            self.time("loop-vectorize", || {
                wolfram_codegen::vectorize_program(&mut native)
            });
            native.parallel = Some(self.options.parallel);
        }
        Ok(native)
    }

    /// `FunctionCompile` (§4.1): compiles a `Function[...]` expression into
    /// a callable compiled function (standalone: no engine integration).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn function_compile(&self, f: &Expr) -> Result<CompiledCodeFunction, CompileError> {
        self.function_compile_named(f, None)
    }

    /// `FunctionCompile` with a public name enabling self-recursion (the
    /// paper's `cfib = FunctionCompile[...]`).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn function_compile_named(
        &self,
        f: &Expr,
        public_name: Option<&str>,
    ) -> Result<CompiledCodeFunction, CompileError> {
        let pm = self.compile_to_twir(f, public_name)?;
        let native = self.generate_native(&pm)?;
        CompiledCodeFunction::new(f.clone(), Arc::new(pm), Arc::new(native))
    }

    /// `FunctionCompile` from source text.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn function_compile_src(&self, src: &str) -> Result<CompiledCodeFunction, CompileError> {
        let f = parse(src).map_err(CompileError::Parse)?;
        self.function_compile(&f)
    }

    /// `FunctionCompileExportString` (A.6.4/A.6.5): renders the compiled
    /// function through a textual backend (`"IR"`, `"C"`, `"Assembler"`,
    /// `"WVM"`).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn export_string(&self, f: &Expr, backend: &str) -> Result<String, CompileError> {
        let pm = self.compile_to_twir(f, None)?;
        let backend = self
            .backends
            .get(backend)
            .ok_or_else(|| CompileError::Backend(format!("unknown backend `{backend}`")))?;
        backend.generate(&pm).map_err(CompileError::Backend)
    }

    /// `FunctionCompileExportLibrary` (F10): writes a standalone library
    /// artifact.
    ///
    /// # Errors
    ///
    /// Compilation errors (the function is validated by compiling it) and
    /// I/O errors as [`CompileError::Backend`].
    pub fn export_library(
        &self,
        f: &Expr,
        path: &std::path::Path,
    ) -> Result<wolfram_codegen::export::ExportedLibrary, CompileError> {
        // Validate by compiling.
        let _ = self.compile_to_twir(f, None)?;
        let lib = wolfram_codegen::export::ExportedLibrary::new(f, COMPILER_VERSION, true);
        lib.write(path)
            .map_err(|e| CompileError::Backend(e.to_string()))?;
        Ok(lib)
    }

    /// `LibraryFunctionLoad`: loads an exported library, recompiling from
    /// the embedded source (version checks always recompile here, matching
    /// §2.2's behavior).
    ///
    /// # Errors
    ///
    /// Format and compilation errors.
    pub fn load_library(
        &self,
        path: &std::path::Path,
    ) -> Result<CompiledCodeFunction, CompileError> {
        let lib =
            wolfram_codegen::export::ExportedLibrary::read(path).map_err(CompileError::Backend)?;
        let f = lib.function().map_err(CompileError::Parse)?;
        let mut compiled = self.function_compile(&f)?;
        compiled.standalone = lib.standalone;
        Ok(compiled)
    }

    /// Installs the `FindRoot` auto-compilation hook (§1) into an engine:
    /// numerical solvers hosted there transparently compile their
    /// objective functions.
    pub fn install_auto_compile(engine: &mut Interpreter) {
        let hook: wolfram_interp::AutoCompileHook = Rc::new(move |body: &Expr, var| {
            let compiler = Compiler::new(CompilerOptions::default());
            let f = Expr::call(
                "Function",
                [
                    Expr::list([Expr::call(
                        "Typed",
                        [Expr::symbol(var.clone()), Expr::string("Real64")],
                    )]),
                    body.clone(),
                ],
            );
            let compiled = compiler.function_compile(&f).ok()?;
            let compiled = Rc::new(compiled);
            Some(Rc::new(move |x: f64| {
                let out = compiled.call(&[wolfram_runtime::Value::F64(x)])?;
                out.expect_f64()
            }) as wolfram_interp::findroot::CompiledUnary)
        });
        engine.auto_compile = Some(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_runtime::Value;

    #[test]
    fn add_one_compiles_and_runs() {
        let compiler = Compiler::default();
        let cf = compiler
            .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, n + 1]")
            .unwrap();
        assert_eq!(cf.call(&[Value::I64(41)]).unwrap(), Value::I64(42));
        // Timings recorded for every stage.
        let stages: Vec<String> = compiler.timings().into_iter().map(|(n, _)| n).collect();
        assert!(stages.iter().any(|s| s == "macro-expansion"), "{stages:?}");
        assert!(stages.iter().any(|s| s == "type-inference"), "{stages:?}");
        assert!(stages.iter().any(|s| s == "code-generation"), "{stages:?}");
    }

    #[test]
    fn loops_compile() {
        let compiler = Compiler::default();
        let cf = compiler
            .function_compile_src(
                "Function[{Typed[n, \"MachineInteger\"]}, \
                 Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]",
            )
            .unwrap();
        assert_eq!(cf.call(&[Value::I64(100)]).unwrap(), Value::I64(5050));
    }

    #[test]
    fn export_strings() {
        let compiler = Compiler::default();
        let f = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        let ir = compiler.export_string(&f, "IR").unwrap();
        assert!(ir.contains("checked_binary_plus"), "{ir}");
        let c = compiler.export_string(&f, "C").unwrap();
        assert!(c.contains("int64_t"), "{c}");
        let asm = compiler.export_string(&f, "Assembler").unwrap();
        assert!(asm.contains("_Main:"), "{asm}");
        assert!(compiler.export_string(&f, "PTX").is_err());
    }

    #[test]
    fn export_and_load_library() {
        let compiler = Compiler::default();
        let f = parse("Function[{Typed[x, \"Real64\"]}, Sin[x] + 1]").unwrap();
        let dir = std::env::temp_dir().join("wolfram-core-export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sinPlus.wxl");
        compiler.export_library(&f, &path).unwrap();
        let loaded = compiler.load_library(&path).unwrap();
        assert!(loaded.standalone);
        assert_eq!(loaded.call(&[Value::F64(0.0)]).unwrap(), Value::F64(1.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compile_errors_are_reported() {
        let compiler = Compiler::default();
        // Untyped parameters cannot be inferred.
        assert!(matches!(
            compiler.function_compile_src("Function[{n}, n + 1]"),
            Err(CompileError::Infer(_))
        ));
        // Parse errors.
        assert!(matches!(
            compiler.function_compile_src("Function[{"),
            Err(CompileError::Parse(_))
        ));
        // Type errors.
        assert!(matches!(
            compiler.function_compile_src("Function[{Typed[x, \"Real64\"]}, StringLength[x]]"),
            Err(CompileError::Infer(_))
        ));
    }

    #[test]
    fn optimization_level_zero_keeps_code() {
        let options = CompilerOptions {
            optimization_level: 0,
            ..CompilerOptions::default()
        };
        let compiler = Compiler::new(options);
        let cf = compiler
            .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, 1 + 2 + n]")
            .unwrap();
        assert_eq!(cf.call(&[Value::I64(3)]).unwrap(), Value::I64(6));
    }

    #[test]
    fn range_elision_emits_unchecked_ops_and_matches_checked_results() {
        // A counted loop writing in-bounds Parts: the interval analysis
        // proves every access, so the default tier lowers unchecked ops
        // while the ablation baseline keeps all checks — with identical
        // observable results.
        let src = "Function[{Typed[n, \"MachineInteger\"]}, \
                   Module[{out, i}, out = ConstantArray[0, {n}]; i = 1; \
                   While[i <= n, out[[i]] = 2*i + 1; i = i + 1]; out]]";
        let expr = parse(src).unwrap();
        let on = Compiler::default();
        let off = Compiler::new(CompilerOptions {
            range_checks_elision: false,
            ..CompilerOptions::default()
        });

        let lower = |c: &Compiler| {
            let pm = c.compile_to_twir(&expr, None).unwrap();
            c.generate_native(&pm).unwrap()
        };
        let native_on = lower(&on);
        let native_off = lower(&off);

        let bounds_elided =
            |n: &NativeProgram| -> u32 { n.funcs.iter().map(|f| f.elision.bounds_elided).sum() };
        let ovf_elided =
            |n: &NativeProgram| -> u32 { n.funcs.iter().map(|f| f.elision.ovf_elided).sum() };
        assert!(bounds_elided(&native_on) > 0, "Part proof must fire");
        assert!(ovf_elided(&native_on) > 0, "overflow proof must fire");
        assert_eq!(bounds_elided(&native_off), 0);
        assert_eq!(ovf_elided(&native_off), 0);

        // The unchecked mnemonics (".u") appear only in the elided build.
        let asm = |n: &NativeProgram| -> String {
            n.funcs
                .iter()
                .map(wolfram_codegen::asm::render_function)
                .collect()
        };
        assert!(asm(&native_on).contains(".u."), "{}", asm(&native_on));
        assert!(!asm(&native_off).contains(".u."), "{}", asm(&native_off));

        // Bit-identical results from both configurations.
        let run = |c: &Compiler| {
            c.function_compile_src(src)
                .unwrap()
                .call(&[Value::I64(6)])
                .unwrap()
        };
        assert_eq!(run(&on), run(&off));
    }

    #[test]
    fn options_fingerprint_is_stable_and_discriminating() {
        let base = CompilerOptions::default();
        assert_eq!(base.fingerprint(), CompilerOptions::default().fingerprint());
        // Every artifact-affecting knob moves the fingerprint.
        let variants = [
            CompilerOptions {
                abort_handling: false,
                ..CompilerOptions::default()
            },
            CompilerOptions {
                memory_management: false,
                ..CompilerOptions::default()
            },
            CompilerOptions {
                optimization_level: 0,
                ..CompilerOptions::default()
            },
            CompilerOptions {
                inline_policy: InlinePolicy::Never,
                ..CompilerOptions::default()
            },
            CompilerOptions {
                superinstruction_fusion: false,
                ..CompilerOptions::default()
            },
            CompilerOptions {
                naive_constant_arrays: true,
                ..CompilerOptions::default()
            },
            CompilerOptions {
                data_parallel: true,
                ..CompilerOptions::default()
            },
            CompilerOptions {
                data_parallel: true,
                parallel: ParallelConfig {
                    num_threads: 2,
                    ..ParallelConfig::default()
                },
                ..CompilerOptions::default()
            },
            CompilerOptions {
                data_parallel: true,
                parallel: ParallelConfig {
                    simd: false,
                    ..ParallelConfig::default()
                },
                ..CompilerOptions::default()
            },
            CompilerOptions {
                range_checks_elision: false,
                ..CompilerOptions::default()
            },
        ];
        let mut prints: Vec<u64> = variants.iter().map(CompilerOptions::fingerprint).collect();
        prints.push(base.fingerprint());
        let unique: HashSet<u64> = prints.iter().copied().collect();
        assert_eq!(
            unique.len(),
            prints.len(),
            "fingerprint collision: {prints:?}"
        );
        // Disabled-pass order does not matter (set semantics).
        let mut a = CompilerOptions::default();
        a.disabled_passes
            .extend(["cse".to_owned(), "dce".to_owned()]);
        let mut b = CompilerOptions::default();
        b.disabled_passes
            .extend(["dce".to_owned(), "cse".to_owned()]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), base.fingerprint());
        // The parallel tuning is inert — and must not perturb the cache
        // key — while the tier is off.
        let tuned_but_off = CompilerOptions {
            parallel: ParallelConfig {
                num_threads: 7,
                min_elems_per_chunk: 3,
                simd: false,
            },
            ..CompilerOptions::default()
        };
        assert_eq!(tuned_but_off.fingerprint(), base.fingerprint());
    }

    /// 3x3 blur (the §6 benchmark shape): its fused inner loop is the
    /// canonical VecLoop target.
    const BLUR_SRC: &str = r#"
Function[{Typed[img, "Tensor"["Real64", 2]], Typed[h, "MachineInteger"], Typed[w, "MachineInteger"]},
 Module[{out, i, j, s},
  out = ConstantArray[0., {h, w}];
  i = 2;
  While[i < h,
   j = 2;
   While[j < w,
    s = img[[i - 1, j - 1]] + 2.0*img[[i - 1, j]] + img[[i - 1, j + 1]]
      + 2.0*img[[i, j - 1]] + 4.0*img[[i, j]] + 2.0*img[[i, j + 1]]
      + img[[i + 1, j - 1]] + 2.0*img[[i + 1, j]] + img[[i + 1, j + 1]];
    out[[i, j]] = s / 16.0;
    j = j + 1];
   i = i + 1];
  out]]
"#;

    fn blur_args(h: usize, w: usize) -> Vec<Value> {
        let img: Vec<f64> = (0..h * w).map(|k| ((k * 37 % 101) as f64) / 7.0).collect();
        let ten =
            wolfram_runtime::Tensor::with_shape(vec![h, w], wolfram_runtime::TensorData::F64(img))
                .unwrap();
        vec![
            Value::Tensor(ten),
            Value::I64(h as i64),
            Value::I64(w as i64),
        ]
    }

    #[test]
    fn data_parallel_blur_plants_vec_loops_and_matches_scalar() {
        let compiler = Compiler::new(CompilerOptions {
            data_parallel: true,
            ..CompilerOptions::default()
        });
        let pm = compiler
            .compile_to_twir(&parse(BLUR_SRC).unwrap(), None)
            .unwrap();
        let native = compiler.generate_native(&pm).unwrap();
        assert!(native.parallel.is_some());
        let n_vec = native
            .funcs
            .iter()
            .flat_map(|f| &f.code)
            .filter(|op| matches!(op, wolfram_codegen::RegOp::VecLoop { .. }))
            .count();
        assert!(n_vec >= 1, "the blur inner loop must vectorize");

        let want = Compiler::default()
            .function_compile_src(BLUR_SRC)
            .unwrap()
            .call(&blur_args(31, 23))
            .unwrap();
        for threads in [1usize, 4] {
            let opts = CompilerOptions {
                data_parallel: true,
                parallel: ParallelConfig {
                    num_threads: threads,
                    min_elems_per_chunk: 8,
                    simd: true,
                },
                ..CompilerOptions::default()
            };
            let cf = Compiler::new(opts).function_compile_src(BLUR_SRC).unwrap();
            // Bit-identical: each output element's expression tree is
            // evaluated in the scalar loop's operation order.
            assert_eq!(
                cf.call(&blur_args(31, 23)).unwrap(),
                want,
                "threads={threads}"
            );
            // Repeat calls on the same compiled function stay stable.
            assert_eq!(cf.call(&blur_args(31, 23)).unwrap(), want);
        }
    }

    #[test]
    fn data_parallel_elementwise_builtins_match_scalar() {
        let src = r#"
Function[{Typed[a, "Tensor"["Real64", 1]], Typed[b, "Tensor"["Real64", 1]]}, (a + b) * a]
"#;
        let n = 10_000;
        let av: Vec<f64> = (0..n).map(|k| (k as f64) * 0.5 - 100.0).collect();
        let bv: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64)).collect();
        let args = || {
            vec![
                Value::Tensor(
                    wolfram_runtime::Tensor::with_shape(
                        vec![n],
                        wolfram_runtime::TensorData::F64(av.clone()),
                    )
                    .unwrap(),
                ),
                Value::Tensor(
                    wolfram_runtime::Tensor::with_shape(
                        vec![n],
                        wolfram_runtime::TensorData::F64(bv.clone()),
                    )
                    .unwrap(),
                ),
            ]
        };
        let want = Compiler::default()
            .function_compile_src(src)
            .unwrap()
            .call(&args())
            .unwrap();
        let opts = CompilerOptions {
            data_parallel: true,
            parallel: ParallelConfig {
                num_threads: 4,
                min_elems_per_chunk: 256,
                simd: true,
            },
            ..CompilerOptions::default()
        };
        let got = Compiler::new(opts)
            .function_compile_src(src)
            .unwrap()
            .call(&args())
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn abort_handling_toggle() {
        // AbortHandling -> False removes the checks (the Native`AbortInhibit
        // benchmark mode).
        let options = CompilerOptions {
            abort_handling: false,
            ..CompilerOptions::default()
        };
        let compiler = Compiler::new(options);
        let f = parse(
            "Function[{Typed[n, \"MachineInteger\"]}, \
             Module[{i = 0}, While[i < n, i = i + 1]; i]]",
        )
        .unwrap();
        let pm = compiler.compile_to_twir(&f, None).unwrap();
        let has_checks = pm
            .main()
            .instrs()
            .any(|i| matches!(i, wolfram_ir::Instr::AbortCheck));
        assert!(!has_checks);
        let default_pm = Compiler::default().compile_to_twir(&f, None).unwrap();
        assert!(default_pm
            .main()
            .instrs()
            .any(|i| matches!(i, wolfram_ir::Instr::AbortCheck)));
    }
}
