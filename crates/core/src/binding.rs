//! Binding analysis (§4.2): "The binding analysis uses the MExpr visitor
//! API to traverse all scoping constructs within the MExpr. It then adds
//! metadata to each variable and links it to its binding expression. Along
//! the way, the MExpr is mutated and all scoping constructs are desugared,
//! nested scopes are flattened out, and variables are renamed to avoid
//! shadowing. ... Escape analysis is also performed as part of the binding
//! analysis. Escaped variables are annotated and are used during closure
//! conversion."

use std::collections::{HashMap, HashSet};
use std::fmt;
use wolfram_expr::rules::substitute_symbols;
use wolfram_expr::{Expr, ExprKind, Symbol};
use wolfram_types::{Type, TypeError};

/// A function after binding analysis: unique names, desugared scopes,
/// named parameters, and escape information.
#[derive(Debug, Clone)]
pub struct BoundFunction {
    /// Parameter names (renamed apart) with their `Typed` annotations.
    pub params: Vec<(String, Option<Type>)>,
    /// The normalized body: no `Module`/`With`/`Block` scoping constructs
    /// remain (inits became `Set` statements), no slot functions remain,
    /// and every bound name is globally unique.
    pub body: Expr,
    /// Variables that escape into nested `Function`s (candidates for
    /// closure capture).
    pub escaped: HashSet<String>,
}

/// Binding-analysis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingError {
    /// The input is not a `Function[...]` expression.
    NotAFunction(String),
    /// A malformed parameter or scoping specification.
    Malformed(String),
    /// A bad `Typed` specification.
    BadType(String),
}

impl fmt::Display for BindingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingError::NotAFunction(what) => {
                write!(f, "FunctionCompile expects a Function, got {what}")
            }
            BindingError::Malformed(what) => write!(f, "malformed binding construct: {what}"),
            BindingError::BadType(what) => write!(f, "invalid type annotation: {what}"),
        }
    }
}

impl std::error::Error for BindingError {}

impl From<TypeError> for BindingError {
    fn from(e: TypeError) -> Self {
        BindingError::BadType(e.0)
    }
}

struct Analyzer {
    counter: u64,
    escaped: HashSet<String>,
}

impl Analyzer {
    fn fresh(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("{base}${}", self.counter)
    }
}

/// Analyzes a `Function[...]` expression.
///
/// # Errors
///
/// See [`BindingError`].
pub fn analyze(f: &Expr) -> Result<BoundFunction, BindingError> {
    if !f.has_head("Function") {
        return Err(BindingError::NotAFunction(f.head().to_input_form()));
    }
    let mut a = Analyzer {
        counter: 0,
        escaped: HashSet::new(),
    };
    let normalized = normalize_lambda(f, &mut a)?;
    // normalize_lambda returns Function[{params...}, body] with metadata.
    let params_e = &normalized.args()[0];
    let body = normalized.args()[1].clone();
    let mut params = Vec::new();
    for p in params_e.args() {
        params.push(parse_param(p)?);
    }
    // Escape analysis: any renamed/bound name occurring inside a nested
    // Function in the final body escapes.
    let mut escaped = HashSet::new();
    collect_escapes(&body, &mut escaped);
    escaped.extend(a.escaped);
    Ok(BoundFunction {
        params,
        body,
        escaped,
    })
}

fn parse_param(p: &Expr) -> Result<(String, Option<Type>), BindingError> {
    if let Some(s) = p.as_symbol() {
        return Ok((s.name().to_owned(), None));
    }
    if p.has_head("Typed") && p.length() == 2 {
        let Some(s) = p.args()[0].as_symbol() else {
            return Err(BindingError::Malformed(format!(
                "Typed parameter name {}",
                p.to_input_form()
            )));
        };
        let ty = Type::from_expr(&p.args()[1])?;
        return Ok((s.name().to_owned(), Some(ty)));
    }
    Err(BindingError::Malformed(format!(
        "parameter {}",
        p.to_input_form()
    )))
}

/// Normalizes a lambda: slot form -> named params, parameters renamed
/// apart, body transformed.
fn normalize_lambda(f: &Expr, a: &mut Analyzer) -> Result<Expr, BindingError> {
    let args = f.args();
    let (param_specs, raw_body): (Vec<Expr>, Expr) = match args.len() {
        // Slot form: Function[body].
        1 => {
            let body = &args[0];
            let max_slot = max_slot_index(body);
            let names: Vec<String> = (1..=max_slot)
                .map(|ix| a.fresh(&format!("slot{ix}")))
                .collect();
            let body = substitute_slot_exprs(body, &names);
            (names.into_iter().map(|n| Expr::sym(&n)).collect(), body)
        }
        _ => {
            let params = &args[0];
            let specs: Vec<Expr> = if params.has_head("List") {
                params.args().to_vec()
            } else {
                vec![params.clone()]
            };
            // Rename parameters apart.
            let mut renames: HashMap<Symbol, Expr> = HashMap::new();
            let mut new_specs = Vec::with_capacity(specs.len());
            for spec in &specs {
                let (sym, ty) = if let Some(s) = spec.as_symbol() {
                    (s, None)
                } else if spec.has_head("Typed") && spec.length() == 2 {
                    let Some(s) = spec.args()[0].as_symbol() else {
                        return Err(BindingError::Malformed(spec.to_input_form()));
                    };
                    (s, Some(spec.args()[1].clone()))
                } else {
                    return Err(BindingError::Malformed(spec.to_input_form()));
                };
                let fresh = a.fresh(sym.name());
                renames.insert(sym.clone(), Expr::sym(&fresh));
                new_specs.push(match ty {
                    Some(t) => Expr::call("Typed", [Expr::sym(&fresh), t]),
                    None => Expr::sym(&fresh),
                });
            }
            let body = substitute_symbols(&args[1], &renames);
            (new_specs, body)
        }
    };
    let body = transform(&raw_body, a)?;
    Ok(Expr::call("Function", [Expr::list(param_specs), body]))
}

fn max_slot_index(e: &Expr) -> i64 {
    let mut max = 0;
    fn go(e: &Expr, max: &mut i64) {
        if let ExprKind::Normal(n) = e.kind() {
            if n.head().is_symbol("Slot") {
                if let Some(ix) = n.args().first().and_then(Expr::as_i64) {
                    *max = (*max).max(ix);
                }
                return;
            }
            // Nested slot-form functions own their slots.
            if n.head().is_symbol("Function") && n.args().len() == 1 {
                return;
            }
            go(n.head(), max);
            for a in n.args() {
                go(a, max);
            }
        }
    }
    go(e, &mut max);
    max
}

fn substitute_slot_exprs(e: &Expr, names: &[String]) -> Expr {
    match e.kind() {
        ExprKind::Normal(n) => {
            if n.head().is_symbol("Slot") {
                if let Some(ix) = n.args().first().and_then(Expr::as_i64) {
                    if ix >= 1 && (ix as usize) <= names.len() {
                        return Expr::sym(&names[ix as usize - 1]);
                    }
                }
                return e.clone();
            }
            if n.head().is_symbol("Function") && n.args().len() == 1 {
                return e.clone();
            }
            let head = substitute_slot_exprs(n.head(), names);
            let args: Vec<Expr> = n
                .args()
                .iter()
                .map(|x| substitute_slot_exprs(x, names))
                .collect();
            Expr::normal(head, args)
        }
        _ => e.clone(),
    }
}

/// Transforms scoping constructs bottom-out: `Module`/`Block` become `Set`
/// prologues with renamed variables; `With` substitutes; nested lambdas are
/// normalized recursively.
fn transform(e: &Expr, a: &mut Analyzer) -> Result<Expr, BindingError> {
    match e.kind() {
        ExprKind::Normal(n) => {
            if n.head().is_symbol("Function") {
                return normalize_lambda(e, a);
            }
            if (n.head().is_symbol("Module") || n.head().is_symbol("Block")) && n.args().len() == 2
            {
                return transform_module(e, a);
            }
            if n.head().is_symbol("With") && n.args().len() == 2 {
                return transform_with(e, a);
            }
            let head = transform(n.head(), a)?;
            let args: Vec<Expr> = n
                .args()
                .iter()
                .map(|x| transform(x, a))
                .collect::<Result<_, _>>()?;
            Ok(Expr::normal(head, args))
        }
        _ => Ok(e.clone()),
    }
}

fn scope_specs(vars: &Expr) -> Result<Vec<(Symbol, Option<Expr>)>, BindingError> {
    if !vars.has_head("List") {
        return Err(BindingError::Malformed(format!(
            "scoping variable list {}",
            vars.to_input_form()
        )));
    }
    vars.args()
        .iter()
        .map(|spec| {
            if let Some(s) = spec.as_symbol() {
                Ok((s, None))
            } else if spec.has_head("Set") && spec.length() == 2 {
                let Some(s) = spec.args()[0].as_symbol() else {
                    return Err(BindingError::Malformed(spec.to_input_form()));
                };
                Ok((s, Some(spec.args()[1].clone())))
            } else {
                Err(BindingError::Malformed(spec.to_input_form()))
            }
        })
        .collect()
}

fn transform_module(e: &Expr, a: &mut Analyzer) -> Result<Expr, BindingError> {
    let specs = scope_specs(&e.args()[0])?;
    let body = &e.args()[1];
    // Inits are evaluated in the *enclosing* scope, in order; the body sees
    // renamed variables. The result is a Set prologue (scope flattening):
    // Module[{a=1, b=1}, ...] -> a$1 = 1; b$2 = 1; ...
    let mut renames: HashMap<Symbol, Expr> = HashMap::new();
    let mut statements = Vec::new();
    for (sym, init) in &specs {
        let fresh = a.fresh(sym.name());
        let init_t = match init {
            Some(init) => Some(transform(init, a)?),
            None => None,
        };
        if let Some(init_t) = init_t {
            statements.push(Expr::call("Set", [Expr::sym(&fresh), init_t]));
        }
        renames.insert(sym.clone(), Expr::sym(&fresh));
    }
    let body = transform(&substitute_symbols(body, &renames), a)?;
    statements.push(body);
    Ok(if statements.len() == 1 {
        statements.pop().expect("single statement")
    } else {
        Expr::call("CompoundExpression", statements)
    })
}

fn transform_with(e: &Expr, a: &mut Analyzer) -> Result<Expr, BindingError> {
    let specs = scope_specs(&e.args()[0])?;
    let mut renames: HashMap<Symbol, Expr> = HashMap::new();
    for (sym, init) in &specs {
        let Some(init) = init else {
            return Err(BindingError::Malformed(
                "With variables must be initialized".into(),
            ));
        };
        renames.insert(sym.clone(), transform(init, a)?);
    }
    transform(&substitute_symbols(&e.args()[1], &renames), a)
}

/// Records names that occur free inside nested `Function` bodies.
fn collect_escapes(body: &Expr, escaped: &mut HashSet<String>) {
    fn go(e: &Expr, inside_lambda: bool, escaped: &mut HashSet<String>) {
        match e.kind() {
            ExprKind::Symbol(s) if inside_lambda && s.name().contains('$') => {
                escaped.insert(s.name().to_owned());
            }
            ExprKind::Normal(n) => {
                let lambda = n.head().is_symbol("Function");
                go(n.head(), inside_lambda, escaped);
                for a in n.args() {
                    go(a, inside_lambda || lambda, escaped);
                }
            }
            _ => {}
        }
    }
    go(body, false, escaped);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    fn bound(src: &str) -> BoundFunction {
        analyze(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn typed_params_parsed() {
        let b = bound("Function[{Typed[n, \"MachineInteger\"]}, n + 1]");
        assert_eq!(b.params.len(), 1);
        assert!(b.params[0].0.starts_with("n$"));
        assert_eq!(b.params[0].1, Some(Type::integer64()));
        assert!(b.body.to_full_form().contains(&b.params[0].0));
    }

    #[test]
    fn untyped_params_allowed() {
        let b = bound("Function[{x}, x]");
        assert_eq!(b.params[0].1, None);
    }

    #[test]
    fn paper_shadowing_example() {
        // Module[{a=1, b=1}, a + b + Module[{a=3}, a]] flattens with the
        // inner a renamed apart (the paper's a1).
        let b = bound("Function[{}, Module[{a = 1, b = 1}, a + b + Module[{a = 3}, a]]]");
        let text = b.body.to_full_form();
        // Two distinct a's.
        let mut a_names: Vec<&str> = text
            .split(|c: char| !(c.is_alphanumeric() || c == '$'))
            .filter(|w| w.starts_with("a$"))
            .collect();
        a_names.sort_unstable();
        a_names.dedup();
        assert_eq!(a_names.len(), 2, "{text}");
        // No Module remains.
        assert!(!text.contains("Module"), "{text}");
    }

    #[test]
    fn module_inits_become_sets_in_order() {
        let b = bound("Function[{x}, Module[{u = x + 1, v = 2}, u + v]]");
        let text = b.body.to_full_form();
        assert!(text.starts_with("CompoundExpression[Set[u$"), "{text}");
        assert!(text.contains("Set[v$"), "{text}");
    }

    #[test]
    fn with_substitutes() {
        let b = bound("Function[{x}, With[{k = 3}, k*x]]");
        let text = b.body.to_full_form();
        assert!(text.contains("Times[3"), "{text}");
        assert!(!text.contains("With"), "{text}");
    }

    #[test]
    fn slot_functions_get_names() {
        let b = bound("Function[{v}, f[#1 + #2 &, v]]");
        let text = b.body.to_full_form();
        assert!(text.contains("Function[List[slot1$"), "{text}");
        assert!(text.contains("slot2$"), "{text}");
        assert!(!text.contains("Slot["), "{text}");
    }

    #[test]
    fn escapes_detected() {
        // The random-walk shape: a Module variable used inside a lambda.
        let b = bound(
            "Function[{len}, NestList[Module[{arg = RandomReal[{0, 1}]}, \
             {Cos[arg], Sin[arg]} + #] &, {0, 0}, len]]",
        );
        // The lambda's own body contains arg$n: since the Module sits
        // inside the lambda, nothing from the outer scope escapes... but
        // `len` does not occur inside it. Check a real capture:
        let b2 = bound("Function[{k}, Map[Function[{x}, x + k], data]]");
        assert!(
            b2.escaped.iter().any(|n| n.starts_with("k$")),
            "{:?}",
            b2.escaped
        );
        let _ = b;
    }

    #[test]
    fn nested_lambda_params_renamed_apart() {
        let b = bound("Function[{x}, Function[{x}, x][x]]");
        let text = b.body.to_full_form();
        // Outer and inner x must differ.
        let mut xs: Vec<&str> = text
            .split(|c: char| !(c.is_alphanumeric() || c == '$'))
            .filter(|w| w.starts_with("x$"))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        assert!(xs.len() >= 2, "{text}");
    }

    #[test]
    fn errors() {
        assert!(analyze(&parse("42").unwrap()).is_err());
        assert!(analyze(&parse("Function[{1}, 1]").unwrap()).is_err());
        assert!(
            analyze(&parse("Function[{Typed[x, \"NoSuch\" -> ]}, x]").unwrap_or(Expr::int(0)))
                .is_err()
        );
    }
}
