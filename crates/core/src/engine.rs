//! `CompiledCodeFunction` (§4.5): the auxiliary boxing/unboxing wrapper
//! (F1), soft numeric failure with interpreter re-run (F2), abortability
//! (F3), and seamless installation into a hosting engine.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use wolfram_codegen::lower::result_to_value;
use wolfram_codegen::{ArgVal, Bank, Machine, NativeProgram};
use wolfram_expr::Expr;
use wolfram_interp::Interpreter;
use wolfram_ir::ProgramModule;
use wolfram_runtime::value::expr_to_tensor;
use wolfram_runtime::{AbortSignal, RuntimeError, Value};
use wolfram_types::Type;

/// A compiled Wolfram function: "To the Wolfram interpreter, all functions
/// have the signature `{"Expression"} -> "Expression"`. Therefore, the
/// compiler wraps each compiled function with an auxiliary function" that
/// unpacks, checks, calls, and repacks.
#[derive(Clone)]
pub struct CompiledCodeFunction {
    /// The original input function (kept for fallback and re-export, like
    /// the legacy `CompiledFunction`).
    pub original: Expr,
    /// The TWIR module (inspectable; feeds the textual backends).
    pub module: Arc<ProgramModule>,
    /// The executable program.
    pub program: Arc<NativeProgram>,
    /// Checked parameter types.
    pub param_types: Vec<Type>,
    /// The return type.
    pub return_type: Type,
    /// The hosting engine, if any (enables kernel escapes, symbolic ops,
    /// and the soft-failure fallback).
    pub engine: Option<Rc<RefCell<Interpreter>>>,
    /// Standalone mode (F10): engine-dependent functionality is disabled.
    pub standalone: bool,
    /// The abort signal used for standalone calls.
    pub abort: AbortSignal,
    /// A cached execution machine (frame pool reuse across calls); falls
    /// back to a fresh machine on re-entrant calls.
    machine: Rc<RefCell<Machine>>,
}

impl std::fmt::Debug for CompiledCodeFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledCodeFunction[{} -> {}]",
            self.param_types
                .iter()
                .map(Type::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            self.return_type
        )
    }
}

/// The immutable, shareable product of one compilation: everything in a
/// [`CompiledCodeFunction`] *except* the thread-confined execution state
/// (hosting engine, abort signal, machine).
///
/// This is the `Send + Sync` handle a serving layer caches and hands
/// across threads — one compilation is observed by every worker, which
/// rebinds it locally with [`CompiledArtifact::instantiate`] (or
/// [`CompiledArtifact::instantiate_hosted`] to attach an engine). The
/// compiled payload (`ProgramModule`, `NativeProgram`, embedded constant
/// `Value`s) is never copied: instantiation is two `Arc` bumps plus a
/// fresh machine.
#[derive(Clone)]
pub struct CompiledArtifact {
    /// The original input function.
    pub original: Expr,
    /// The TWIR module.
    pub module: Arc<ProgramModule>,
    /// The executable program.
    pub program: Arc<NativeProgram>,
    /// Checked parameter types.
    pub param_types: Vec<Type>,
    /// The return type.
    pub return_type: Type,
}

impl std::fmt::Debug for CompiledArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledArtifact[{} -> {}]",
            self.param_types
                .iter()
                .map(Type::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            self.return_type
        )
    }
}

impl CompiledArtifact {
    /// Rebinds the artifact to the calling thread as a standalone
    /// function (fresh abort signal, fresh machine, no engine).
    pub fn instantiate(&self) -> CompiledCodeFunction {
        CompiledCodeFunction {
            original: self.original.clone(),
            module: Arc::clone(&self.module),
            program: Arc::clone(&self.program),
            param_types: self.param_types.clone(),
            return_type: self.return_type.clone(),
            engine: None,
            standalone: false,
            abort: AbortSignal::new(),
            machine: Rc::new(RefCell::new(Machine::standalone())),
        }
    }

    /// Rebinds the artifact to the calling thread, hosted in `engine`
    /// (kernel escapes, soft-failure fallback, shared abort signal).
    pub fn instantiate_hosted(&self, engine: Rc<RefCell<Interpreter>>) -> CompiledCodeFunction {
        self.instantiate().hosted(engine)
    }
}

// The whole point of the artifact type: it must stay shareable. If this
// stops compiling, something thread-confined (an `Rc`, a `RefCell`)
// leaked back into the post-compilation data.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledArtifact>();
};

impl CompiledCodeFunction {
    /// Extracts the shareable (`Send + Sync`) portion: the compiled
    /// payload without this thread's engine/abort/machine bindings.
    pub fn artifact(&self) -> CompiledArtifact {
        CompiledArtifact {
            original: self.original.clone(),
            module: Arc::clone(&self.module),
            program: Arc::clone(&self.program),
            param_types: self.param_types.clone(),
            return_type: self.return_type.clone(),
        }
    }

    /// Wraps a compiled program.
    ///
    /// # Errors
    ///
    /// Reports missing parameter/return types (code generation requires a
    /// fully typed TWIR, §4.6).
    pub fn new(
        original: Expr,
        module: Arc<ProgramModule>,
        program: Arc<NativeProgram>,
    ) -> Result<Self, crate::pipeline::CompileError> {
        let main = module.main();
        let mut param_types = vec![Type::void(); main.arity];
        for i in main.instrs() {
            if let wolfram_ir::Instr::LoadArgument { dst, index } = i {
                if let Some(t) = main.var_type(*dst) {
                    param_types[*index] = t.clone();
                }
            }
        }
        let return_type = main.return_type.clone().unwrap_or_else(Type::void);
        Ok(CompiledCodeFunction {
            original,
            module,
            program,
            param_types,
            return_type,
            engine: None,
            standalone: false,
            abort: AbortSignal::new(),
            machine: Rc::new(RefCell::new(Machine::standalone())),
        })
    }

    /// Attaches a hosting engine: kernel escapes and symbolic operations
    /// work, the abort signal is shared, and runtime numeric errors revert
    /// to uncompiled evaluation (F1/F2/F3).
    pub fn hosted(mut self, engine: Rc<RefCell<Interpreter>>) -> Self {
        self.abort = engine.borrow().abort_signal().clone();
        self.engine = Some(engine);
        self
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.param_types.len()
    }

    /// Unboxes an argument expression against a parameter type.
    pub(crate) fn unbox(&self, e: &Expr, ty: &Type) -> Result<ArgVal, RuntimeError> {
        let type_err = |what: &str| {
            RuntimeError::Type(format!(
                "argument {what} does not match parameter type {ty}"
            ))
        };
        match ty {
            Type::Atomic(name) => match &**name {
                "Integer64" | "Integer32" | "Integer16" | "Integer8" => e
                    .as_i64()
                    .map(ArgVal::I)
                    .ok_or_else(|| type_err(&e.to_input_form())),
                "Boolean" => {
                    if e.is_true() {
                        Ok(ArgVal::I(1))
                    } else if e.is_false() {
                        Ok(ArgVal::I(0))
                    } else {
                        Err(type_err(&e.to_input_form()))
                    }
                }
                "Real64" | "Real32" => e
                    .as_f64()
                    .map(ArgVal::F)
                    .ok_or_else(|| type_err(&e.to_input_form())),
                "ComplexReal64" => match e.kind() {
                    wolfram_expr::ExprKind::Complex(re, im) => Ok(ArgVal::C(*re, *im)),
                    _ => e
                        .as_f64()
                        .map(|v| ArgVal::C(v, 0.0))
                        .ok_or_else(|| type_err(&e.to_input_form())),
                },
                "String" => e
                    .as_str()
                    .map(|s| ArgVal::V(Value::Str(Arc::new(s.to_owned()))))
                    .ok_or_else(|| type_err(&e.to_input_form())),
                // The "Expression" type accepts anything (F8).
                "Expression" => Ok(ArgVal::V(Value::Expr(e.clone()))),
                _ => Err(type_err(&e.to_input_form())),
            },
            Type::Constructor { name, args } if &**name == "Tensor" => {
                let t = expr_to_tensor(e).ok_or_else(|| type_err("non-rectangular list"))?;
                let want_rank = match args.get(1) {
                    Some(Type::Literal(r)) => *r as usize,
                    _ => t.rank(),
                };
                if t.rank() != want_rank {
                    return Err(type_err(&format!("rank-{} tensor", t.rank())));
                }
                // Element promotion: integer data passed to a real tensor.
                let elem = args.first();
                let t = match elem {
                    Some(Type::Atomic(n)) if &**n == "Real64" => t.to_f64_tensor(),
                    _ => t,
                };
                let ok = match elem {
                    Some(Type::Atomic(n)) => t.data().element_type() == &**n,
                    _ => true,
                };
                if !ok {
                    return Err(type_err(&format!("{} tensor", t.data().element_type())));
                }
                Ok(ArgVal::V(Value::Tensor(t)))
            }
            _ => Err(type_err(&e.to_input_form())),
        }
    }

    fn unbox_value(&self, v: &Value, ty: &Type) -> Result<ArgVal, RuntimeError> {
        // Values mostly map directly; route exotic cases through exprs.
        match (v, ty) {
            (Value::Function(_), Type::Arrow { .. }) => Ok(ArgVal::V(v.clone())),
            (Value::Tensor(t), Type::Constructor { name, args }) if &**name == "Tensor" => {
                let t = match args.first() {
                    Some(Type::Atomic(n)) if &**n == "Real64" => t.to_f64_tensor(),
                    _ => t.clone(),
                };
                if let Some(Type::Atomic(n)) = args.first() {
                    if t.data().element_type() != &**n {
                        return Err(RuntimeError::Type(format!(
                            "{} tensor does not match {ty}",
                            t.data().element_type()
                        )));
                    }
                }
                Ok(ArgVal::V(Value::Tensor(t)))
            }
            (Value::Expr(e), _) => self.unbox(e, ty),
            _ => {
                let bank = match ty {
                    Type::Atomic(n) => match &**n {
                        "Integer64" | "Integer32" | "Integer16" | "Integer8" | "Boolean" => Bank::I,
                        "Real64" | "Real32" => Bank::F,
                        "ComplexReal64" => Bank::C,
                        _ => Bank::V,
                    },
                    _ => Bank::V,
                };
                ArgVal::from_value(v, bank)
            }
        }
    }

    /// Calls with runtime values (fast path used by benchmarks and other
    /// compiled code).
    ///
    /// # Errors
    ///
    /// Numeric errors soft-fail to the interpreter when hosted; everything
    /// propagates otherwise.
    pub fn call(&self, args: &[Value]) -> Result<Value, RuntimeError> {
        if args.len() != self.arity() {
            return Err(RuntimeError::Type(format!(
                "expected {} arguments, got {}",
                self.arity(),
                args.len()
            )));
        }
        let mut marshaled = Vec::with_capacity(args.len());
        for (v, ty) in args.iter().zip(&self.param_types) {
            marshaled.push(self.unbox_value(v, ty)?);
        }
        match self.run(marshaled) {
            Err(e) if e.is_numeric() && self.engine.is_some() => {
                self.soft_fallback_values(args, &e)
            }
            other => other.map(|r| result_to_value(r, &self.return_type)),
        }
    }

    /// The auxiliary wrapper (F1): "takes the input expression, unpacks and
    /// checks ... if it matches the expected number of arguments and types.
    /// The auxiliary function then calls the user function and packs the
    /// output into an expression."
    ///
    /// # Errors
    ///
    /// Argument mismatches fall back to uncompiled evaluation when hosted;
    /// they are type errors otherwise.
    pub fn call_exprs(&self, args: &[Expr]) -> Result<Expr, RuntimeError> {
        if args.len() != self.arity() {
            return self.mismatch_fallback(
                args,
                &format!("expected {} arguments, got {}", self.arity(), args.len()),
            );
        }
        let mut marshaled = Vec::with_capacity(args.len());
        for (e, ty) in args.iter().zip(&self.param_types) {
            match self.unbox(e, ty) {
                Ok(v) => marshaled.push(v),
                Err(err) => return self.mismatch_fallback(args, &err.to_string()),
            }
        }
        match self.run(marshaled) {
            Ok(r) => Ok(result_to_value(r, &self.return_type).to_expr()),
            Err(e) if e.is_numeric() && self.engine.is_some() => self.soft_fallback_exprs(args, &e),
            Err(e) => Err(e),
        }
    }

    fn run(&self, args: Vec<ArgVal>) -> Result<ArgVal, RuntimeError> {
        // Reuse the cached machine (and its frame pool); re-entrant calls
        // get a fresh one.
        let mut fresh;
        let mut cached;
        let machine: &mut Machine = match self.machine.try_borrow_mut() {
            Ok(guard) => {
                cached = guard;
                &mut cached
            }
            Err(_) => {
                fresh = Machine::standalone();
                &mut fresh
            }
        };
        machine.abort = self.abort.clone();
        match (&self.engine, self.standalone) {
            (Some(engine), false) => {
                let mut guard = engine.borrow_mut();
                machine.call_with_engine(&self.program, 0, args, Some(&mut guard))
            }
            _ => machine.call_with_engine(&self.program, 0, args, None),
        }
    }

    /// Runs with an already-borrowed engine (re-entrant path used when the
    /// compiled function is *installed* and called from inside evaluation).
    fn run_in(&self, engine: &mut Interpreter, args: Vec<ArgVal>) -> Result<ArgVal, RuntimeError> {
        let mut fresh;
        let mut cached;
        let machine: &mut Machine = match self.machine.try_borrow_mut() {
            Ok(guard) => {
                cached = guard;
                &mut cached
            }
            Err(_) => {
                fresh = Machine::standalone();
                &mut fresh
            }
        };
        machine.abort = engine.abort_signal().clone();
        machine.call_with_engine(&self.program, 0, args, Some(engine))
    }

    fn warn(&self, tag: &str) {
        if let Some(engine) = &self.engine {
            engine.borrow_mut().push_output(format!(
                "CompiledCodeFunction: A compiled code runtime error occurred; \
                 reverting to uncompiled evaluation: {tag}"
            ));
        }
    }

    /// F2: "Numerical exceptions are propagated to the top-level auxiliary
    /// function which calls the interpreter to rerun the function."
    fn soft_fallback_values(
        &self,
        args: &[Value],
        err: &RuntimeError,
    ) -> Result<Value, RuntimeError> {
        self.warn(err.tag());
        let engine = self.engine.as_ref().expect("checked by caller");
        let arg_exprs: Vec<Expr> = args.iter().map(Value::to_expr).collect();
        let call = Expr::normal(self.original.clone(), arg_exprs);
        let out = engine.borrow_mut().eval(&call)?;
        Ok(Value::from_expr(&out))
    }

    fn soft_fallback_exprs(&self, args: &[Expr], err: &RuntimeError) -> Result<Expr, RuntimeError> {
        self.warn(err.tag());
        let engine = self.engine.as_ref().expect("checked by caller");
        let call = Expr::normal(self.original.clone(), args.to_vec());
        engine.borrow_mut().eval(&call)
    }

    fn mismatch_fallback(&self, args: &[Expr], why: &str) -> Result<Expr, RuntimeError> {
        match &self.engine {
            Some(engine) => {
                let call = Expr::normal(self.original.clone(), args.to_vec());
                engine.borrow_mut().eval(&call)
            }
            None => Err(RuntimeError::Type(why.to_owned())),
        }
    }

    /// Enables or disables the cached machine's op-frequency/dyad profiler
    /// (the data source for `reproduce -- opstats`).
    pub fn profile_ops(&self, enable: bool) {
        self.machine.borrow_mut().profile_ops(enable);
    }

    /// Takes the cached machine's accumulated execution statistics
    /// (op/dyad frequencies while profiling, frame-pool hits/misses
    /// always), resetting the counters.
    pub fn take_op_stats(&self) -> wolfram_codegen::OpStats {
        self.machine.borrow_mut().take_stats()
    }

    /// Installs this compiled function into its hosting engine under
    /// `name`: interpreted code then calls it "as if they were any other
    /// Wolfram Language function" (F1). Requires a hosting engine.
    ///
    /// # Errors
    ///
    /// Fails without an engine.
    pub fn install(&self, name: &str) -> Result<(), RuntimeError> {
        let Some(engine) = &self.engine else {
            return Err(RuntimeError::Other(
                "install requires a hosting engine".into(),
            ));
        };
        let this = self.clone();
        engine.borrow_mut().register_native(
            name,
            Rc::new(move |interp: &mut Interpreter, args: &[Expr]| {
                // Unbox; on mismatch interpret the original in place.
                if args.len() != this.arity() {
                    let call = Expr::normal(this.original.clone(), args.to_vec());
                    return interp.eval(&call);
                }
                let mut marshaled = Vec::with_capacity(args.len());
                for (e, ty) in args.iter().zip(&this.param_types) {
                    match this.unbox(e, ty) {
                        Ok(v) => marshaled.push(v),
                        Err(_) => {
                            let call = Expr::normal(this.original.clone(), args.to_vec());
                            return interp.eval(&call);
                        }
                    }
                }
                match this.run_in(interp, marshaled) {
                    Ok(r) => Ok(result_to_value(r, &this.return_type).to_expr()),
                    Err(e) if e.is_numeric() => {
                        interp.push_output(format!(
                            "CompiledCodeFunction: A compiled code runtime error occurred; \
                             reverting to uncompiled evaluation: {}",
                            e.tag()
                        ));
                        let call = Expr::normal(this.original.clone(), args.to_vec());
                        interp.eval(&call)
                    }
                    Err(e) => Err(e),
                }
            }),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiler;
    use wolfram_expr::parse;

    fn compile(src: &str) -> CompiledCodeFunction {
        Compiler::default().function_compile_src(src).unwrap()
    }

    fn hosted(src: &str) -> (CompiledCodeFunction, Rc<RefCell<Interpreter>>) {
        let engine = Rc::new(RefCell::new(Interpreter::new()));
        let cf = compile(src).hosted(engine.clone());
        (cf, engine)
    }

    #[test]
    fn aux_wrapper_boxes_and_unboxes() {
        let cf = compile("Function[{Typed[n, \"MachineInteger\"]}, n*n]");
        let out = cf.call_exprs(&[Expr::int(7)]).unwrap();
        assert_eq!(out.as_i64(), Some(49));
        // Wrong type without an engine: hard error.
        assert!(cf.call_exprs(&[Expr::string("x")]).is_err());
        assert!(cf.call_exprs(&[]).is_err());
    }

    #[test]
    fn mismatch_falls_back_to_interpreter_when_hosted() {
        let (cf, _engine) = hosted("Function[{Typed[n, \"MachineInteger\"]}, n*n]");
        // A real argument does not match MachineInteger, but the hosted
        // wrapper reverts to uncompiled evaluation.
        let out = cf.call_exprs(&[Expr::real(2.5)]).unwrap();
        assert_eq!(out.as_f64(), Some(6.25));
    }

    #[test]
    fn soft_numeric_failure_reverts_to_interpreter() {
        // Iterative fib: overflows at n=100, interpreter returns the exact
        // bignum (the paper's cfib[200] behavior).
        let src = "Function[{Typed[n, \"MachineInteger\"]}, \
                   Module[{a = 0, b = 1, k = 0, t = 0}, \
                   While[k < n, t = a + b; a = b; b = t; k = k + 1]; a]]";
        let (cf, engine) = hosted(src);
        let out = cf.call_exprs(&[Expr::int(100)]).unwrap();
        assert_eq!(out.to_full_form(), "354224848179261915075");
        let warnings = engine.borrow_mut().take_output();
        assert!(
            warnings[0].contains("reverting to uncompiled evaluation"),
            "{warnings:?}"
        );
        assert!(warnings[0].contains("IntegerOverflow"), "{warnings:?}");
        // Fast path still native.
        assert_eq!(cf.call(&[Value::I64(50)]).unwrap(), Value::I64(12586269025));
    }

    #[test]
    fn standalone_rejects_numeric_failure() {
        let src = "Function[{Typed[n, \"MachineInteger\"]}, n*n]";
        let cf = compile(src);
        assert_eq!(
            cf.call(&[Value::I64(i64::MAX)]),
            Err(RuntimeError::IntegerOverflow)
        );
    }

    #[test]
    fn installed_functions_integrate_with_interpreter() {
        let (cf, engine) = hosted("Function[{Typed[n, \"MachineInteger\"]}, n + 100]");
        cf.install("fast").unwrap();
        // Interpreted code calls the compiled function seamlessly (F1),
        // including inside higher-order interpreted constructs.
        let out = engine
            .borrow_mut()
            .eval_src("Map[fast, {1, 2, 3}]")
            .unwrap();
        assert_eq!(out.to_full_form(), "List[101, 102, 103]");
        let out = engine.borrow_mut().eval_src("fast[5] + 1").unwrap();
        assert_eq!(out.as_i64(), Some(106));
    }

    #[test]
    fn abort_unwinds_compiled_loop() {
        let (cf, engine) = hosted(
            "Function[{Typed[n, \"MachineInteger\"]}, \
             Module[{i = 0}, While[True, If[i > 3, i = i - 1, i = i + 1]]; i]]",
        );
        engine.borrow().abort_signal().trigger();
        let err = cf.call(&[Value::I64(0)]).unwrap_err();
        assert_eq!(err, RuntimeError::Aborted);
        engine.borrow().abort_signal().reset();
    }

    #[test]
    fn tensors_cross_the_boundary() {
        let cf = compile("Function[{Typed[v, \"Tensor\"[\"Real64\", 1]]}, v[[1]] + v[[-1]]]");
        let out = cf.call_exprs(&[parse("{1.5, 2.0, 3.5}").unwrap()]).unwrap();
        assert_eq!(out.as_f64(), Some(5.0));
        // Integer lists promote to the real element type.
        let out = cf.call_exprs(&[parse("{1, 2, 3}").unwrap()]).unwrap();
        assert_eq!(out.as_f64(), Some(4.0));
        // Rank mismatch is a type error.
        assert!(cf.call_exprs(&[parse("{{1.0}}").unwrap()]).is_err());
    }

    #[test]
    fn symbolic_compiled_function() {
        // §4.5: cf = FunctionCompile[Function[{arg1:Expression,
        // arg2:Expression}, arg1 + arg2]]; cf[1,2] -> 3; cf[x,y] -> x+y.
        let (cf, _engine) = hosted(
            "Function[{Typed[arg1, \"Expression\"], Typed[arg2, \"Expression\"]}, arg1 + arg2]",
        );
        let out = cf.call_exprs(&[Expr::int(1), Expr::int(2)]).unwrap();
        assert_eq!(out.as_i64(), Some(3));
        let out = cf.call_exprs(&[Expr::sym("x"), Expr::sym("y")]).unwrap();
        assert_eq!(out.to_full_form(), "Plus[x, y]");
        let out = cf
            .call_exprs(&[Expr::sym("x"), parse("Cos[y] + Sin[z]").unwrap()])
            .unwrap();
        assert!(out.to_full_form().contains("Cos[y]"), "{out:?}");
    }

    #[test]
    fn gradual_compilation_via_kernel_escape() {
        // StringReverse is not compilable: it escapes to the interpreter
        // mid-function (F9).
        let (cf, _engine) = hosted("Function[{Typed[s, \"String\"]}, StringReverse[s]]");
        let out = cf.call_exprs(&[Expr::string("abc")]).unwrap();
        assert_eq!(out.as_str(), Some("cba"));
    }

    #[test]
    fn memory_instrumentation_balances() {
        wolfram_runtime::memory::reset_stats();
        let cf = compile(
            "Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]]}, \
             Module[{w = v}, w[[1]] = 5; Length[w]]]",
        );
        let t = Value::Tensor(wolfram_runtime::Tensor::from_i64(vec![1, 2, 3]));
        assert_eq!(cf.call(&[t]).unwrap(), Value::I64(3));
        let stats = wolfram_runtime::memory::stats();
        assert!(stats.balanced(), "{stats:?}");
        assert!(
            stats.acquires > 0,
            "managed values were bracketed: {stats:?}"
        );
    }
}
