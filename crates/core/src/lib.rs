//! The Wolfram Language compiler (§4): the paper's primary contribution.
//!
//! A staged pipeline — `MExpr -> WIR -> TWIR -> code generation` — written
//! as an independently distributable package over the engine substrate:
//!
//! - [`macros`] — the hygienic pattern-based macro system (§4.2) with
//!   `RegisterMacro` and `Conditioned` predicates on compiler options.
//! - [`binding`] — binding analysis over the MExpr visitor API: scoped
//!   variables are renamed apart, scoping constructs desugared, slot
//!   functions named, and escaping variables computed (§4.2).
//! - [`lower`] — direct-to-SSA lowering into WIR (§4.3), with lambda
//!   lifting/closure conversion and automatic `KernelFunction` escapes for
//!   undeclared functions (F9 gradual compilation).
//! - [`infer`] — constraint generation over the WIR and the constraint-
//!   graph solve producing a TWIR (§4.4).
//! - [`resolve`] — function resolution (§4.5): overload selection results
//!   are rewritten to mangled runtime primitives, source implementations
//!   are instantiated at their monomorphic types, and forced/automatic
//!   inlining is applied.
//! - [`pipeline`] — [`Compiler`] / [`CompilerOptions`]: `FunctionCompile`,
//!   per-stage artifacts (`compile_to_ast`, `compile_to_ir`), pass timing,
//!   and the export entry points (F10).
//! - [`engine`] — [`CompiledCodeFunction`]: the auxiliary boxing/unboxing
//!   wrapper (F1), soft numeric failure with interpreter re-run (F2),
//!   abortability (F3), installation into a hosting engine, and the
//!   `FindRoot` auto-compilation hook.

pub mod binding;
pub mod engine;
pub mod infer;
pub mod lower;
pub mod macros;
pub mod pipeline;
pub mod resolve;
pub mod stdlib;
pub mod stream_entry;

pub use engine::{CompiledArtifact, CompiledCodeFunction};
pub use macros::{MacroEnvironment, MacroRule};
pub use pipeline::{CompileError, Compiler, CompilerOptions, TargetSystem};
pub use resolve::InlinePolicy;
pub use stdlib::builtin_type_environment;
pub use stream_entry::StreamCaller;
