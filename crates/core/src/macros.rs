//! The macro system (§4.2): hygienic pattern-based substitution for
//! desugaring and "always-safe" AST-level optimizations.
//!
//! "Macros are registered within an environment ... rules ... are matched
//! based on the rules' pattern specificity ... Macros are evaluated in
//! depth-first order and terminate when a fixed point is reached." Rules
//! can be `Conditioned` on compiler options (§4.7's CUDA example).

use crate::pipeline::CompilerOptions;
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use wolfram_expr::pattern::compare_specificity;
use wolfram_expr::rules::apply_bindings;
use wolfram_expr::{match_pattern, Bindings, Expr, ExprKind, MatchCtx, Rule, Symbol};

/// A predicate over compiler options gating a macro rule (`Conditioned`).
pub type MacroPredicate = Rc<dyn Fn(&CompilerOptions) -> bool>;

/// One registered macro rule.
#[derive(Clone)]
pub struct MacroRule {
    /// The rewrite rule.
    pub rule: Rule,
    /// Optional `Conditioned` predicate.
    pub condition: Option<MacroPredicate>,
}

impl std::fmt::Debug for MacroRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MacroRule({} -> {}{})",
            self.rule.lhs.to_input_form(),
            self.rule.rhs.to_input_form(),
            if self.condition.is_some() {
                ", conditioned"
            } else {
                ""
            }
        )
    }
}

/// A macro environment: rules grouped by head symbol, kept in specificity
/// order.
#[derive(Debug, Clone, Default)]
pub struct MacroEnvironment {
    rules: HashMap<String, Vec<MacroRule>>,
    hygiene_counter: Rc<Cell<u64>>,
}

impl MacroEnvironment {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default environment bundled with the compiler.
    pub fn builtin() -> Self {
        let mut env = Self::new();
        register_default_macros(&mut env);
        env
    }

    /// Registers a rule (the `RegisterMacro` API). The rule's left-hand
    /// side must be a normal expression; rules are kept sorted by pattern
    /// specificity within their head.
    ///
    /// # Panics
    ///
    /// Panics if the left-hand side has no symbol head.
    pub fn register(&mut self, rule: Rule, condition: Option<MacroPredicate>) {
        let head = rule
            .lhs
            .head_symbol()
            .expect("macro pattern must have a symbol head")
            .name()
            .to_owned();
        let rules = self.rules.entry(head).or_default();
        let entry = MacroRule { rule, condition };
        let pos = rules
            .iter()
            .position(|r| compare_specificity(&entry.rule.lhs, &r.rule.lhs).is_lt())
            .unwrap_or(rules.len());
        rules.insert(pos, entry);
    }

    /// Registers rules given as source text: a single rule or a list.
    ///
    /// # Panics
    ///
    /// Panics on parse errors (macro registration is compile-time code).
    pub fn register_src(&mut self, src: &str) {
        let e = wolfram_expr::parse(src).expect("macro rule source");
        for rule in Rule::list_from_expr(&e).expect("macro rules") {
            self.register(rule, None);
        }
    }

    /// Number of registered rules.
    pub fn rule_count(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// Expands `e` to a fixed point: depth-first, most-specific rule first,
    /// hygienic (fresh `Module` variables introduced by a rule body are
    /// renamed per application).
    pub fn expand(&self, e: &Expr, opts: &CompilerOptions) -> Expr {
        const MAX_ROUNDS: usize = 512;
        let mut current = e.clone();
        for _ in 0..MAX_ROUNDS {
            let next = self.expand_once(&current, opts);
            if next == current {
                return current;
            }
            current = next;
        }
        current
    }

    /// One depth-first pass.
    fn expand_once(&self, e: &Expr, opts: &CompilerOptions) -> Expr {
        // Children first (depth-first evaluation order).
        let rebuilt = match e.kind() {
            ExprKind::Normal(n) => {
                let head = self.expand_once(n.head(), opts);
                let args: Vec<Expr> = n.args().iter().map(|a| self.expand_once(a, opts)).collect();
                Expr::normal(head, args)
            }
            _ => e.clone(),
        };
        let Some(head) = rebuilt.head_symbol() else {
            return rebuilt;
        };
        let Some(rules) = self.rules.get(head.name()) else {
            return rebuilt;
        };
        for r in rules {
            if let Some(cond) = &r.condition {
                if !cond(opts) {
                    continue;
                }
            }
            let mut bindings = Bindings::new();
            if match_pattern(
                &rebuilt,
                &r.rule.lhs,
                &mut bindings,
                &mut MatchCtx::default(),
            ) {
                let rhs = apply_bindings(&r.rule.rhs, &bindings);
                return self.hygienify(&rhs, &bindings);
            }
        }
        rebuilt
    }

    /// Hygiene: `Module`/`With` variables introduced by the rule body (not
    /// bound from the pattern) are renamed fresh per application, so macro
    /// expansions cannot capture user variables.
    fn hygienify(&self, rhs: &Expr, bindings: &Bindings) -> Expr {
        let mut renames: HashMap<Symbol, Expr> = HashMap::new();
        let mut out = rhs.clone();
        let mut to_rename: Vec<Symbol> = Vec::new();
        wolfram_expr::walk(rhs, &mut |node| {
            if node.has_head("Module") || node.has_head("With") {
                if let Some(vars) = node.args().first() {
                    for spec in vars.args() {
                        let sym = spec
                            .as_symbol()
                            .or_else(|| spec.args().first().and_then(Expr::as_symbol));
                        if let Some(sym) = sym {
                            // Pattern-bound variables belong to the caller.
                            let from_pattern = bindings
                                .values()
                                .any(|v| v.as_symbol().as_ref() == Some(&sym));
                            if !from_pattern && !to_rename.contains(&sym) {
                                to_rename.push(sym);
                            }
                        }
                    }
                }
            }
            wolfram_expr::VisitAction::Descend
        });
        for sym in to_rename {
            let n = self.hygiene_counter.get();
            self.hygiene_counter.set(n + 1);
            renames.insert(sym.clone(), Expr::sym(&format!("{}$macro{n}", sym.name())));
        }
        if !renames.is_empty() {
            out = wolfram_expr::rules::substitute_symbols(&out, &renames);
        }
        out
    }
}

/// The default desugarings shipped with the compiler.
fn register_default_macros(env: &mut MacroEnvironment) {
    // The paper's §4.2 And rules, adapted to the typed Boolean world:
    // short-circuiting via If. (Or dually.)
    env.register_src(
        "{
            And[x_, y_, rest__] :> And[And[x, y], rest],
            And[False, _] -> False,
            And[_, False] -> False,
            And[True, rest_] :> rest,
            And[x_] :> x,
            And[x_, y_] :> If[x, y, False],
            Or[x_, y_, rest__] :> Or[Or[x, y], rest],
            Or[True, _] -> True,
            Or[False, rest_] :> rest,
            Or[x_] :> x,
            Or[x_, y_] :> If[x, True, y]
        }",
    );
    // Which -> If chains.
    env.register_src(
        "{
            Which[c_, v_] :> If[c, v, Null],
            Which[c_, v_, rest__] :> If[c, v, Which[rest]]
        }",
    );
    // Compound assignment and stepping (statement semantics).
    env.register_src(
        "{
            Increment[x_] :> Set[x, Plus[x, 1]],
            Decrement[x_] :> Set[x, Subtract[x, 1]],
            PreIncrement[x_] :> Set[x, Plus[x, 1]],
            PreDecrement[x_] :> Set[x, Subtract[x, 1]],
            AddTo[x_, v_] :> Set[x, Plus[x, v]],
            SubtractFrom[x_, v_] :> Set[x, Subtract[x, v]],
            TimesBy[x_, v_] :> Set[x, Times[x, v]],
            DivideBy[x_, v_] :> Set[x, Divide[x, v]]
        }",
    );
    // Do loops desugar to While with a hygienic counter when none is
    // given, or the user's iteration symbol otherwise.
    env.register_src(
        "{
            Do[body_, {i_, n_}] :> Module[{i}, i = 1; While[i <= n, body; i = i + 1]],
            Do[body_, {i_, a_, b_}] :> Module[{i}, i = a; While[i <= b, body; i = i + 1]],
            Do[body_, n_] :> Module[{iter}, iter = 1; While[iter <= n, body; iter = iter + 1]]
        }",
    );
    // n-ary (Flat) heads desugar to binary nests for the typed world.
    env.register_src(
        "{
            Plus[x_, y_, rest__] :> Plus[Plus[x, y], rest],
            Times[x_, y_, rest__] :> Times[Times[x, y], rest],
            StringJoin[x_, y_, rest__] :> StringJoin[StringJoin[x, y], rest],
            Less[x_, y_, rest__] :> And[Less[x, y], Less[y, rest]],
            Greater[x_, y_, rest__] :> And[Greater[x, y], Greater[y, rest]],
            LessEqual[x_, y_, rest__] :> And[LessEqual[x, y], LessEqual[y, rest]],
            GreaterEqual[x_, y_, rest__] :> And[GreaterEqual[x, y], GreaterEqual[y, rest]],
            Equal[x_, y_, rest__] :> And[Equal[x, y], Equal[y, rest]]
        }",
    );
    // Always-safe AST optimizations.
    env.register_src(
        "{
            Plus[x_] :> x,
            Times[x_] :> x,
            Not[Not[x_]] :> x,
            Sqrt[x_] :> Power[x, 0.5]
        }",
    );
    // Table over an integer iterator desugars to Map over Range: the
    // functional form compiles through the stdlib source implementations
    // (and, under a CUDA target, inherits the Map -> CUDA`Map rewrite).
    env.register_src("Table[body_, {i_, n_}] :> Map[Function[{i}, body], Range[n]]");
    // RandomReal range form becomes a dedicated primitive call.
    env.register_src("RandomReal[{a_, b_}] :> Native`RandomRange[a, b]");
    // Abs of a difference etc. are left to the type-directed resolver.
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    fn expand(src: &str) -> String {
        let env = MacroEnvironment::builtin();
        env.expand(&parse(src).unwrap(), &CompilerOptions::default())
            .to_full_form()
    }

    #[test]
    fn and_desugars_with_short_circuit() {
        assert_eq!(expand("a && b"), "If[a, b, False]");
        assert_eq!(expand("And[False, a]"), "False");
        assert_eq!(expand("And[True, a]"), "a");
        assert_eq!(expand("a && b && c"), "If[If[a, b, False], c, False]");
        assert_eq!(expand("a || b"), "If[a, True, b]");
    }

    #[test]
    fn which_desugars() {
        assert_eq!(
            expand("Which[a, 1, b, 2]"),
            "If[a, 1, Which[b, 2]]".replace("Which[b, 2]", "If[b, 2, Null]")
        );
    }

    #[test]
    fn assignment_forms_desugar() {
        assert_eq!(expand("i++"), "Set[i, Plus[i, 1]]");
        assert_eq!(expand("i--"), "Set[i, Subtract[i, 1]]");
        assert_eq!(expand("x += 2"), "Set[x, Plus[x, 2]]");
    }

    #[test]
    fn do_desugars_to_while_with_hygiene() {
        let out = expand("Do[f[], 5]");
        assert!(out.contains("While"), "{out}");
        assert!(out.contains("iter$macro"), "hygienic counter: {out}");
        // User-named iterator keeps its name.
        let out = expand("Do[f[k], {k, 10}]");
        assert!(out.contains("f[k]"), "{out}");
        assert!(
            !out.contains("k$macro"),
            "pattern-bound k must not be renamed: {out}"
        );
    }

    #[test]
    fn specificity_orders_rules() {
        // And[False, _] must match before And[x_, y_].
        assert_eq!(expand("And[False, expensive]"), "False");
    }

    #[test]
    fn fixed_point_reached() {
        assert_eq!(expand("Plus[Plus[x]]"), "x");
        assert_eq!(expand("Not[Not[Not[b]]]"), "Not[b]");
    }

    #[test]
    fn conditioned_cuda_macro() {
        // The §4.7 example: rewrite Map -> CUDA`Map when TargetSystem is
        // CUDA.
        let mut env = MacroEnvironment::builtin();
        let rule = Rule::from_expr(&parse("Map[f_, lst_] :> CUDA`Map[f, lst]").unwrap()).unwrap();
        env.register(
            rule,
            Some(Rc::new(|opts: &CompilerOptions| {
                opts.target_system == crate::pipeline::TargetSystem::Cuda
            })),
        );
        let e = parse("Map[g, data]").unwrap();
        let default_out = env.expand(&e, &CompilerOptions::default());
        assert_eq!(default_out.to_full_form(), "Map[g, data]");
        let cuda_opts = CompilerOptions {
            target_system: crate::pipeline::TargetSystem::Cuda,
            ..CompilerOptions::default()
        };
        let cuda_out = env.expand(&e, &cuda_opts);
        assert_eq!(cuda_out.to_full_form(), "CUDA`Map[g, data]");
    }

    #[test]
    fn user_rules_extend_default_env() {
        let mut env = MacroEnvironment::builtin();
        let before = env.rule_count();
        env.register_src("Square[x_] :> Times[x, x]");
        assert_eq!(env.rule_count(), before + 1);
        let out = env.expand(
            &parse("Square[Square[y]]").unwrap(),
            &CompilerOptions::default(),
        );
        assert_eq!(out.to_full_form(), "Times[Times[y, y], Times[y, y]]");
    }

    #[test]
    fn sqrt_becomes_power() {
        assert_eq!(expand("Sqrt[x]"), "Power[x, 0.5]");
    }
}
