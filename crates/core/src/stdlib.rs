//! The default builtin type environment (§4.4): polymorphic, qualified
//! declarations for the compiled function vocabulary, mapped onto runtime
//! primitives or Wolfram-source implementations.

use std::sync::Arc;
use wolfram_expr::parse;
use wolfram_types::{FunctionImpl, Type, TypeEnvironment};

/// Mangles a type for primitive/function specialization names
/// (`Integer64`, `TensorInteger64R1`, ...).
pub fn mangle_type(t: &Type) -> String {
    match t {
        Type::Atomic(name) => name.to_string(),
        Type::Constructor { name, args } if &**name == "Tensor" => {
            let elem = args.first().map(mangle_type).unwrap_or_default();
            let rank = match args.get(1) {
                Some(Type::Literal(r)) => r.to_string(),
                _ => "N".into(),
            };
            format!("Tensor{elem}R{rank}")
        }
        Type::Arrow { params, ret } => {
            let ps: Vec<String> = params.iter().map(mangle_type).collect();
            format!("Fn{}To{}", ps.join(""), mangle_type(ret))
        }
        other => other
            .to_string()
            .replace([' ', ',', '[', ']', '(', ')'], ""),
    }
}

/// The specialization name of a primitive or source function at concrete
/// parameter types: `checked_binary_plus$Integer64$Integer64`.
pub fn mangle(base: &str, params: &[Type]) -> String {
    let mut out = base.to_owned();
    for p in params {
        out.push('$');
        out.push_str(&mangle_type(p));
    }
    out
}

fn scheme(src: &str) -> Type {
    Type::from_expr(&parse(src).expect("stdlib scheme source")).expect("stdlib scheme")
}

fn prim(env: &mut TypeEnvironment, name: &str, spec: &str, base: &str) {
    env.declare_function(name, scheme(spec), FunctionImpl::Primitive(Arc::from(base)));
}

fn source(env: &mut TypeEnvironment, name: &str, spec: &str, body_src: &str, inline: bool) {
    let body = parse(body_src).expect("stdlib source body");
    env.declare_function(name, scheme(spec), FunctionImpl::Source(body));
    if inline {
        env.set_inline_always(name);
    }
}

/// Builds the default builtin type environment. Approximately 60 function
/// names across arithmetic, comparison, tensor, string, complex, symbolic,
/// and random functionality areas (the production compiler's ~2000
/// functions over 31 areas scale down to the areas this reproduction
/// exercises).
#[allow(clippy::too_many_lines)]
pub fn builtin_type_environment() -> TypeEnvironment {
    let mut env = TypeEnvironment::new();

    // ---- scalar arithmetic (Number-polymorphic) ----
    for (name, base) in [
        ("Plus", "checked_binary_plus"),
        ("Subtract", "checked_binary_subtract"),
        ("Times", "checked_binary_times"),
    ] {
        prim(
            &mut env,
            name,
            "TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, {\"a\", \"a\"} -> \"a\"]",
            base,
        );
        // Element-wise tensor overload (rank polymorphic).
        prim(
            &mut env,
            name,
            "TypeForAll[{\"a\", \"n\"}, {Element[\"a\", \"Number\"]}, \
             {\"Tensor\"[\"a\", \"n\"], \"Tensor\"[\"a\", \"n\"]} -> \"Tensor\"[\"a\", \"n\"]]",
            match base {
                "checked_binary_plus" => "tensor_plus",
                "checked_binary_subtract" => "tensor_subtract",
                _ => "tensor_times",
            },
        );
        // Symbolic overload (F8).
        prim(
            &mut env,
            name,
            "{\"Expression\", \"Expression\"} -> \"Expression\"",
            match base {
                "checked_binary_plus" => "expr_plus",
                "checked_binary_subtract" => "expr_subtract",
                _ => "expr_times",
            },
        );
    }
    prim(
        &mut env,
        "Divide",
        "{\"Real64\", \"Real64\"} -> \"Real64\"",
        "checked_binary_divide",
    );
    prim(
        &mut env,
        "Divide",
        "{\"ComplexReal64\", \"ComplexReal64\"} -> \"ComplexReal64\"",
        "checked_binary_divide",
    );
    prim(
        &mut env,
        "Power",
        "{\"Integer64\", \"Integer64\"} -> \"Integer64\"",
        "checked_binary_power",
    );
    prim(
        &mut env,
        "Power",
        "{\"Real64\", \"Real64\"} -> \"Real64\"",
        "checked_binary_power",
    );
    // Without this overload `x^n` with real base and integer exponent
    // resolves via ComplexReal64 promotion, and the result *type* (complex
    // with zero imaginary part) diverges from the interpreter's real.
    prim(
        &mut env,
        "Power",
        "{\"Real64\", \"Integer64\"} -> \"Real64\"",
        "checked_binary_power",
    );
    prim(
        &mut env,
        "Power",
        "{\"ComplexReal64\", \"Integer64\"} -> \"ComplexReal64\"",
        "checked_binary_power",
    );
    prim(
        &mut env,
        "Power",
        "{\"Expression\", \"Expression\"} -> \"Expression\"",
        "expr_power",
    );
    prim(
        &mut env,
        "Minus",
        "TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, {\"a\"} -> \"a\"]",
        "checked_unary_minus",
    );
    prim(
        &mut env,
        "Abs",
        "{\"Integer64\"} -> \"Integer64\"",
        "checked_unary_abs",
    );
    prim(
        &mut env,
        "Abs",
        "{\"Real64\"} -> \"Real64\"",
        "checked_unary_abs",
    );
    prim(
        &mut env,
        "Abs",
        "{\"ComplexReal64\"} -> \"Real64\"",
        "complex_abs",
    );
    prim(
        &mut env,
        "Sign",
        "{\"Integer64\"} -> \"Integer64\"",
        "unary_sign",
    );
    prim(&mut env, "Sign", "{\"Real64\"} -> \"Real64\"", "unary_sign");
    prim(
        &mut env,
        "Mod",
        "{\"Integer64\", \"Integer64\"} -> \"Integer64\"",
        "checked_binary_mod",
    );
    prim(
        &mut env,
        "Mod",
        "{\"Real64\", \"Real64\"} -> \"Real64\"",
        "checked_binary_mod",
    );
    prim(
        &mut env,
        "Quotient",
        "{\"Integer64\", \"Integer64\"} -> \"Integer64\"",
        "checked_binary_quotient",
    );
    // The paper's §4.4 Min declaration, verbatim shape.
    for (name, base) in [("Min", "binary_min"), ("Max", "binary_max")] {
        prim(
            &mut env,
            name,
            "TypeForAll[{\"a\"}, {Element[\"a\", \"Ordered\"]}, {\"a\", \"a\"} -> \"a\"]",
            base,
        );
    }

    // ---- comparisons and logic ----
    for (name, base) in [
        ("Less", "compare_less"),
        ("LessEqual", "compare_less_equal"),
        ("Greater", "compare_greater"),
        ("GreaterEqual", "compare_greater_equal"),
    ] {
        prim(
            &mut env,
            name,
            "TypeForAll[{\"a\"}, {Element[\"a\", \"Ordered\"]}, {\"a\", \"a\"} -> \"Boolean\"]",
            base,
        );
    }
    for (name, base) in [
        ("Equal", "compare_equal"),
        ("Unequal", "compare_unequal"),
        ("SameQ", "compare_equal"),
        ("UnsameQ", "compare_unequal"),
    ] {
        prim(
            &mut env,
            name,
            "TypeForAll[{\"a\"}, {Element[\"a\", \"Equatable\"]}, {\"a\", \"a\"} -> \"Boolean\"]",
            base,
        );
        prim(
            &mut env,
            name,
            "{\"ComplexReal64\", \"ComplexReal64\"} -> \"Boolean\"",
            base,
        );
    }
    prim(&mut env, "Not", "{\"Boolean\"} -> \"Boolean\"", "unary_not");
    prim(&mut env, "Boole", "{\"Boolean\"} -> \"Integer64\"", "boole");

    // ---- elementary functions ----
    for (name, base) in [
        ("Sin", "unary_sin"),
        ("Cos", "unary_cos"),
        ("Tan", "unary_tan"),
        ("Exp", "unary_exp"),
        ("Log", "unary_log"),
        ("ArcTan", "unary_arctan"),
        ("ArcSin", "unary_arcsin"),
        ("ArcCos", "unary_arccos"),
    ] {
        prim(&mut env, name, "{\"Real64\"} -> \"Real64\"", base);
    }
    prim(
        &mut env,
        "ArcTan",
        "{\"Real64\", \"Real64\"} -> \"Real64\"",
        "binary_arctan2",
    );
    // Symbolic overloads (F8): elementary functions of a boxed Expression
    // stay symbolic, normalized by the hosting engine.
    for name in [
        "Sin", "Cos", "Tan", "Exp", "Log", "ArcTan", "ArcSin", "ArcCos", "Abs",
    ] {
        prim(
            &mut env,
            name,
            "{\"Expression\"} -> \"Expression\"",
            &format!("expr_unary_{name}"),
        );
    }
    for (name, base) in [
        ("Floor", "unary_floor"),
        ("Ceiling", "unary_ceiling"),
        ("Round", "unary_round"),
    ] {
        prim(&mut env, name, "{\"Real64\"} -> \"Integer64\"", base);
        prim(&mut env, name, "{\"Integer64\"} -> \"Integer64\"", base);
    }
    prim(&mut env, "N", "{\"Integer64\"} -> \"Real64\"", "convert");
    prim(&mut env, "N", "{\"Real64\"} -> \"Real64\"", "convert");

    // ---- bit operations and number theory ----
    for (name, base) in [
        ("BitAnd", "bit_and"),
        ("BitOr", "bit_or"),
        ("BitXor", "bit_xor"),
        ("BitShiftLeft", "bit_shift_left"),
        ("BitShiftRight", "bit_shift_right"),
    ] {
        prim(
            &mut env,
            name,
            "{\"Integer64\", \"Integer64\"} -> \"Integer64\"",
            base,
        );
    }
    prim(
        &mut env,
        "GCD",
        "{\"Integer64\", \"Integer64\"} -> \"Integer64\"",
        "binary_gcd",
    );
    // Factorial overflows machine integers at 21! — the canonical soft-
    // failure (F2) demo after cfib.
    prim(
        &mut env,
        "Factorial",
        "{\"Integer64\"} -> \"Integer64\"",
        "unary_factorial",
    );
    prim(
        &mut env,
        "PowerMod",
        "{\"Integer64\", \"Integer64\", \"Integer64\"} -> \"Integer64\"",
        "power_mod",
    );
    // EvenQ/OddQ as *source* implementations: instantiated and inlined by
    // function resolution (exercises FunctionImpl::Source end to end).
    source(
        &mut env,
        "EvenQ",
        "{\"Integer64\"} -> \"Boolean\"",
        "Function[{n}, Mod[n, 2] == 0]",
        true,
    );
    source(
        &mut env,
        "OddQ",
        "{\"Integer64\"} -> \"Boolean\"",
        "Function[{n}, Mod[n, 2] == 1]",
        true,
    );

    // ---- complex numbers ----
    prim(
        &mut env,
        "Complex",
        "{\"Real64\", \"Real64\"} -> \"ComplexReal64\"",
        "complex_construct",
    );
    prim(
        &mut env,
        "Re",
        "{\"ComplexReal64\"} -> \"Real64\"",
        "complex_re",
    );
    prim(
        &mut env,
        "Im",
        "{\"ComplexReal64\"} -> \"Real64\"",
        "complex_im",
    );
    prim(&mut env, "Re", "{\"Real64\"} -> \"Real64\"", "convert");
    prim(
        &mut env,
        "Conjugate",
        "{\"ComplexReal64\"} -> \"ComplexReal64\"",
        "complex_conjugate",
    );

    // ---- tensors ----
    prim(
        &mut env,
        "Length",
        "TypeForAll[{\"a\", \"n\"}, {\"Tensor\"[\"a\", \"n\"]} -> \"Integer64\"]",
        "tensor_length",
    );
    prim(
        &mut env,
        "Part",
        "TypeForAll[{\"a\"}, {\"Tensor\"[\"a\", 1], \"Integer64\"} -> \"a\"]",
        "tensor_part_1",
    );
    prim(
        &mut env,
        "Part",
        "TypeForAll[{\"a\"}, {\"Tensor\"[\"a\", 2], \"Integer64\", \"Integer64\"} -> \"a\"]",
        "tensor_part_2",
    );
    prim(
        &mut env,
        "Part$Set",
        "TypeForAll[{\"a\"}, {\"Tensor\"[\"a\", 1], \"Integer64\", \"a\"} -> \"Tensor\"[\"a\", 1]]",
        "tensor_set_1",
    );
    prim(
        &mut env,
        "Part$Set",
        "TypeForAll[{\"a\"}, {\"Tensor\"[\"a\", 2], \"Integer64\", \"Integer64\", \"a\"} \
         -> \"Tensor\"[\"a\", 2]]",
        "tensor_set_2",
    );
    prim(
        &mut env,
        "ConstantArray",
        "TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, {\"a\", \"Integer64\"} -> \
         \"Tensor\"[\"a\", 1]]",
        "tensor_fill_1",
    );
    prim(
        &mut env,
        "ConstantArray",
        "TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, \
         {\"a\", \"Integer64\", \"Integer64\"} -> \"Tensor\"[\"a\", 2]]",
        "tensor_fill_2",
    );
    for arity in 1..=8usize {
        let params: Vec<String> = (0..arity).map(|_| "\"a\"".to_owned()).collect();
        let spec = format!(
            "TypeForAll[{{\"a\"}}, {{Element[\"a\", \"Number\"]}}, {{{}}} -> \"Tensor\"[\"a\", 1]]",
            params.join(", ")
        );
        prim(&mut env, "List", &spec, "list_construct");
    }
    prim(
        &mut env,
        "Dot",
        "TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, \
         {\"Tensor\"[\"a\", 1], \"Tensor\"[\"a\", 1]} -> \"a\"]",
        "dot_vector",
    );
    prim(
        &mut env,
        "Dot",
        "{\"Tensor\"[\"Real64\", 2], \"Tensor\"[\"Real64\", 2]} -> \"Tensor\"[\"Real64\", 2]",
        "dot_matrix",
    );
    prim(
        &mut env,
        "Dot",
        "{\"Tensor\"[\"Real64\", 2], \"Tensor\"[\"Real64\", 1]} -> \"Tensor\"[\"Real64\", 1]",
        "dot_matrix_vector",
    );

    // Tensor (+) scalar broadcast (Listable arithmetic against a scalar;
    // the scalar promotes to the element type by the usual cost rules).
    for (name, tbase, sbase) in [
        ("Plus", "tensor_scalar_plus", "scalar_tensor_plus"),
        (
            "Subtract",
            "tensor_scalar_subtract",
            "scalar_tensor_subtract",
        ),
        ("Times", "tensor_scalar_times", "scalar_tensor_times"),
    ] {
        prim(
            &mut env,
            name,
            "TypeForAll[{\"a\", \"n\"}, {Element[\"a\", \"Number\"]}, \
             {\"Tensor\"[\"a\", \"n\"], \"a\"} -> \"Tensor\"[\"a\", \"n\"]]",
            tbase,
        );
        prim(
            &mut env,
            name,
            "TypeForAll[{\"a\", \"n\"}, {Element[\"a\", \"Number\"]}, \
             {\"a\", \"Tensor\"[\"a\", \"n\"]} -> \"Tensor\"[\"a\", \"n\"]]",
            sbase,
        );
    }
    prim(
        &mut env,
        "Native`SetRow",
        "TypeForAll[{\"a\"}, {\"Tensor\"[\"a\", 2], \"Integer64\", \"Tensor\"[\"a\", 1]} \
         -> \"Tensor\"[\"a\", 2]]",
        "tensor_set_row",
    );
    // NestList over rank-1 tensors: a *source* implementation building the
    // rank-2 result row by row (the random-walk benchmark's workhorse).
    source(
        &mut env,
        "NestList",
        "TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, \
         {{\"Tensor\"[\"a\", 1]} -> \"Tensor\"[\"a\", 1], \"Tensor\"[\"a\", 1], \"Integer64\"} \
         -> \"Tensor\"[\"a\", 2]]",
        "Function[{f, x, n}, \
         Module[{cols, out, cur, i}, \
           cols = Length[x]; \
           out = ConstantArray[Part[x, 1], n + 1, cols]; \
           out = Native`SetRow[out, 1, x]; \
           cur = x; i = 1; \
           While[i <= n, cur = f[cur]; out = Native`SetRow[out, i + 1, cur]; i = i + 1]; \
           out]]",
        false,
    );

    // Range/Total/Map/Fold as *source* implementations over rank-1
    // tensors: instantiated per monomorphic type by function resolution
    // (untyped lambdas passed to them are typed through the closure's
    // arrow constraint).
    source(
        &mut env,
        "Range",
        "{\"Integer64\"} -> \"Tensor\"[\"Integer64\", 1]",
        "Function[{n}, \
         Module[{out, i}, \
           out = ConstantArray[0, n]; i = 1; \
           While[i <= n, out[[i]] = i; i = i + 1]; \
           out]]",
        false,
    );
    source(
        &mut env,
        "Total",
        "TypeForAll[{\"a\"}, {Element[\"a\", \"Number\"]}, \
         {\"Tensor\"[\"a\", 1]} -> \"a\"]",
        "Function[{v}, \
         Module[{acc, i, n}, \
           n = Length[v]; acc = Part[v, 1]; i = 2; \
           While[i <= n, acc = acc + Part[v, i]; i = i + 1]; \
           acc]]",
        false,
    );
    source(
        &mut env,
        "Map",
        "TypeForAll[{\"a\", \"b\"}, \
         {Element[\"a\", \"Number\"], Element[\"b\", \"Number\"]}, \
         {{\"a\"} -> \"b\", \"Tensor\"[\"a\", 1]} -> \"Tensor\"[\"b\", 1]]",
        "Function[{f, v}, \
         Module[{out, i, n}, \
           n = Length[v]; \
           out = ConstantArray[f[Part[v, 1]], n]; i = 2; \
           While[i <= n, out[[i]] = f[Part[v, i]]; i = i + 1]; \
           out]]",
        false,
    );
    source(
        &mut env,
        "Nest",
        "TypeForAll[{\"a\"}, {{\"a\"} -> \"a\", \"a\", \"Integer64\"} -> \"a\"]",
        "Function[{f, x, n}, \
         Module[{cur, i}, \
           cur = x; i = 1; \
           While[i <= n, cur = f[cur]; i = i + 1]; \
           cur]]",
        false,
    );
    source(
        &mut env,
        "Fold",
        "TypeForAll[{\"a\", \"b\"}, \
         {{\"a\", \"b\"} -> \"a\", \"a\", \"Tensor\"[\"b\", 1]} -> \"a\"]",
        "Function[{f, x, v}, \
         Module[{acc, i, n}, \
           acc = x; i = 1; n = Length[v]; \
           While[i <= n, acc = f[acc, Part[v, i]]; i = i + 1]; \
           acc]]",
        false,
    );

    // ---- strings (L1 territory: the new compiler's headline win) ----
    prim(
        &mut env,
        "StringLength",
        "{\"String\"} -> \"Integer64\"",
        "string_length",
    );
    prim(
        &mut env,
        "ToCharacterCode",
        "{\"String\"} -> \"Tensor\"[\"Integer64\", 1]",
        "string_to_codes",
    );
    prim(
        &mut env,
        "FromCharacterCode",
        "{\"Tensor\"[\"Integer64\", 1]} -> \"String\"",
        "string_from_codes",
    );
    prim(
        &mut env,
        "StringJoin",
        "{\"String\", \"String\"} -> \"String\"",
        "string_join",
    );

    // ---- random numbers ----
    prim(&mut env, "RandomReal", "{} -> \"Real64\"", "random_unit");
    prim(
        &mut env,
        "Native`RandomRange",
        "{\"Real64\", \"Real64\"} -> \"Real64\"",
        "random_range",
    );

    env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_populates() {
        let env = builtin_type_environment();
        assert!(
            env.function_count() >= 40,
            "{} functions",
            env.function_count()
        );
        assert!(env.is_declared("Plus"));
        assert!(env.is_declared("Part$Set"));
        assert!(env.is_declared("Native`RandomRange"));
        assert!(!env.is_declared("NoSuchFunction"));
    }

    #[test]
    fn plus_resolves_across_types() {
        let env = builtin_type_environment();
        let r = env
            .resolve_call("Plus", &[Type::integer64(), Type::integer64()])
            .unwrap();
        assert_eq!(r.ret, Type::integer64());
        let r = env
            .resolve_call("Plus", &[Type::real64(), Type::integer64()])
            .unwrap();
        assert_eq!(r.ret, Type::real64());
        let r = env
            .resolve_call("Plus", &[Type::complex(), Type::complex()])
            .unwrap();
        assert_eq!(r.ret, Type::complex());
        // Tensor element-wise.
        let tv = Type::tensor(Type::real64(), 1);
        let r = env.resolve_call("Plus", &[tv.clone(), tv.clone()]).unwrap();
        assert_eq!(r.ret, tv);
        // Symbolic.
        let r = env
            .resolve_call("Plus", &[Type::expression(), Type::expression()])
            .unwrap();
        assert_eq!(r.ret, Type::expression());
    }

    #[test]
    fn min_rejects_complex() {
        // "integer and reals, but not complex" (§4.4).
        let env = builtin_type_environment();
        assert!(env
            .resolve_call("Min", &[Type::integer64(), Type::integer64()])
            .is_ok());
        assert!(env
            .resolve_call("Min", &[Type::complex(), Type::complex()])
            .is_err());
    }

    #[test]
    fn part_by_rank() {
        let env = builtin_type_environment();
        let v1 = Type::tensor(Type::integer64(), 1);
        let v2 = Type::tensor(Type::real64(), 2);
        let r = env.resolve_call("Part", &[v1, Type::integer64()]).unwrap();
        assert_eq!(r.ret, Type::integer64());
        let r = env
            .resolve_call("Part", &[v2, Type::integer64(), Type::integer64()])
            .unwrap();
        assert_eq!(r.ret, Type::real64());
    }

    #[test]
    fn mangling() {
        assert_eq!(
            mangle(
                "checked_binary_plus",
                &[Type::integer64(), Type::integer64()]
            ),
            "checked_binary_plus$Integer64$Integer64"
        );
        assert_eq!(
            mangle_type(&Type::tensor(Type::real64(), 2)),
            "TensorReal64R2"
        );
        assert_eq!(
            mangle_type(&Type::arrow(vec![Type::integer64()], Type::boolean())),
            "FnInteger64ToBoolean"
        );
    }

    #[test]
    fn source_impls_carried() {
        let env = builtin_type_environment();
        let r = env.resolve_call("EvenQ", &[Type::integer64()]).unwrap();
        assert!(matches!(r.implementation, FunctionImpl::Source(_)));
        assert!(r.inline_always);
    }

    #[test]
    fn list_arities() {
        let env = builtin_type_environment();
        let r = env
            .resolve_call("List", &[Type::real64(), Type::real64()])
            .unwrap();
        assert_eq!(r.ret, Type::tensor(Type::real64(), 1));
        // Mixed int/real joins at Real64.
        let r = env
            .resolve_call("List", &[Type::integer64(), Type::real64()])
            .unwrap();
        assert_eq!(r.ret, Type::tensor(Type::real64(), 1));
    }
}
