//! `wolfram-stream`: the compile-once, evaluate-millions streaming
//! engine.
//!
//! The compiler's pipeline amortizes a one-time compilation over many
//! evaluations; this crate makes that amortization real at the systems
//! level. A function is compiled once into the `Send + Sync`
//! [`CompiledArtifact`](wolfram_compiler_core::CompiledArtifact) and
//! applied to a high-rate stream of records through:
//!
//! - [`record`] — the line-delimited source/sink layer (stdin, files,
//!   and the `!stream` wire mode in [`net`]);
//! - [`queue`] — bounded blocking queues: backpressure *blocks* the
//!   producer rather than shedding records or growing without bound;
//! - [`exec`] — the batching executor: sequence-numbered batches, one
//!   register machine per worker with a dedicated reset-and-reuse call
//!   frame (`StreamCaller` / `StreamRunner`), in-order delivery through
//!   a reorder buffer;
//! - [`metrics`] — events/sec, batch fill ratio, queue depth, and
//!   per-record latency quantiles on the serve layer's histogram atoms.
//!
//! Streaming is an *optimization*, never a semantic: streaming N records
//! is bit-identical to N independent one-shot evaluations across every
//! tier, batching mode, and worker count, and the refcount balance the
//! analyzer proves for one call holds process-wide across a run —
//! including runs with mid-stream errors. The equivalence and balance
//! tests in this crate and the `bench-stream` CI gate hold both
//! properties down.

pub mod exec;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod record;

pub use exec::{run_stream, StreamConfig, StreamFunction, StreamSummary};
pub use metrics::StreamMetrics;
pub use net::ServeStreamHandler;
pub use queue::BoundedQueue;
pub use record::{parse_record, render_result, Record};

use std::io::{BufRead, Write};
use std::sync::atomic::AtomicBool;

/// Streams line-delimited records from `input` to `output`: the engine
/// behind `reproduce stream` (stdin/file mode). Each input line becomes
/// one output line (`ok <result>` or `err <message>`), in input order.
/// On return the caller typically prints `metrics.render(elapsed)`.
///
/// # Errors
///
/// Only sink I/O failures; per-record problems are data (`err` lines).
pub fn run_lines<R: BufRead + Send, W: Write>(
    func: &StreamFunction,
    cfg: &StreamConfig,
    input: R,
    output: &mut W,
    metrics: &StreamMetrics,
    stop: &AtomicBool,
) -> std::io::Result<StreamSummary> {
    let arity = func.arity();
    let records = input.lines().filter_map(move |line| match line {
        Ok(l) if l.trim().is_empty() => None,
        Ok(l) => Some(parse_record(&l, arity)),
        Err(e) => Some(Err(format!("input error: {e}"))),
    });
    let mut io_err = None;
    let summary = run_stream(func, cfg, records, metrics, stop, |r| {
        if io_err.is_none() {
            if let Err(e) = writeln!(output, "{}", render_result(&r)) {
                io_err = Some(e);
            }
        }
    });
    match io_err {
        Some(e) => Err(e),
        None => Ok(summary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_compiler_core::Compiler;

    #[test]
    fn run_lines_round_trips() {
        let artifact = Compiler::default()
            .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, n*n]")
            .unwrap()
            .artifact();
        let func = StreamFunction::Native(artifact);
        let input = b"3\n\n4\nnope\n5\n" as &[u8];
        let mut out = Vec::new();
        let metrics = StreamMetrics::new();
        let stop = AtomicBool::new(false);
        let summary = run_lines(
            &func,
            &StreamConfig::default(),
            input,
            &mut out,
            &metrics,
            &stop,
        )
        .unwrap();
        assert_eq!(summary.records, 4, "blank line skipped");
        assert_eq!(summary.errors, 1, "unparseable symbol is a type error");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ok 9");
        assert_eq!(lines[1], "ok 16");
        assert!(lines[2].starts_with("err "), "{}", lines[2]);
        assert_eq!(lines[3], "ok 25");
    }
}
