//! The batching executor: one compiled artifact, N worker machines,
//! bounded queues, in-order results.
//!
//! # Shape
//!
//! ```text
//! source ──batch──▶ [in queue] ──▶ worker × N ──▶ [out queue] ──reorder──▶ sink
//! ```
//!
//! The producer groups records into sequence-numbered batches and blocks
//! when the input queue is full (backpressure; see [`crate::queue`]).
//! Each worker instantiates the stream function **once** — a
//! `StreamCaller` / `StreamRunner` with its dedicated reusable frame —
//! and applies it record by record. The caller thread drains the output
//! queue and re-establishes input order with a sequence-number reorder
//! buffer before invoking the sink, so results are emitted exactly as a
//! sequential one-shot loop would emit them.
//!
//! # Shutdown
//!
//! Setting the `stop` flag makes the producer stop admitting records and
//! close the input queue; in-flight batches finish, flow through the
//! reorder buffer, and reach the sink — a drain, not an abandonment. The
//! caller prints the metrics table afterwards (the SIGTERM path in
//! `reproduce stream`).

use crate::metrics::StreamMetrics;
use crate::queue::BoundedQueue;
use crate::record::Record;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use wolfram_bytecode::{CompiledFunction, StreamRunner};
use wolfram_compiler_core::{CompiledArtifact, CompiledCodeFunction, StreamCaller};
use wolfram_expr::Expr;
use wolfram_interp::Interpreter;
use wolfram_runtime::{RuntimeError, Value};

/// The function a stream applies, in one of the engine's tiers. All
/// variants are `Send + Sync` — per-thread execution state is created
/// inside each worker by [`StreamFunction::instantiate`].
#[derive(Clone)]
pub enum StreamFunction {
    /// Native register machine through the streaming fast path (frame
    /// reuse, per-stream argument validation).
    Native(CompiledArtifact),
    /// Native register machine through the ordinary one-shot wrapper:
    /// the naive call-per-record baseline.
    NativeNaive(CompiledArtifact),
    /// Bytecode VM through the streaming fast path (register-file
    /// reuse, per-stream spec validation).
    Bytecode(Arc<CompiledFunction>),
    /// Bytecode VM through the ordinary per-call entry.
    BytecodeNaive(Arc<CompiledFunction>),
    /// The interpreter applying the original `Function[...]` per record
    /// (one engine per worker).
    Interpreter(Expr),
}

impl StreamFunction {
    /// Number of arguments each record must carry.
    pub fn arity(&self) -> usize {
        match self {
            StreamFunction::Native(a) | StreamFunction::NativeNaive(a) => a.param_types.len(),
            StreamFunction::Bytecode(cf) | StreamFunction::BytecodeNaive(cf) => cf.arg_specs.len(),
            StreamFunction::Interpreter(f) => {
                f.args().first().map_or(0, |params| params.args().len())
            }
        }
    }

    /// Builds this worker's thread-confined executor.
    pub(crate) fn instantiate(&self) -> WorkerExec {
        match self {
            StreamFunction::Native(a) => WorkerExec::Native(Box::new(StreamCaller::new(a))),
            StreamFunction::NativeNaive(a) => WorkerExec::NativeNaive(a.instantiate()),
            StreamFunction::Bytecode(cf) => WorkerExec::Bytecode(StreamRunner::new(Arc::clone(cf))),
            StreamFunction::BytecodeNaive(cf) => WorkerExec::BytecodeNaive(Arc::clone(cf)),
            StreamFunction::Interpreter(f) => {
                WorkerExec::Interp(Box::new(Interpreter::new()), f.clone())
            }
        }
    }
}

/// One worker's executor: the per-thread half of a [`StreamFunction`].
/// One long-lived value per worker thread, so the variants are boxed
/// for size parity rather than speed.
pub(crate) enum WorkerExec {
    Native(Box<StreamCaller>),
    NativeNaive(CompiledCodeFunction),
    Bytecode(StreamRunner),
    BytecodeNaive(Arc<CompiledFunction>),
    Interp(Box<Interpreter>, Expr),
}

impl WorkerExec {
    pub(crate) fn call(&mut self, args: &[Value]) -> Result<Value, RuntimeError> {
        match self {
            WorkerExec::Native(caller) => caller.call(args),
            WorkerExec::NativeNaive(cf) => cf.call(args),
            WorkerExec::Bytecode(runner) => runner.call(args),
            WorkerExec::BytecodeNaive(cf) => cf.run(args),
            WorkerExec::Interp(engine, f) => {
                let call = Expr::normal(
                    f.clone(),
                    args.iter().map(Value::to_expr).collect::<Vec<_>>(),
                );
                engine.eval(&call).map(|e| Value::from_expr(&e))
            }
        }
    }
}

/// Executor knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Records per batch; 1 means per-record dispatch.
    pub batch_size: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Input/output queue capacity, in batches.
    pub queue_batches: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batch_size: 256,
            workers: 1,
            queue_batches: 8,
        }
    }
}

/// What a finished (or drained) stream run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Records that reached the sink.
    pub records: u64,
    /// Records that produced a value.
    pub ok: u64,
    /// Records that produced an error (parse, type, or runtime).
    pub errors: u64,
    /// Whether the run ended early because `stop` was set (every admitted
    /// record still reached the sink — a drain, not a loss).
    pub stopped: bool,
}

struct Batch {
    seq: u64,
    recs: Vec<Result<Record, String>>,
}

struct BatchOut {
    seq: u64,
    results: Vec<Result<Value, RuntimeError>>,
}

/// Runs `records` through `func`, delivering every result to `sink` in
/// input order. Parse-stage failures (`Err` items) flow through the same
/// pipeline and surface as per-record type errors, preserving ordering.
///
/// The sink runs on the calling thread; worker memory counters are
/// flushed to the process-wide totals before return, so
/// `wolfram_runtime::memory::global_stats()` accounts for the whole run.
pub fn run_stream<I>(
    func: &StreamFunction,
    cfg: &StreamConfig,
    records: I,
    metrics: &StreamMetrics,
    stop: &AtomicBool,
    mut sink: impl FnMut(Result<Value, RuntimeError>),
) -> StreamSummary
where
    I: IntoIterator<Item = Result<Record, String>>,
    I::IntoIter: Send,
{
    let batch_size = cfg.batch_size.max(1);
    let workers = cfg.workers.max(1);
    let in_q: BoundedQueue<Batch> = BoundedQueue::new(cfg.queue_batches);
    let out_q: BoundedQueue<BatchOut> = BoundedQueue::new(cfg.queue_batches + workers);
    let live_workers = AtomicUsize::new(workers);
    let records = records.into_iter();
    let mut summary = StreamSummary {
        records: 0,
        ok: 0,
        errors: 0,
        stopped: false,
    };

    std::thread::scope(|s| {
        // Producer: batch and admit until exhaustion or stop.
        let producer = s.spawn(|| {
            let mut seq = 0u64;
            let mut batch = Vec::with_capacity(batch_size);
            let dispatch = |batch: Vec<Result<Record, String>>, seq: &mut u64| {
                metrics.batches.fetch_add(1, Ordering::Relaxed);
                metrics
                    .batch_slots
                    .fetch_add(batch_size as u64, Ordering::Relaxed);
                let full = in_q
                    .push(Batch {
                        seq: *seq,
                        recs: batch,
                    })
                    .is_err();
                metrics.observe_queue_depth(in_q.len());
                *seq += 1;
                full
            };
            let mut stopped = false;
            for rec in records {
                if stop.load(Ordering::SeqCst) {
                    stopped = true;
                    break;
                }
                metrics.records_in.fetch_add(1, Ordering::Relaxed);
                batch.push(rec);
                if batch.len() == batch_size {
                    let full = std::mem::replace(&mut batch, Vec::with_capacity(batch_size));
                    if dispatch(full, &mut seq) {
                        break;
                    }
                }
            }
            if !batch.is_empty() {
                dispatch(batch, &mut seq);
            }
            in_q.close();
            stopped
        });

        // Workers: one executor each, instantiated inside the thread.
        for _ in 0..workers {
            s.spawn(|| {
                let mut exec = func.instantiate();
                while let Some(batch) = in_q.pop() {
                    metrics.observe_queue_depth(in_q.len());
                    let mut results = Vec::with_capacity(batch.recs.len());
                    for rec in &batch.recs {
                        let r = match rec {
                            Ok(args) => {
                                let t0 = Instant::now();
                                let out = exec.call(args);
                                metrics
                                    .record_latency
                                    .record(t0.elapsed().as_nanos() as u64);
                                out
                            }
                            Err(msg) => Err(RuntimeError::Type(msg.clone())),
                        };
                        results.push(r);
                    }
                    if out_q
                        .push(BatchOut {
                            seq: batch.seq,
                            results,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                // This worker's acquire/release and frame counters join
                // the process-wide totals the balance gate checks.
                wolfram_runtime::memory::flush_thread_stats();
                if live_workers.fetch_sub(1, Ordering::SeqCst) == 1 {
                    out_q.close();
                }
            });
        }

        // In-order drain on the calling thread.
        let mut next = 0u64;
        let mut hold: BTreeMap<u64, Vec<Result<Value, RuntimeError>>> = BTreeMap::new();
        let mut emit = |results: Vec<Result<Value, RuntimeError>>, summary: &mut StreamSummary| {
            for r in results {
                summary.records += 1;
                match &r {
                    Ok(_) => {
                        summary.ok += 1;
                        metrics.records_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        summary.errors += 1;
                        metrics.records_err.fetch_add(1, Ordering::Relaxed);
                    }
                }
                sink(r);
            }
        };
        while let Some(bo) = out_q.pop() {
            hold.insert(bo.seq, bo.results);
            while let Some(results) = hold.remove(&next) {
                emit(results, &mut summary);
                next += 1;
            }
        }
        // Workers are done; anything still held is contiguous from `next`.
        for (_, results) in std::mem::take(&mut hold) {
            emit(results, &mut summary);
        }
        summary.stopped = producer.join().expect("stream producer panicked");
    });
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_compiler_core::Compiler;

    fn native(src: &str) -> CompiledArtifact {
        Compiler::default()
            .function_compile_src(src)
            .unwrap()
            .artifact()
    }

    #[test]
    fn results_arrive_in_input_order_across_workers() {
        let art = native("Function[{Typed[n, \"MachineInteger\"]}, 3*n + 7]");
        let func = StreamFunction::Native(art);
        let cfg = StreamConfig {
            batch_size: 4,
            workers: 4,
            queue_batches: 2,
        };
        let metrics = StreamMetrics::new();
        let stop = AtomicBool::new(false);
        let n = 1000i64;
        let mut got = Vec::new();
        let summary = run_stream(
            &func,
            &cfg,
            (0..n).map(|i| Ok(vec![Value::I64(i)])),
            &metrics,
            &stop,
            |r| got.push(r.unwrap()),
        );
        assert_eq!(summary.records, n as u64);
        assert_eq!(summary.errors, 0);
        assert!(!summary.stopped);
        let want: Vec<Value> = (0..n).map(|i| Value::I64(3 * i + 7)).collect();
        assert_eq!(got, want);
        assert_eq!(
            metrics.batches.load(Ordering::Relaxed),
            n as u64 / 4,
            "full batches of 4"
        );
    }

    #[test]
    fn parse_errors_keep_their_place_in_the_order() {
        let art = native("Function[{Typed[n, \"MachineInteger\"]}, n + 1]");
        let func = StreamFunction::Native(art);
        let metrics = StreamMetrics::new();
        let stop = AtomicBool::new(false);
        let items = vec![
            Ok(vec![Value::I64(1)]),
            Err("bad line".to_owned()),
            Ok(vec![Value::I64(3)]),
        ];
        let mut got = Vec::new();
        let summary = run_stream(
            &func,
            &StreamConfig::default(),
            items,
            &metrics,
            &stop,
            |r| got.push(r),
        );
        assert_eq!(summary.ok, 2);
        assert_eq!(summary.errors, 1);
        assert_eq!(got[0], Ok(Value::I64(2)));
        assert!(got[1].is_err());
        assert_eq!(got[2], Ok(Value::I64(4)));
    }

    #[test]
    fn runtime_errors_mid_stream_do_not_poison_workers() {
        let art = native("Function[{Typed[n, \"MachineInteger\"]}, n*n]");
        let func = StreamFunction::Native(art);
        let cfg = StreamConfig {
            batch_size: 8,
            workers: 2,
            queue_batches: 2,
        };
        let metrics = StreamMetrics::new();
        let stop = AtomicBool::new(false);
        // Record 50 overflows (an aborted frame mid-batch); everything
        // after it must still compute on the same reused frames.
        let inputs: Vec<i64> = (0..100)
            .map(|i| if i == 50 { i64::MAX } else { i })
            .collect();
        let mut got = Vec::new();
        let summary = run_stream(
            &func,
            &cfg,
            inputs.iter().map(|&n| Ok(vec![Value::I64(n)])),
            &metrics,
            &stop,
            |r| got.push(r),
        );
        assert_eq!(summary.ok, 99);
        assert_eq!(summary.errors, 1);
        for (i, r) in got.iter().enumerate() {
            if i == 50 {
                assert!(r.is_err(), "record 50 overflows");
            } else {
                assert_eq!(r, &Ok(Value::I64((i * i) as i64)), "record {i}");
            }
        }
    }

    #[test]
    fn all_tiers_match_one_shot_across_batch_sizes() {
        use wolfram_bytecode::{ArgSpec, BytecodeCompiler};

        let src = "Function[{Typed[x, \"Real64\"]}, x*(x - 0.5) + 1.25]";
        let art = native(src);
        let one_shot = art.instantiate();
        let records: Vec<Record> = (0..200)
            .map(|i| vec![Value::F64(i as f64 * 0.01)])
            .collect();
        let expected: Vec<Value> = records.iter().map(|r| one_shot.call(r).unwrap()).collect();
        drop(one_shot);

        let f = wolfram_expr::parse(src).unwrap();
        let specs = ArgSpec::from_function(&f).unwrap();
        let bc = Arc::new(
            BytecodeCompiler::new()
                .compile(&specs, &f.args()[1])
                .unwrap(),
        );
        let tiers = [
            StreamFunction::Native(art.clone()),
            StreamFunction::NativeNaive(art),
            StreamFunction::Bytecode(Arc::clone(&bc)),
            StreamFunction::BytecodeNaive(bc),
            StreamFunction::Interpreter(f),
        ];
        for (t, func) in tiers.iter().enumerate() {
            for (batch, workers) in [(1, 1), (7, 1), (64, 3)] {
                let metrics = StreamMetrics::new();
                let stop = AtomicBool::new(false);
                let cfg = StreamConfig {
                    batch_size: batch,
                    workers,
                    queue_batches: 2,
                };
                let mut got = Vec::new();
                run_stream(
                    func,
                    &cfg,
                    records.iter().map(|r| Ok(r.clone())),
                    &metrics,
                    &stop,
                    |r| got.push(r.unwrap()),
                );
                // Bit-identical, not approximately equal: streaming is an
                // optimization, never a semantic.
                assert_eq!(got, expected, "tier {t} b={batch} w={workers}");
            }
        }
    }

    #[test]
    fn stop_flag_drains_in_flight_records() {
        let art = native("Function[{Typed[n, \"MachineInteger\"]}, n]");
        let func = StreamFunction::Native(art);
        let cfg = StreamConfig {
            batch_size: 8,
            workers: 2,
            queue_batches: 2,
        };
        let metrics = StreamMetrics::new();
        let stop = AtomicBool::new(false);
        let mut got = 0u64;
        // The source trips the stop flag partway through: the run must end
        // early, and everything admitted must still reach the sink.
        let summary = run_stream(
            &func,
            &cfg,
            (0..100_000i64).map(|i| {
                if i == 500 {
                    stop.store(true, Ordering::SeqCst);
                }
                Ok(vec![Value::I64(i)])
            }),
            &metrics,
            &stop,
            |_| got += 1,
        );
        assert!(summary.stopped);
        assert!(summary.records < 100_000, "stopped early: {summary:?}");
        assert_eq!(summary.records, got);
        assert_eq!(
            summary.records,
            metrics.records_in.load(Ordering::Relaxed),
            "every admitted record reached the sink"
        );
    }
}
