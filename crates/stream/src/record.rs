//! The record source/sink layer: line-delimited values.
//!
//! A record is one line of text. For a unary function the whole line is
//! the single argument (so `{1.0, 2.0}` can feed a tensor parameter);
//! for higher arities the line must be a list with one element per
//! parameter: `{3, 4.5}`. Everything parses through the ordinary
//! expression reader, so records carry exactly what one-shot evaluation
//! would see.

use wolfram_runtime::Value;

/// One decoded record: the argument vector for a single application.
pub type Record = Vec<Value>;

/// Parses one record line against the stream function's arity.
///
/// # Errors
///
/// A human-readable description of the malformed line.
pub fn parse_record(line: &str, arity: usize) -> Result<Record, String> {
    let expr = wolfram_expr::parse(line).map_err(|e| e.to_string())?;
    if arity == 1 {
        return Ok(vec![Value::from_expr(&expr)]);
    }
    if !expr.has_head("List") || expr.args().len() != arity {
        return Err(format!(
            "expected a {arity}-element argument list, got {}",
            line.trim()
        ));
    }
    Ok(expr.args().iter().map(Value::from_expr).collect())
}

/// Renders one per-record result as its output line.
pub fn render_result(r: &Result<Value, wolfram_runtime::RuntimeError>) -> String {
    match r {
        Ok(v) => format!("ok {}", v.to_expr().to_input_form()),
        Err(e) => format!("err {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_records_take_the_whole_line() {
        let r = parse_record("{1, 2, 3}", 1).unwrap();
        assert_eq!(r.len(), 1);
        let r = parse_record("42", 1).unwrap();
        assert_eq!(r, vec![Value::I64(42)]);
    }

    #[test]
    fn n_ary_records_need_a_matching_list() {
        let r = parse_record("{3, 4.5}", 2).unwrap();
        assert_eq!(r, vec![Value::I64(3), Value::F64(4.5)]);
        assert!(parse_record("{3}", 2).is_err());
        assert!(parse_record("3", 2).is_err());
        assert!(parse_record("{", 2).is_err());
    }
}
