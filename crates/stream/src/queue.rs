//! A bounded blocking queue: the backpressure primitive between stream
//! stages.
//!
//! The documented backpressure choice is **block, don't shed**: a full
//! queue blocks the producer until the consumer drains a slot, so a slow
//! consumer slows the source (via TCP flow control or a stalled file
//! reader) instead of growing memory without bound. Shedding would break
//! the streamed-vs-one-shot equivalence oracle — every admitted record
//! must produce exactly one in-order result.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A multi-producer, multi-consumer bounded queue with blocking push and
/// pop, plus a close signal for shutdown drains.
pub struct BoundedQueue<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (at least 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks while the queue is full, then enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue was closed (receivers are gone;
    /// the producer should stop).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        while g.items.len() >= self.cap && !g.closed {
            g = self.not_full.wait(g).expect("queue poisoned");
        }
        if g.closed {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while the queue is empty and open; `None` means closed and
    /// fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue poisoned");
        }
    }

    /// Closes the queue: pushes fail, pops drain what remains then return
    /// `None`. Idempotent.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Current number of queued items (racy; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_blocks_at_capacity_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(1).unwrap();
        q.push(2).unwrap();
        let made_it = Arc::new(AtomicU64::new(0));
        let (q2, flag) = (Arc::clone(&q), Arc::clone(&made_it));
        let producer = std::thread::spawn(move || {
            q2.push(3).unwrap(); // must block: queue is full
            flag.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(made_it.load(Ordering::SeqCst), 0, "push did not block");
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap();
        assert_eq!(made_it.load(Ordering::SeqCst), 1);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
