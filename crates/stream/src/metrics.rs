//! Per-stage stream observability, reusing the serve layer's lock-free
//! histogram atoms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wolfram_serve::{fmt_ns, Histogram};

/// Counters and latency histograms for one stream run. Shared by the
/// producer, every executor worker, and the in-order drain.
#[derive(Debug, Default)]
pub struct StreamMetrics {
    /// Records admitted into the batcher.
    pub records_in: AtomicU64,
    /// Records completing with a value.
    pub records_ok: AtomicU64,
    /// Records completing with an error (parse, type, or runtime).
    pub records_err: AtomicU64,
    /// Batches dispatched to workers.
    pub batches: AtomicU64,
    /// Total batch slots dispatched (`batches × batch_size`); with
    /// `records_in` this gives the batch fill ratio.
    pub batch_slots: AtomicU64,
    /// Input-queue depth high-water mark, in batches.
    pub queue_depth_max: AtomicU64,
    /// Per-record execution latency.
    pub record_latency: Histogram,
}

impl StreamMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of dispatched batch slots actually filled, in `[0, 1]`
    /// (1 when nothing was dispatched).
    pub fn fill_ratio(&self) -> f64 {
        let slots = self.batch_slots.load(Ordering::Relaxed);
        if slots == 0 {
            1.0
        } else {
            self.records_in.load(Ordering::Relaxed) as f64 / slots as f64
        }
    }

    /// Observes the input queue depth, updating the high-water mark.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_max
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Events per second over `elapsed` (0 for an empty interval).
    pub fn events_per_sec(&self, elapsed: Duration) -> f64 {
        let done =
            self.records_ok.load(Ordering::Relaxed) + self.records_err.load(Ordering::Relaxed);
        if elapsed.is_zero() {
            0.0
        } else {
            done as f64 / elapsed.as_secs_f64()
        }
    }

    /// Renders the stream stats table (the SIGTERM drain and `!end` both
    /// print this).
    pub fn render(&self, elapsed: Duration) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let h = &self.record_latency;
        let mut out = String::new();
        out.push_str("stream stats\n");
        out.push_str(&format!(
            "  records    in {:>10}  ok {:>10}  err {:>6}\n",
            g(&self.records_in),
            g(&self.records_ok),
            g(&self.records_err),
        ));
        out.push_str(&format!(
            "  batches    n {:>11}  fill {:>7.1}%  queue-max {:>5}\n",
            g(&self.batches),
            self.fill_ratio() * 100.0,
            g(&self.queue_depth_max),
        ));
        out.push_str(&format!(
            "  latency    mean {:>9}  p50 {:>9}  p95 {:>9}  p99 {:>9}\n",
            fmt_ns(h.mean_ns()),
            fmt_ns(h.quantile_ns(0.50)),
            fmt_ns(h.quantile_ns(0.95)),
            fmt_ns(h.quantile_ns(0.99)),
        ));
        out.push_str(&format!(
            "  throughput {:>12.0} events/sec over {:.3}s\n",
            self.events_per_sec(elapsed),
            elapsed.as_secs_f64(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_ratio_and_render() {
        let m = StreamMetrics::new();
        m.records_in.store(7, Ordering::Relaxed);
        m.records_ok.store(6, Ordering::Relaxed);
        m.records_err.store(1, Ordering::Relaxed);
        m.batches.store(2, Ordering::Relaxed);
        m.batch_slots.store(8, Ordering::Relaxed);
        m.observe_queue_depth(3);
        m.observe_queue_depth(1);
        m.record_latency.record(1_000);
        assert!((m.fill_ratio() - 0.875).abs() < 1e-9);
        assert_eq!(m.queue_depth_max.load(Ordering::Relaxed), 3);
        let t = m.render(Duration::from_secs(1));
        for needle in ["records", "batches", "latency", "throughput", "87.5%"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
        assert!((m.events_per_sec(Duration::from_secs(1)) - 7.0).abs() < 1e-9);
    }
}
