//! The `!stream` wire mode: the serve protocol's streaming sessions.
//!
//! A client sends one `!stream Function[...]` frame; the server compiles
//! the function **once** and replies `ok stream`. Every following frame
//! is a record line (see [`crate::record`]) answered by one in-order
//! reply frame, executed through the same streaming fast path the batch
//! executor uses — a dedicated reusable frame, arguments validated per
//! stream. The `!end` sentinel closes the session and returns the
//! stream metrics table. Backpressure is the connection's existing
//! pipelining cap: un-drained replies stop the server reading the
//! socket, which pushes back through TCP flow control.

use crate::exec::{StreamFunction, WorkerExec};
use crate::metrics::StreamMetrics;
use crate::record::{parse_record, render_result};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_serve::{StreamHandler, StreamSession, TierPolicy};

/// The server-side `!stream` entry point: compiles each streamed
/// function once (per session) at the configured tier.
pub struct ServeStreamHandler {
    options: CompilerOptions,
    tier: TierPolicy,
}

impl ServeStreamHandler {
    /// A handler compiling with `options` at `tier` (`Adaptive` streams
    /// start native — a stream is by definition a hot function).
    pub fn new(options: CompilerOptions, tier: TierPolicy) -> Self {
        ServeStreamHandler { options, tier }
    }

    fn compile(&self, spec: &str) -> Result<StreamFunction, String> {
        let func = wolfram_expr::parse(spec).map_err(|e| e.to_string())?;
        if !func.has_head("Function") {
            return Err("!stream expects a Function[...]".into());
        }
        match self.tier {
            TierPolicy::BytecodeOnly => {
                let specs = ArgSpec::from_function(&func)?;
                let body = func
                    .args()
                    .get(1)
                    .cloned()
                    .ok_or_else(|| "function has no body".to_owned())?;
                let cf = BytecodeCompiler::new()
                    .compile(&specs, &body)
                    .map_err(|e| e.to_string())?;
                Ok(StreamFunction::Bytecode(Arc::new(cf)))
            }
            _ => {
                let artifact = Compiler::new(self.options.clone())
                    .function_compile(&func)
                    .map_err(|e| e.to_string())?
                    .artifact();
                Ok(StreamFunction::Native(artifact))
            }
        }
    }
}

impl StreamHandler for ServeStreamHandler {
    fn begin(&self, spec: &str) -> Result<Box<dyn StreamSession>, String> {
        let func = self.compile(spec)?;
        let arity = func.arity();
        Ok(Box::new(ServeStreamSession {
            exec: func.instantiate(),
            arity,
            metrics: StreamMetrics::new(),
            started: Instant::now(),
        }))
    }
}

/// One connection's live stream: a thread-confined executor plus its
/// session metrics. Records execute synchronously on the connection's
/// reader thread (the wire already serializes them).
struct ServeStreamSession {
    exec: WorkerExec,
    arity: usize,
    metrics: StreamMetrics,
    started: Instant,
}

impl StreamSession for ServeStreamSession {
    fn record(&mut self, line: &str) -> String {
        self.metrics.records_in.fetch_add(1, Ordering::Relaxed);
        let result = match parse_record(line, self.arity) {
            Ok(args) => {
                let t0 = Instant::now();
                let out = self.exec.call(&args);
                self.metrics
                    .record_latency
                    .record(t0.elapsed().as_nanos() as u64);
                out
            }
            Err(msg) => Err(wolfram_runtime::RuntimeError::Type(msg)),
        };
        let counter = if result.is_ok() {
            &self.metrics.records_ok
        } else {
            &self.metrics.records_err
        };
        counter.fetch_add(1, Ordering::Relaxed);
        render_result(&result)
    }

    fn finish(&mut self) -> String {
        // This connection thread executed compiled code; fold its memory
        // and frame counters into the process totals like pool workers do.
        wolfram_runtime::memory::flush_thread_stats();
        self.metrics.render(self.started.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;
    use wolfram_serve::{NetClient, NetConfig, ServeConfig, ServePool};

    fn start_stream_server(tier: TierPolicy) -> (String, Arc<AtomicBool>) {
        let pool = Arc::new(ServePool::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let config = NetConfig {
            stream: Some(Arc::new(ServeStreamHandler::new(
                CompilerOptions::default(),
                tier,
            ))),
            ..NetConfig::default()
        };
        std::thread::spawn(move || {
            wolfram_serve::serve_listener(listener, &pool, &flag, &config).unwrap();
        });
        (addr, shutdown)
    }

    #[test]
    fn stream_session_over_the_wire() {
        let (addr, shutdown) = start_stream_server(TierPolicy::NativeOnly);
        let mut client = NetClient::connect(&addr).unwrap();
        let hello = client
            .call_raw("!stream Function[{Typed[n, \"MachineInteger\"]}, 3*n + 7]")
            .unwrap();
        assert_eq!(hello, "ok stream");
        for n in [0i64, 5, -2] {
            let reply = client.call_raw(&n.to_string()).unwrap();
            assert_eq!(reply, format!("ok {}", 3 * n + 7));
        }
        // A bad record errs but keeps the session alive.
        let bad = client.call_raw("not a number").unwrap();
        assert!(bad.starts_with("err "), "{bad}");
        let reply = client.call_raw("10").unwrap();
        assert_eq!(reply, "ok 37");
        let summary = client.call_raw("!end").unwrap();
        assert!(summary.contains("stream stats"), "{summary}");
        assert!(summary.contains("throughput"), "{summary}");
        // Back in request mode: an ordinary pooled request works.
        let normal = client
            .call("{Function[{Typed[n, \"MachineInteger\"]}, n - 1], {10}}")
            .unwrap();
        assert_eq!(normal.result.as_deref(), Ok("9"));
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    #[test]
    fn bytecode_tier_streams_too() {
        let (addr, shutdown) = start_stream_server(TierPolicy::BytecodeOnly);
        let mut client = NetClient::connect(&addr).unwrap();
        let hello = client
            .call_raw("!stream Function[{Typed[n, \"MachineInteger\"]}, n * n]")
            .unwrap();
        assert_eq!(hello, "ok stream");
        assert_eq!(client.call_raw("12").unwrap(), "ok 144");
        assert!(client.call_raw("!end").unwrap().contains("stream stats"));
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    #[test]
    fn stream_disabled_without_handler() {
        let pool = Arc::new(ServePool::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            wolfram_serve::serve_listener(listener, &pool, &flag, &NetConfig::default()).unwrap();
        });
        let mut client = NetClient::connect(&addr).unwrap();
        let reply = client
            .call_raw("!stream Function[{Typed[n, \"MachineInteger\"]}, n]")
            .unwrap();
        assert!(reply.starts_with("err "), "{reply}");
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    #[test]
    fn uncompilable_stream_spec_errs_and_stays_in_request_mode() {
        let (addr, shutdown) = start_stream_server(TierPolicy::NativeOnly);
        let mut client = NetClient::connect(&addr).unwrap();
        let reply = client.call_raw("!stream NotAFunction[1]").unwrap();
        assert!(reply.starts_with("err "), "{reply}");
        let normal = client
            .call("{Function[{Typed[n, \"MachineInteger\"]}, n + 1], {1}}")
            .unwrap();
        assert_eq!(normal.result.as_deref(), Ok("2"));
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}
