//! Property tests on the expression substrate: lexer/parser robustness,
//! printing round-trips, pattern matching, and rule specificity.

use proptest::prelude::*;
use std::collections::HashMap;
use wolfram_expr::lex::tokenize;
use wolfram_expr::pattern::{compare_specificity, match_pattern, MatchCtx};
use wolfram_expr::{parse, Expr, Symbol};

// ---------------------------------------------------------------------
// Robustness: the front end must never panic, only return errors.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn lexer_never_panics(src in "[ -~]{0,120}") {
        let _ = tokenize(&src);
    }

    #[test]
    fn parser_never_panics(src in "[ -~]{0,120}") {
        let _ = parse(&src);
    }

    #[test]
    fn parser_never_panics_on_operator_soup(
        src in "[-+*/^<>=&|;,@#%(){}\\[\\]a-z0-9_ .]{0,80}"
    ) {
        let _ = parse(&src);
    }
}

// ---------------------------------------------------------------------
// Printing round-trips.
// ---------------------------------------------------------------------

fn arb_atom() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i64>().prop_map(Expr::int),
        "[a-zA-Z][a-zA-Z0-9]{0,6}".prop_map(|s| Expr::symbol(Symbol::new(&s))),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Expr::string),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_atom().prop_recursive(4, 32, 4, |inner| {
        ("[A-Z][a-zA-Z]{0,5}", prop::collection::vec(inner, 0..4))
            .prop_map(|(head, args)| Expr::call(&head, args))
    })
}

proptest! {
    #[test]
    fn full_form_parse_is_identity(e in arb_expr()) {
        let printed = e.to_full_form();
        let back = parse(&printed).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn parsing_is_deterministic(e in arb_expr()) {
        let printed = e.to_full_form();
        prop_assert_eq!(parse(&printed).unwrap(), parse(&printed).unwrap());
    }
}

// ---------------------------------------------------------------------
// Pattern matching.
// ---------------------------------------------------------------------

fn structural_match(expr: &Expr, pattern: &Expr) -> Option<HashMap<Symbol, Expr>> {
    let mut bindings = HashMap::new();
    let mut ctx = MatchCtx {
        condition_eval: None,
    };
    match_pattern(expr, pattern, &mut bindings, &mut ctx).then_some(bindings)
}

proptest! {
    #[test]
    fn blank_matches_everything(e in arb_expr()) {
        let pat = parse("x_").unwrap();
        let bindings = structural_match(&e, &pat).expect("x_ must match");
        prop_assert_eq!(bindings.get(&Symbol::new("x")), Some(&e));
    }

    #[test]
    fn literal_pattern_matches_itself_only(a in arb_expr(), b in arb_expr()) {
        // An expression used as a pattern (no blanks) matches exactly itself.
        prop_assert!(structural_match(&a, &a).is_some());
        if a != b {
            // `b` as a pattern contains no blanks, so it cannot match a
            // different expression.
            prop_assert!(structural_match(&a, &b).is_none());
        }
    }

    #[test]
    fn head_restricted_blank_respects_heads(n in any::<i64>(), s in "[a-z]{1,6}") {
        let int_pat = parse("x_Integer").unwrap();
        prop_assert!(structural_match(&Expr::int(n), &int_pat).is_some());
        prop_assert!(structural_match(&Expr::symbol(Symbol::new(&s)), &int_pat).is_none());
    }

    #[test]
    fn repeated_pattern_variable_requires_equal_parts(a in arb_atom(), b in arb_atom()) {
        let pat = parse("f[x_, x_]").unwrap();
        let same = Expr::call("f", [a.clone(), a.clone()]);
        prop_assert!(structural_match(&same, &pat).is_some());
        let mixed = Expr::call("f", [a.clone(), b.clone()]);
        prop_assert_eq!(structural_match(&mixed, &pat).is_some(), a == b);
    }
}

// ---------------------------------------------------------------------
// Specificity ordering (drives DownValue dispatch order).
// ---------------------------------------------------------------------

fn arb_pattern() -> impl Strategy<Value = Expr> {
    prop::sample::select(vec![
        "x_",
        "x_Integer",
        "x_Real",
        "0",
        "f[x_]",
        "f[x_, y_]",
        "f[0, y_]",
        "f[0, 1]",
        "x_ /; x > 0",
        "f[x_Integer, y_]",
    ])
    .prop_map(|s| parse(s).unwrap())
}

proptest! {
    #[test]
    fn specificity_is_reflexive(p in arb_pattern()) {
        prop_assert_eq!(compare_specificity(&p, &p), std::cmp::Ordering::Equal);
    }

    #[test]
    fn specificity_is_antisymmetric(a in arb_pattern(), b in arb_pattern()) {
        prop_assert_eq!(compare_specificity(&a, &b), compare_specificity(&b, &a).reverse());
    }

    #[test]
    fn literal_beats_blank(p in arb_pattern()) {
        // A fully literal pattern is never *less* specific than a bare blank.
        let blank = parse("x_").unwrap();
        let lit = parse("0").unwrap();
        prop_assert_ne!(compare_specificity(&lit, &blank), std::cmp::Ordering::Greater);
        // And any pattern compares consistently against the bare blank.
        let _ = compare_specificity(&p, &blank);
    }
}
