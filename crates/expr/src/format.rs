//! Expression printing: `FullForm` (canonical, parseable) and a readable
//! `InputForm` with operator notation for common heads.

use crate::expr::{Expr, ExprKind};

impl Expr {
    /// Canonical head-bracket serialization, e.g. `Plus[1, f[x]]`.
    ///
    /// Every expression round-trips through [`fn@crate::parse`]:
    /// `parse(e.to_full_form()) == e` (up to real-number formatting).
    pub fn to_full_form(&self) -> String {
        let mut out = String::new();
        write_full_form(self, &mut out);
        out
    }

    /// Readable serialization using infix operators for common heads
    /// (`Plus`, `Times`, comparisons, `List` braces, ...).
    pub fn to_input_form(&self) -> String {
        let mut out = String::new();
        write_input_form(self, &mut out, 0);
        out
    }
}

fn write_real(v: f64, out: &mut String) {
    if v == f64::INFINITY {
        out.push_str("Infinity");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else if v.is_nan() {
        out.push_str("Indeterminate");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Wolfram prints machine reals with a trailing dot: 1. not 1.0
        out.push_str(&format!("{}.", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_string_literal(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(ch),
        }
    }
    out.push('"');
}

fn write_full_form(e: &Expr, out: &mut String) {
    match e.kind() {
        ExprKind::Integer(v) => out.push_str(&v.to_string()),
        ExprKind::BigInteger(v) => out.push_str(&v.to_string()),
        ExprKind::Real(v) => write_real(*v, out),
        ExprKind::Complex(re, im) => {
            out.push_str("Complex[");
            write_real(*re, out);
            out.push_str(", ");
            write_real(*im, out);
            out.push(']');
        }
        ExprKind::Str(s) => write_string_literal(s, out),
        ExprKind::Symbol(s) => out.push_str(s.name()),
        ExprKind::Normal(n) => {
            write_full_form(n.head(), out);
            out.push('[');
            for (i, a) in n.args().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_full_form(a, out);
            }
            out.push(']');
        }
    }
}

/// Operator table for InputForm: (symbol, infix text, precedence).
/// Higher precedence binds tighter; matches the parser's table.
fn infix_op(name: &str) -> Option<(&'static str, u8)> {
    Some(match name {
        "CompoundExpression" => ("; ", 10),
        "Set" => (" = ", 20),
        "SetDelayed" => (" := ", 20),
        "ReplaceAll" => (" /. ", 42),
        "ReplaceRepeated" => (" //. ", 42),
        "Rule" => (" -> ", 50),
        "RuleDelayed" => (" :> ", 50),
        "Condition" => (" /; ", 55),
        "Alternatives" => (" | ", 58),
        "Or" => (" || ", 60),
        "And" => (" && ", 70),
        "SameQ" => (" === ", 90),
        "UnsameQ" => (" =!= ", 90),
        "Equal" => (" == ", 100),
        "Unequal" => (" != ", 100),
        "Less" => (" < ", 100),
        "Greater" => (" > ", 100),
        "LessEqual" => (" <= ", 100),
        "GreaterEqual" => (" >= ", 100),
        "StringJoin" => (" <> ", 110),
        "Plus" => (" + ", 120),
        "Times" => ("*", 130),
        "Power" => ("^", 150),
        _ => return None,
    })
}

fn write_input_form(e: &Expr, out: &mut String, parent_prec: u8) {
    match e.kind() {
        ExprKind::Normal(n) => {
            let head_name = n.head().as_symbol().map(|s| s.name().to_owned());
            if let Some(name) = &head_name {
                // List braces.
                if name == "List" {
                    out.push('{');
                    for (i, a) in n.args().iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_input_form(a, out, 0);
                    }
                    out.push('}');
                    return;
                }
                if name == "Slot" {
                    if let Some(ix) = n.args().first().and_then(Expr::as_i64) {
                        if ix == 1 {
                            out.push('#');
                        } else {
                            out.push_str(&format!("#{ix}"));
                        }
                        return;
                    }
                }
                if name == "Blank" && n.args().is_empty() {
                    out.push('_');
                    return;
                }
                if name == "Part" && n.args().len() >= 2 {
                    write_input_form(&n.args()[0], out, 170);
                    out.push_str("[[");
                    for (i, a) in n.args()[1..].iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_input_form(a, out, 0);
                    }
                    out.push_str("]]");
                    return;
                }
                if name == "Minus" && n.args().len() == 1 {
                    out.push('-');
                    write_input_form(&n.args()[0], out, 140);
                    return;
                }
                if name == "Not" && n.args().len() == 1 {
                    out.push('!');
                    write_input_form(&n.args()[0], out, 80);
                    return;
                }
                if let Some((op, prec)) = infix_op(name) {
                    if n.args().len() >= 2 {
                        let need_parens = prec < parent_prec;
                        if need_parens {
                            out.push('(');
                        }
                        for (i, a) in n.args().iter().enumerate() {
                            if i > 0 {
                                out.push_str(op);
                            }
                            write_input_form(a, out, prec + 1);
                        }
                        if need_parens {
                            out.push(')');
                        }
                        return;
                    }
                }
            }
            // Generic head[args] form.
            write_input_form(n.head(), out, 170);
            out.push('[');
            for (i, a) in n.args().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_input_form(a, out, 0);
            }
            out.push(']');
        }
        _ => write_full_form(e, out),
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::Expr;

    #[test]
    fn full_form_nested() {
        let e = Expr::call("Plus", [Expr::int(1), Expr::call("f", [Expr::sym("x")])]);
        assert_eq!(e.to_full_form(), "Plus[1, f[x]]");
    }

    #[test]
    fn reals_print_with_dot() {
        assert_eq!(Expr::real(1.0).to_full_form(), "1.");
        assert_eq!(Expr::real(2.5).to_full_form(), "2.5");
        assert_eq!(Expr::real(f64::INFINITY).to_full_form(), "Infinity");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Expr::string("a\"b\\c\nd").to_full_form(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn input_form_operators() {
        let e = Expr::call(
            "Plus",
            [
                Expr::int(1),
                Expr::call("Times", [Expr::int(2), Expr::sym("x")]),
            ],
        );
        assert_eq!(e.to_input_form(), "1 + 2*x");
    }

    #[test]
    fn input_form_parenthesizes() {
        // (1 + x) * 2 needs parens around Plus.
        let e = Expr::call(
            "Times",
            [
                Expr::call("Plus", [Expr::int(1), Expr::sym("x")]),
                Expr::int(2),
            ],
        );
        assert_eq!(e.to_input_form(), "(1 + x)*2");
    }

    #[test]
    fn input_form_braces_and_part() {
        let e = Expr::call(
            "Part",
            [Expr::list([Expr::int(1), Expr::int(2)]), Expr::int(1)],
        );
        assert_eq!(e.to_input_form(), "{1, 2}[[1]]");
    }

    #[test]
    fn input_form_slot_and_blank() {
        assert_eq!(Expr::call("Slot", [Expr::int(1)]).to_input_form(), "#");
        assert_eq!(Expr::call("Slot", [Expr::int(2)]).to_input_form(), "#2");
        assert_eq!(Expr::call("Blank", []).to_input_form(), "_");
    }

    #[test]
    fn complex_full_form() {
        assert_eq!(Expr::complex(1.0, -2.0).to_full_form(), "Complex[1., -2.]");
    }
}
