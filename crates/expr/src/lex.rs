//! Lexer for the Wolfram Language subset accepted by [`fn@crate::parse`].

use crate::bigint::BigInt;
use std::fmt;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source string.
    pub offset: usize,
}

/// Token payloads produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A machine integer literal.
    Integer(i64),
    /// An integer literal too large for `i64`.
    BigInteger(BigInt),
    /// A real literal.
    Real(f64),
    /// A string literal (contents, unescaped).
    Str(String),
    /// An identifier / symbol name (may contain a context backtick).
    Ident(String),
    /// A pattern composite such as `x_Integer`, `_`, `xs__`, `___h`.
    PatternLike {
        /// The pattern variable name, if present (`x` in `x_Integer`).
        name: Option<String>,
        /// Number of underscores: 1 = Blank, 2 = BlankSequence, 3 = BlankNullSequence.
        blanks: u8,
        /// The required head, if present (`Integer` in `x_Integer`).
        head: Option<String>,
    },
    /// `#` or `#n`.
    Slot(i64),
    /// `##`.
    SlotSequence,
    /// Any punctuation or operator, stored as its source text (`"+"`, `"->"`,
    /// `"[["` is *not* produced — brackets are always single).
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Integer(v) => write!(f, "{v}"),
            TokenKind::BigInteger(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::PatternLike { name, blanks, head } => {
                if let Some(n) = name {
                    write!(f, "{n}")?;
                }
                for _ in 0..*blanks {
                    write!(f, "_")?;
                }
                if let Some(h) = head {
                    write!(f, "{h}")?;
                }
                Ok(())
            }
            TokenKind::Slot(n) => write!(f, "#{n}"),
            TokenKind::SlotSequence => write!(f, "##"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// An error produced during tokenization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error occurred.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '$'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '$' || c == '`'
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    offset: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            offset: 0,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let (i, c) = self.chars.next()?;
        self.offset = i + c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            offset: self.offset,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('(') => {
                    // Possible comment `(*`.
                    let mut look = self.chars.clone();
                    look.next();
                    if look.peek().map(|&(_, c)| c) == Some('*') {
                        self.bump();
                        self.bump();
                        let mut depth = 1usize;
                        loop {
                            match self.bump() {
                                None => return Err(self.err("unterminated comment")),
                                Some('(') if self.peek() == Some('*') => {
                                    self.bump();
                                    depth += 1;
                                }
                                Some('*') if self.peek() == Some(')') => {
                                    self.bump();
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                Some(_) => {}
                            }
                        }
                    } else {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<TokenKind, LexError> {
        let mut is_real = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') {
            // `1.` and `1.5` are reals; `1..` would be a span (unsupported).
            let mut look = self.chars.clone();
            look.next();
            let after = look.peek().map(|&(_, c)| c);
            if after != Some('.') {
                is_real = true;
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        // Exponent notation `*^n` (Wolfram).
        let end = self.offset;
        let text = &self.src[start..end];
        if self.peek() == Some('*') {
            let mut look = self.chars.clone();
            look.next();
            if look.peek().map(|&(_, c)| c) == Some('^') {
                self.bump();
                self.bump();
                if self.peek() == Some('-') || self.peek() == Some('+') {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
                let text = self.src[start..self.offset].replace("*^", "e");
                let v: f64 = text
                    .parse()
                    .map_err(|_| self.err(format!("bad real literal `{text}`")))?;
                return Ok(TokenKind::Real(v));
            }
        }
        if is_real {
            let v: f64 = if let Some(stripped) = text.strip_suffix('.') {
                stripped
                    .parse()
                    .map_err(|_| self.err(format!("bad real literal `{text}`")))?
            } else {
                text.parse()
                    .map_err(|_| self.err(format!("bad real literal `{text}`")))?
            };
            Ok(TokenKind::Real(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(TokenKind::Integer(v))
        } else {
            let big =
                BigInt::parse(text).ok_or_else(|| self.err(format!("bad integer `{text}`")))?;
            Ok(TokenKind::BigInteger(big))
        }
    }

    fn lex_ident_text(&mut self, first: char) -> String {
        let mut s = String::new();
        s.push(first);
        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
            s.push(self.bump().unwrap());
        }
        s
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some(c) => return Err(self.err(format!("unknown escape `\\{c}`"))),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    /// Lexes a pattern-like token after having read `name` (possibly empty)
    /// and being positioned at the first `_`.
    fn lex_pattern(&mut self, name: Option<String>) -> TokenKind {
        let mut blanks = 0u8;
        while self.peek() == Some('_') && blanks < 3 {
            self.bump();
            blanks += 1;
        }
        let head = match self.peek() {
            Some(c) if is_ident_start(c) => {
                self.bump();
                Some(self.lex_ident_text(c))
            }
            _ => None,
        };
        TokenKind::PatternLike { name, blanks, head }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let start = self.offset;
        let kind = match self.bump() {
            None => TokenKind::Eof,
            Some(c) if c.is_ascii_digit() => self.lex_number(start)?,
            Some('"') => self.lex_string()?,
            Some('_') => self.lex_pattern_with_leading_blank(),
            Some(c) if is_ident_start(c) => {
                let name = self.lex_ident_text(c);
                let name = normalize_ident(name);
                if self.peek() == Some('_') {
                    self.lex_pattern(Some(name))
                } else {
                    TokenKind::Ident(name)
                }
            }
            Some('#') => {
                if self.eat('#') {
                    TokenKind::SlotSequence
                } else {
                    let mut n = 0i64;
                    let mut any = false;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        n = n * 10 + (self.bump().unwrap() as i64 - '0' as i64);
                        any = true;
                    }
                    TokenKind::Slot(if any { n } else { 1 })
                }
            }
            Some(c) => TokenKind::Punct(self.lex_punct(c)?),
        };
        Ok(Token {
            kind,
            offset: start,
        })
    }

    fn lex_pattern_with_leading_blank(&mut self) -> TokenKind {
        // We already consumed one `_`.
        let mut blanks = 1u8;
        while self.peek() == Some('_') && blanks < 3 {
            self.bump();
            blanks += 1;
        }
        let head = match self.peek() {
            Some(c) if is_ident_start(c) => {
                self.bump();
                Some(self.lex_ident_text(c))
            }
            _ => None,
        };
        TokenKind::PatternLike {
            name: None,
            blanks,
            head,
        }
    }

    fn lex_punct(&mut self, c: char) -> Result<&'static str, LexError> {
        Ok(match c {
            '(' => "(",
            ')' => ")",
            '[' => "[",
            ']' => "]",
            '{' => "{",
            '}' => "}",
            ',' => ",",
            ';' => ";",
            '&' => {
                if self.eat('&') {
                    "&&"
                } else {
                    "&"
                }
            }
            '|' => {
                if self.eat('|') {
                    "||"
                } else {
                    "|"
                }
            }
            '+' => {
                if self.eat('+') {
                    "++"
                } else if self.eat('=') {
                    "+="
                } else {
                    "+"
                }
            }
            '-' => {
                if self.eat('-') {
                    "--"
                } else if self.eat('=') {
                    "-="
                } else if self.eat('>') {
                    "->"
                } else {
                    "-"
                }
            }
            '*' => {
                if self.eat('=') {
                    "*="
                } else {
                    "*"
                }
            }
            '/' => {
                if self.eat('.') {
                    "/."
                } else if self.eat('/') {
                    if self.eat('.') {
                        "//."
                    } else {
                        "//"
                    }
                } else if self.eat(';') {
                    "/;"
                } else if self.eat('=') {
                    "/="
                } else if self.eat('@') {
                    "/@"
                } else {
                    "/"
                }
            }
            '^' => "^",
            '=' => {
                if self.eat('=') {
                    if self.eat('=') {
                        "==="
                    } else {
                        "=="
                    }
                } else if self.eat('!') {
                    if self.eat('=') {
                        "=!="
                    } else {
                        return Err(self.err("expected `=` after `=!`"));
                    }
                } else {
                    "="
                }
            }
            '!' => {
                if self.eat('=') {
                    "!="
                } else {
                    "!"
                }
            }
            '<' => {
                if self.eat('=') {
                    "<="
                } else if self.eat('>') {
                    "<>"
                } else {
                    "<"
                }
            }
            '>' => {
                if self.eat('=') {
                    ">="
                } else {
                    ">"
                }
            }
            ':' => {
                if self.eat('=') {
                    ":="
                } else if self.eat('>') {
                    ":>"
                } else {
                    ":"
                }
            }
            '@' => "@",
            '≡' => "===",
            '≥' => ">=",
            '≤' => "<=",
            '≠' => "!=",
            '→' => "->",
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        })
    }
}

/// Canonicalizes unicode spellings (`π` -> `Pi`).
fn normalize_ident(name: String) -> String {
    match name.as_str() {
        "π" => "Pi".to_owned(),
        "∞" => "Infinity".to_owned(),
        _ => name,
    }
}

/// Tokenizes `src`, ending with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings/comments and unknown
/// characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        out.push(tok);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Integer(42), TokenKind::Eof]);
        assert_eq!(kinds("1.5"), vec![TokenKind::Real(1.5), TokenKind::Eof]);
        assert_eq!(kinds("1."), vec![TokenKind::Real(1.0), TokenKind::Eof]);
        assert_eq!(kinds("2*^3"), vec![TokenKind::Real(2000.0), TokenKind::Eof]);
        match &kinds("99999999999999999999999")[0] {
            TokenKind::BigInteger(b) => assert_eq!(b.to_string(), "99999999999999999999999"),
            other => panic!("expected bigint, got {other:?}"),
        }
    }

    #[test]
    fn idents_and_contexts() {
        assert_eq!(
            kinds("fooBar2"),
            vec![TokenKind::Ident("fooBar2".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("CUDA`Map"),
            vec![TokenKind::Ident("CUDA`Map".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("$x"),
            vec![TokenKind::Ident("$x".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("π"),
            vec![TokenKind::Ident("Pi".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn patterns() {
        assert_eq!(
            kinds("x_Integer"),
            vec![
                TokenKind::PatternLike {
                    name: Some("x".into()),
                    blanks: 1,
                    head: Some("Integer".into())
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("_"),
            vec![
                TokenKind::PatternLike {
                    name: None,
                    blanks: 1,
                    head: None
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("rest__"),
            vec![
                TokenKind::PatternLike {
                    name: Some("rest".into()),
                    blanks: 2,
                    head: None
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("___List"),
            vec![
                TokenKind::PatternLike {
                    name: None,
                    blanks: 3,
                    head: Some("List".into())
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn slots() {
        assert_eq!(kinds("#"), vec![TokenKind::Slot(1), TokenKind::Eof]);
        assert_eq!(kinds("#3"), vec![TokenKind::Slot(3), TokenKind::Eof]);
        assert_eq!(kinds("##"), vec![TokenKind::SlotSequence, TokenKind::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a /. b //. c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("/."),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("//."),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("=!=")[0], TokenKind::Punct("=!="));
        assert_eq!(kinds(":=")[0], TokenKind::Punct(":="));
        assert_eq!(kinds("->")[0], TokenKind::Punct("->"));
        assert_eq!(kinds("≥")[0], TokenKind::Punct(">="));
    }

    #[test]
    fn comments_nest() {
        assert_eq!(kinds("1 (* outer (* inner *) still *) 2"), kinds("1 2"));
        assert!(tokenize("(* unterminated").is_err());
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds(r#""a\"b\n""#),
            vec![TokenKind::Str("a\"b\n".into()), TokenKind::Eof]
        );
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab + cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 5);
    }
}
