//! The MExpr visitor API (§4.2): traversal control and rebuilding maps.
//!
//! The compiler's binding analysis is built on this: it walks all scoping
//! constructs, annotates variables, and rewrites the tree bottom-up.

use crate::expr::{Expr, ExprKind};

/// Controls traversal from a visitor callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitAction {
    /// Continue into children.
    Descend,
    /// Skip this node's children.
    SkipChildren,
    /// Stop the entire traversal.
    Stop,
}

/// Pre-order walk over `expr` (head before arguments). The callback decides
/// whether to descend. Returns `false` if the walk was stopped early.
///
/// # Examples
///
/// ```
/// use wolfram_expr::{parse, walk, VisitAction};
/// let e = parse("f[g[x], y]")?;
/// let mut names = Vec::new();
/// walk(&e, &mut |node| {
///     if let Some(s) = node.as_symbol() {
///         names.push(s.name().to_owned());
///     }
///     VisitAction::Descend
/// });
/// assert_eq!(names, ["f", "g", "x", "y"]);
/// # Ok::<(), wolfram_expr::ParseError>(())
/// ```
pub fn walk(expr: &Expr, f: &mut dyn FnMut(&Expr) -> VisitAction) -> bool {
    match f(expr) {
        VisitAction::Stop => false,
        VisitAction::SkipChildren => true,
        VisitAction::Descend => {
            if let ExprKind::Normal(n) = expr.kind() {
                if !walk(n.head(), f) {
                    return false;
                }
                for a in n.args() {
                    if !walk(a, f) {
                        return false;
                    }
                }
            }
            true
        }
    }
}

impl Expr {
    /// Rebuilds the tree bottom-up: children are transformed first, then the
    /// rebuilt node is passed to `f`, whose result replaces it.
    pub fn map_bottom_up(&self, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self.kind() {
            ExprKind::Normal(n) => {
                let head = n.head().map_bottom_up(f);
                let args: Vec<Expr> = n.args().iter().map(|a| a.map_bottom_up(f)).collect();
                Expr::normal(head, args)
            }
            _ => self.clone(),
        };
        f(rebuilt)
    }

    /// Rewrites top-down: `f` sees each node first; if it returns `Some`,
    /// the replacement is used *and not descended into*; otherwise the walk
    /// continues into the children.
    pub fn map_top_down(&self, f: &mut dyn FnMut(&Expr) -> Option<Expr>) -> Expr {
        if let Some(replacement) = f(self) {
            return replacement;
        }
        match self.kind() {
            ExprKind::Normal(n) => {
                let head = n.head().map_top_down(f);
                let args: Vec<Expr> = n.args().iter().map(|a| a.map_top_down(f)).collect();
                Expr::normal(head, args)
            }
            _ => self.clone(),
        }
    }

    /// Whether `pred` holds for any node in the tree.
    pub fn contains(&self, pred: &mut dyn FnMut(&Expr) -> bool) -> bool {
        let mut found = false;
        walk(self, &mut |e| {
            if pred(e) {
                found = true;
                VisitAction::Stop
            } else {
                VisitAction::Descend
            }
        });
        found
    }

    /// Whether the symbol named `name` occurs anywhere in the tree.
    pub fn contains_symbol(&self, name: &str) -> bool {
        self.contains(&mut |e| e.is_symbol(name))
    }

    /// Number of nodes in the tree (head + args, recursively).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        walk(self, &mut |_| {
            n += 1;
            VisitAction::Descend
        });
        n
    }

    /// Maximum depth of the tree (atoms have depth 1).
    pub fn depth(&self) -> usize {
        match self.kind() {
            ExprKind::Normal(n) => {
                1 + n
                    .args()
                    .iter()
                    .chain(std::iter::once(n.head()))
                    .map(Expr::depth)
                    .max()
                    .unwrap_or(0)
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn skip_children() {
        let e = parse("f[g[x], y]").unwrap();
        let mut seen = Vec::new();
        walk(&e, &mut |node| {
            if let Some(s) = node.as_symbol() {
                seen.push(s.name().to_owned());
            }
            if node.has_head("g") {
                VisitAction::SkipChildren
            } else {
                VisitAction::Descend
            }
        });
        assert_eq!(seen, ["f", "y"]);
    }

    #[test]
    fn early_stop() {
        let e = parse("f[a, b, c]").unwrap();
        let mut count = 0;
        let completed = walk(&e, &mut |node| {
            count += 1;
            if node.is_symbol("b") {
                VisitAction::Stop
            } else {
                VisitAction::Descend
            }
        });
        assert!(!completed);
        assert_eq!(count, 4); // f[a,b,c], f, a, b
    }

    #[test]
    fn bottom_up_mapping() {
        let e = parse("Plus[1, Plus[2, 3]]").unwrap();
        let out = e.map_bottom_up(&mut |node| {
            // Constant-fold fully-literal Plus nodes.
            if node.has_head("Plus") {
                if let Some(sum) = node
                    .args()
                    .iter()
                    .map(|a| a.as_i64())
                    .collect::<Option<Vec<_>>>()
                {
                    return Expr::int(sum.iter().sum());
                }
            }
            node
        });
        assert_eq!(out.as_i64(), Some(6));
    }

    #[test]
    fn top_down_stops_at_replacement() {
        let e = parse("f[f[x]]").unwrap();
        let out = e.map_top_down(&mut |node| node.has_head("f").then(|| Expr::sym("done")));
        assert_eq!(out.to_full_form(), "done");
    }

    #[test]
    fn measurements() {
        let e = parse("f[g[x], y]").unwrap();
        assert_eq!(e.node_count(), 6);
        assert_eq!(e.depth(), 3);
        assert!(e.contains_symbol("x"));
        assert!(!e.contains_symbol("z"));
    }
}
