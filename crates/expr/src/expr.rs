//! The `Expr` tree: atomic leaves and normal (head + arguments) nodes.
//!
//! Mirrors the paper's `MExpr` (§4.2): "MExpr is either an atomic leaf node
//! (representing a literal or Symbol) or a tree node (representing a Normal
//! Wolfram expression) and can be serialized and deserialized. Arbitrary
//! metadata can be set on any node within the AST."

use crate::bigint::BigInt;
use crate::symbol::{sym, Symbol};
use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

/// The payload of an expression node.
#[derive(Clone, PartialEq)]
pub enum ExprKind {
    /// A machine-sized integer literal.
    Integer(i64),
    /// An arbitrary-precision integer literal (always outside `i64` range).
    BigInteger(Arc<BigInt>),
    /// A machine real literal.
    Real(f64),
    /// A machine complex literal (`re + im I`).
    Complex(f64, f64),
    /// A string literal.
    Str(Arc<str>),
    /// A symbol.
    Symbol(Symbol),
    /// A normal expression: `head[arg1, ..., argN]`.
    Normal(Normal),
}

/// A normal expression: a head applied to zero or more arguments.
#[derive(Clone, PartialEq)]
pub struct Normal {
    head: Expr,
    args: Arc<[Expr]>,
}

impl Normal {
    /// The head expression.
    pub fn head(&self) -> &Expr {
        &self.head
    }

    /// The argument list.
    pub fn args(&self) -> &[Expr] {
        &self.args
    }
}

struct ExprData {
    kind: ExprKind,
    /// Arbitrary metadata, ignored by equality and hashing. The compiler uses
    /// this for binding links, source spans, and inferred types. Guarded by a
    /// mutex (not a `RefCell`) so expression trees — including the ones
    /// embedded in compiled artifacts — are `Send + Sync` and can be shared
    /// across serving threads.
    props: Mutex<Vec<(Arc<str>, Expr)>>,
}

/// A Wolfram Language expression. Cheap to clone (reference counted).
///
/// # Examples
///
/// ```
/// use wolfram_expr::Expr;
/// let e = Expr::call("Plus", [Expr::int(1), Expr::sym("x")]);
/// assert_eq!(e.to_full_form(), "Plus[1, x]");
/// assert_eq!(e.head_symbol().unwrap().name(), "Plus");
/// ```
#[derive(Clone)]
pub struct Expr(Arc<ExprData>);

impl Expr {
    fn from_kind(kind: ExprKind) -> Self {
        Expr(Arc::new(ExprData {
            kind,
            props: Mutex::new(Vec::new()),
        }))
    }

    /// A machine integer literal.
    pub fn int(v: i64) -> Self {
        Self::from_kind(ExprKind::Integer(v))
    }

    /// An integer literal, demoted to a machine integer when it fits.
    pub fn big(v: BigInt) -> Self {
        match v.to_i64() {
            Some(m) => Self::int(m),
            None => Self::from_kind(ExprKind::BigInteger(Arc::new(v))),
        }
    }

    /// A real literal.
    pub fn real(v: f64) -> Self {
        Self::from_kind(ExprKind::Real(v))
    }

    /// A complex literal.
    pub fn complex(re: f64, im: f64) -> Self {
        Self::from_kind(ExprKind::Complex(re, im))
    }

    /// A string literal.
    pub fn string(v: impl Into<Arc<str>>) -> Self {
        Self::from_kind(ExprKind::Str(v.into()))
    }

    /// A symbol expression.
    pub fn symbol(s: Symbol) -> Self {
        Self::from_kind(ExprKind::Symbol(s))
    }

    /// A symbol expression from a name (interned).
    pub fn sym(name: &str) -> Self {
        Self::symbol(Symbol::new(name))
    }

    /// The symbol `True` or `False`.
    pub fn bool(v: bool) -> Self {
        if v {
            Self::symbol(sym::true_())
        } else {
            Self::symbol(sym::false_())
        }
    }

    /// The symbol `Null`.
    pub fn null() -> Self {
        Self::symbol(sym::null())
    }

    /// A normal expression with an arbitrary head expression.
    pub fn normal(head: Expr, args: impl Into<Vec<Expr>>) -> Self {
        Self::from_kind(ExprKind::Normal(Normal {
            head,
            args: args.into().into(),
        }))
    }

    /// A normal expression with a symbol head: `name[args...]`.
    pub fn call(name: &str, args: impl Into<Vec<Expr>>) -> Self {
        Self::normal(Expr::sym(name), args)
    }

    /// `List[args...]`.
    pub fn list(args: impl Into<Vec<Expr>>) -> Self {
        Self::normal(Expr::symbol(sym::list()), args)
    }

    /// The node payload.
    pub fn kind(&self) -> &ExprKind {
        &self.0.kind
    }

    /// Whether this is an atomic (leaf) node.
    pub fn is_atom(&self) -> bool {
        !matches!(self.0.kind, ExprKind::Normal(_))
    }

    /// The head of the expression, following Wolfram semantics: the head of
    /// an atom is the symbol naming its type (`Integer`, `Real`, ...).
    pub fn head(&self) -> Expr {
        match &self.0.kind {
            ExprKind::Integer(_) | ExprKind::BigInteger(_) => Expr::symbol(sym::integer()),
            ExprKind::Real(_) => Expr::symbol(sym::real()),
            ExprKind::Complex(..) => Expr::symbol(sym::complex()),
            ExprKind::Str(_) => Expr::symbol(sym::string()),
            ExprKind::Symbol(_) => Expr::symbol(sym::symbol()),
            ExprKind::Normal(n) => n.head.clone(),
        }
    }

    /// The head as a symbol, if the head is a symbol (atoms included).
    pub fn head_symbol(&self) -> Option<Symbol> {
        match &self.0.kind {
            ExprKind::Normal(n) => match n.head.kind() {
                ExprKind::Symbol(s) => Some(s.clone()),
                _ => None,
            },
            _ => match self.head().kind() {
                ExprKind::Symbol(s) => Some(s.clone()),
                _ => unreachable!("atom heads are symbols"),
            },
        }
    }

    /// Whether the expression is a normal node whose head is the symbol
    /// `name`.
    pub fn has_head(&self, name: &str) -> bool {
        matches!(&self.0.kind, ExprKind::Normal(n)
            if matches!(n.head.kind(), ExprKind::Symbol(s) if s.name() == name))
    }

    /// The normal node, if this is one.
    pub fn as_normal(&self) -> Option<&Normal> {
        match &self.0.kind {
            ExprKind::Normal(n) => Some(n),
            _ => None,
        }
    }

    /// The arguments of a normal node, or `&[]` for atoms.
    pub fn args(&self) -> &[Expr] {
        match &self.0.kind {
            ExprKind::Normal(n) => &n.args,
            _ => &[],
        }
    }

    /// `Length`: number of arguments (0 for atoms).
    pub fn length(&self) -> usize {
        self.args().len()
    }

    /// The symbol, if this is a symbol node.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match &self.0.kind {
            ExprKind::Symbol(s) => Some(s.clone()),
            _ => None,
        }
    }

    /// Whether this is the symbol named `name`.
    pub fn is_symbol(&self, name: &str) -> bool {
        matches!(&self.0.kind, ExprKind::Symbol(s) if s.name() == name)
    }

    /// The machine integer value, if this is a machine integer.
    pub fn as_i64(&self) -> Option<i64> {
        match &self.0.kind {
            ExprKind::Integer(v) => Some(*v),
            _ => None,
        }
    }

    /// A numeric value as `f64` (integers, bigints, and reals).
    pub fn as_f64(&self) -> Option<f64> {
        match &self.0.kind {
            ExprKind::Integer(v) => Some(*v as f64),
            ExprKind::BigInteger(v) => Some(v.to_f64()),
            ExprKind::Real(v) => Some(*v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.0.kind {
            ExprKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `True`.
    pub fn is_true(&self) -> bool {
        self.is_symbol("True")
    }

    /// Whether this is `False`.
    pub fn is_false(&self) -> bool {
        self.is_symbol("False")
    }

    /// Replaces the arguments, keeping the head. Metadata is not carried
    /// over: the result is a fresh node.
    ///
    /// # Panics
    ///
    /// Panics if this is an atom.
    pub fn with_args(&self, args: impl Into<Vec<Expr>>) -> Expr {
        match &self.0.kind {
            ExprKind::Normal(n) => Expr::normal(n.head.clone(), args),
            _ => panic!("with_args on atom {self:?}"),
        }
    }

    /// Attaches metadata `key -> value` to this node (paper §4.2: "Arbitrary
    /// metadata can be set on any node within the AST"). Metadata does not
    /// participate in equality or hashing.
    pub fn set_prop(&self, key: &str, value: Expr) {
        let mut props = lock_props(&self.0.props);
        if let Some(slot) = props.iter_mut().find(|(k, _)| &**k == key) {
            slot.1 = value;
        } else {
            props.push((Arc::from(key), value));
        }
    }

    /// Reads metadata attached with [`Expr::set_prop`].
    pub fn prop(&self, key: &str) -> Option<Expr> {
        lock_props(&self.0.props)
            .iter()
            .find(|(k, _)| &**k == key)
            .map(|(_, v)| v.clone())
    }

    /// Structural identity: whether the two handles point at the same node.
    pub fn ptr_eq(&self, other: &Expr) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Locks a metadata table, recovering from poisoning: props are plain data,
/// so a panic mid-update cannot leave them logically inconsistent.
fn lock_props(
    props: &Mutex<Vec<(Arc<str>, Expr)>>,
) -> std::sync::MutexGuard<'_, Vec<(Arc<str>, Expr)>> {
    props
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0.kind == other.0.kind
    }
}

impl Eq for Expr {}

impl std::hash::Hash for Expr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0.kind {
            ExprKind::Integer(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            ExprKind::BigInteger(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            ExprKind::Real(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            ExprKind::Complex(re, im) => {
                3u8.hash(state);
                re.to_bits().hash(state);
                im.to_bits().hash(state);
            }
            ExprKind::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            ExprKind::Symbol(s) => {
                5u8.hash(state);
                s.hash(state);
            }
            ExprKind::Normal(n) => {
                6u8.hash(state);
                n.head.hash(state);
                for a in n.args.iter() {
                    a.hash(state);
                }
            }
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_full_form())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_input_form())
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::int(v)
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::real(v)
    }
}

impl From<bool> for Expr {
    fn from(v: bool) -> Self {
        Expr::bool(v)
    }
}

impl From<&str> for Expr {
    fn from(v: &str) -> Self {
        Expr::string(v)
    }
}

impl From<Symbol> for Expr {
    fn from(s: Symbol) -> Self {
        Expr::symbol(s)
    }
}

impl From<BigInt> for Expr {
    fn from(v: BigInt) -> Self {
        Expr::big(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_heads() {
        assert_eq!(Expr::int(3).head().to_full_form(), "Integer");
        assert_eq!(Expr::real(1.5).head().to_full_form(), "Real");
        assert_eq!(Expr::string("hi").head().to_full_form(), "String");
        assert_eq!(Expr::sym("x").head().to_full_form(), "Symbol");
        assert_eq!(Expr::complex(1.0, 2.0).head().to_full_form(), "Complex");
        let big = Expr::big(BigInt::parse("123456789012345678901").unwrap());
        assert_eq!(big.head().to_full_form(), "Integer");
        assert!(big.is_atom());
    }

    #[test]
    fn big_demotes_to_machine() {
        let e = Expr::big(BigInt::from(42i64));
        assert_eq!(e.as_i64(), Some(42));
    }

    #[test]
    fn normal_structure() {
        let e = Expr::call("f", [Expr::int(1), Expr::int(2)]);
        assert!(!e.is_atom());
        assert_eq!(e.length(), 2);
        assert!(e.has_head("f"));
        assert_eq!(e.args()[1].as_i64(), Some(2));
        let g = e.with_args(vec![Expr::int(9)]);
        assert_eq!(g.to_full_form(), "f[9]");
    }

    #[test]
    fn equality_ignores_props() {
        let a = Expr::call("f", [Expr::int(1)]);
        let b = Expr::call("f", [Expr::int(1)]);
        a.set_prop("binding", Expr::int(7));
        assert_eq!(a, b);
        assert_eq!(a.prop("binding").unwrap().as_i64(), Some(7));
        assert!(b.prop("binding").is_none());
    }

    #[test]
    fn props_overwrite() {
        let a = Expr::sym("x");
        a.set_prop("t", Expr::int(1));
        a.set_prop("t", Expr::int(2));
        assert_eq!(a.prop("t").unwrap().as_i64(), Some(2));
    }

    #[test]
    // Metadata is interior-mutable but excluded from Hash/Eq, so Expr is a
    // sound hash key despite what the lint sees.
    #[allow(clippy::mutable_key_type)]
    fn hash_consistency() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Expr::call("f", [Expr::int(1)]));
        assert!(set.contains(&Expr::call("f", [Expr::int(1)])));
        assert!(!set.contains(&Expr::call("f", [Expr::int(2)])));
    }

    #[test]
    fn compound_heads() {
        // Function[x, x][5] -- head is itself a normal expression.
        let f = Expr::call("Function", [Expr::sym("x"), Expr::sym("x")]);
        let applied = Expr::normal(f.clone(), vec![Expr::int(5)]);
        assert_eq!(applied.head(), f);
        assert!(applied.head_symbol().is_none());
    }
}
