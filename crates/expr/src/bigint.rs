//! Arbitrary-precision signed integers.
//!
//! The Wolfram interpreter switches to arbitrary-precision arithmetic when a
//! machine operation overflows (the paper's *soft numerical failure*, F2).
//! This module is the from-scratch bignum that backs that fallback: sign +
//! magnitude in base 2^32 with schoolbook algorithms, which is all the
//! reproduction needs (the `cfib[200]` demo, factorials, and the primality
//! seed-table generation).

use std::cmp::Ordering;
use std::fmt;

const BASE_BITS: u32 = 32;

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use wolfram_expr::BigInt;
/// let a = BigInt::from(i64::MAX);
/// let b = &a + &a;
/// assert_eq!(b.to_string(), "18446744073709551614");
/// assert!(b.to_i64().is_none());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    /// `false` = non-negative. Zero is always non-negative with empty mag.
    negative: bool,
    /// Little-endian base-2^32 digits, no trailing zeros.
    mag: Vec<u32>,
}

impl BigInt {
    /// The zero value.
    pub fn zero() -> Self {
        BigInt {
            negative: false,
            mag: Vec::new(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt {
            negative: false,
            mag: vec![1],
        }
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Parses a decimal string, with optional leading `-`.
    ///
    /// # Errors
    ///
    /// Returns `None` on an empty string or any non-digit character.
    pub fn parse(s: &str) -> Option<Self> {
        let (negative, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if digits.is_empty() {
            return None;
        }
        let mut out = BigInt::zero();
        for ch in digits.chars() {
            let d = ch.to_digit(10)?;
            out = out.mul_u32(10);
            out = out.add_u32(d);
        }
        out.negative = negative && !out.is_zero();
        Some(out)
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let v = self.mag[0] as i64;
                Some(if self.negative { -v } else { v })
            }
            2 => {
                let v = (self.mag[0] as u64) | ((self.mag[1] as u64) << BASE_BITS);
                if self.negative {
                    if v <= (i64::MAX as u64) + 1 {
                        Some((v as i64).wrapping_neg())
                    } else {
                        None
                    }
                } else if v <= i64::MAX as u64 {
                    Some(v as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Converts to `f64`, losing precision for large magnitudes.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &d in self.mag.iter().rev() {
            v = v * 4294967296.0 + d as f64;
        }
        if self.negative {
            -v
        } else {
            v
        }
    }

    /// The additive inverse.
    pub fn neg(&self) -> Self {
        if self.is_zero() {
            self.clone()
        } else {
            BigInt {
                negative: !self.negative,
                mag: self.mag.clone(),
            }
        }
    }

    /// Raises `self` to the power `exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Quotient and remainder on division by a small unsigned value.
    ///
    /// The remainder carries the sign of `self` (truncated division).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_u32(&self, divisor: u32) -> (Self, u32) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u32; self.mag.len()];
        let mut rem: u64 = 0;
        for (i, &d) in self.mag.iter().enumerate().rev() {
            let cur = (rem << BASE_BITS) | d as u64;
            quotient[i] = (cur / divisor as u64) as u32;
            rem = cur % divisor as u64;
        }
        let q = BigInt {
            negative: self.negative,
            mag: quotient,
        }
        .normalized();
        (q, rem as u32)
    }

    /// Remainder of the magnitude modulo `m` (ignores sign; callers adjust).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "modulo zero");
        let m = m as u128;
        let mut rem: u128 = 0;
        for &limb in self.mag.iter().rev() {
            rem = ((rem << BASE_BITS) | limb as u128) % m;
        }
        rem as u64
    }

    fn normalized(mut self) -> Self {
        while self.mag.last() == Some(&0) {
            self.mag.pop();
        }
        if self.mag.is_empty() {
            self.negative = false;
        }
        self
    }

    fn add_u32(&self, v: u32) -> Self {
        debug_assert!(!self.negative);
        let mut mag = self.mag.clone();
        let mut carry = v as u64;
        for d in mag.iter_mut() {
            let sum = *d as u64 + carry;
            *d = sum as u32;
            carry = sum >> BASE_BITS;
            if carry == 0 {
                break;
            }
        }
        if carry > 0 {
            mag.push(carry as u32);
        }
        BigInt {
            negative: false,
            mag,
        }
    }

    fn mul_u32(&self, v: u32) -> Self {
        let mut mag = Vec::with_capacity(self.mag.len() + 1);
        let mut carry: u64 = 0;
        for &d in &self.mag {
            let prod = d as u64 * v as u64 + carry;
            mag.push(prod as u32);
            carry = prod >> BASE_BITS;
        }
        if carry > 0 {
            mag.push(carry as u32);
        }
        BigInt {
            negative: self.negative,
            mag,
        }
        .normalized()
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            if x != y {
                return x.cmp(y);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for (i, &digit) in long.iter().enumerate() {
            let sum = digit as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> BASE_BITS;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        out
    }

    /// `a - b` where `a >= b` in magnitude.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for (i, &digit) in a.iter().enumerate() {
            let mut diff = digit as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if diff < 0 {
                diff += 1 << BASE_BITS;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        out
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        let negative = v < 0;
        let u = v.unsigned_abs();
        let mut mag = Vec::new();
        if u != 0 {
            mag.push(u as u32);
            if u >> BASE_BITS != 0 {
                mag.push((u >> BASE_BITS) as u32);
            }
        }
        BigInt { negative, mag }
    }
}

impl From<u64> for BigInt {
    fn from(u: u64) -> Self {
        let mut mag = Vec::new();
        if u != 0 {
            mag.push(u as u32);
            if u >> BASE_BITS != 0 {
                mag.push((u >> BASE_BITS) as u32);
            }
        }
        BigInt {
            negative: false,
            mag,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_mag(&self.mag, &other.mag),
            (true, true) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl std::ops::Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.negative == rhs.negative {
            BigInt {
                negative: self.negative,
                mag: BigInt::add_mag(&self.mag, &rhs.mag),
            }
            .normalized()
        } else {
            match BigInt::cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    negative: self.negative,
                    mag: BigInt::sub_mag(&self.mag, &rhs.mag),
                }
                .normalized(),
                Ordering::Less => BigInt {
                    negative: rhs.negative,
                    mag: BigInt::sub_mag(&rhs.mag, &self.mag),
                }
                .normalized(),
            }
        }
    }
}

impl std::ops::Sub for &BigInt {
    type Output = BigInt;
    #[allow(clippy::suspicious_arithmetic_impl)] // a - b == a + (-b)
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &rhs.neg()
    }
}

impl std::ops::Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let mut mag = vec![0u32; self.mag.len() + rhs.mag.len()];
        for (i, &a) in self.mag.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in rhs.mag.iter().enumerate() {
                let cur = mag[i + j] as u64 + a as u64 * b as u64 + carry;
                mag[i + j] = cur as u32;
                carry = cur >> BASE_BITS;
            }
            let mut k = i + rhs.mag.len();
            while carry > 0 {
                let cur = mag[k] as u64 + carry;
                mag[k] = cur as u32;
                carry = cur >> BASE_BITS;
                k += 1;
            }
        }
        BigInt {
            negative: self.negative != rhs.negative,
            mag,
        }
        .normalized()
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut chunks = Vec::new();
        let mut cur = BigInt {
            negative: false,
            mag: self.mag.clone(),
        };
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        if self.negative {
            f.write_str("-")?;
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for chunk in chunks.iter().rev().skip(1) {
            write!(f, "{chunk:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_i64() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1 << 40] {
            assert_eq!(BigInt::from(v).to_i64(), Some(v), "roundtrip {v}");
            assert_eq!(BigInt::from(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn parse_and_display() {
        let s = "123456789012345678901234567890";
        assert_eq!(BigInt::parse(s).unwrap().to_string(), s);
        assert_eq!(
            BigInt::parse("-987654321").unwrap().to_string(),
            "-987654321"
        );
        assert_eq!(BigInt::parse("0").unwrap(), BigInt::zero());
        assert_eq!(BigInt::parse("-0").unwrap(), BigInt::zero());
        assert!(BigInt::parse("").is_none());
        assert!(BigInt::parse("12a").is_none());
    }

    #[test]
    fn addition_across_signs() {
        let a = BigInt::from(100i64);
        let b = BigInt::from(-250i64);
        assert_eq!((&a + &b).to_i64(), Some(-150));
        assert_eq!((&b + &a).to_i64(), Some(-150));
        assert_eq!((&a + &a.neg()).to_i64(), Some(0));
    }

    #[test]
    fn overflow_beyond_i64() {
        let max = BigInt::from(i64::MAX);
        let sum = &max + &BigInt::one();
        assert_eq!(sum.to_i64(), None);
        assert_eq!(sum.to_string(), "9223372036854775808");
        let neg = &BigInt::from(i64::MIN) - &BigInt::one();
        assert_eq!(neg.to_i64(), None);
        assert_eq!(neg.to_string(), "-9223372036854775809");
    }

    #[test]
    fn i64_min_fits() {
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn multiplication() {
        let a = BigInt::parse("123456789123456789").unwrap();
        let b = BigInt::parse("987654321987654321").unwrap();
        assert_eq!(
            (&a * &b).to_string(),
            "121932631356500531347203169112635269"
        );
        assert_eq!((&a * &BigInt::zero()), BigInt::zero());
        assert_eq!(
            (&a.neg() * &b).to_string(),
            "-121932631356500531347203169112635269"
        );
    }

    #[test]
    fn fib_200_recurrence() {
        // The shifted Fibonacci recurrence behind the paper's cfib example,
        // iterated 200 times; value cross-checked against an independent
        // bignum implementation.
        let mut a = BigInt::one();
        let mut b = BigInt::one();
        for _ in 0..200 {
            let next = &a + &b;
            a = b;
            b = next;
        }
        assert_eq!(b.to_string(), "734544867157818093234908902110449296423351");
    }

    #[test]
    fn pow_and_ordering() {
        assert_eq!(BigInt::from(2i64).pow(10).to_i64(), Some(1024));
        assert_eq!(
            BigInt::from(10i64).pow(30).to_string(),
            "1".to_owned() + &"0".repeat(30)
        );
        assert!(BigInt::from(-5i64) < BigInt::from(3i64));
        assert!(BigInt::from(-5i64) < BigInt::from(-3i64));
        assert!(BigInt::from(7i64) > BigInt::from(3i64));
    }

    #[test]
    fn to_f64_approximates() {
        let v = BigInt::parse("1000000000000000000000").unwrap();
        let f = v.to_f64();
        assert!((f - 1e21).abs() / 1e21 < 1e-12);
        assert_eq!(BigInt::from(-42i64).to_f64(), -42.0);
    }

    #[test]
    fn rem_u64_matches_reference() {
        let v = BigInt::parse("123456789012345678901234567890").unwrap();
        // Reference via string-based long division at small moduli.
        let mut r: u128 = 0;
        for ch in "123456789012345678901234567890".chars() {
            r = (r * 10 + ch.to_digit(10).unwrap() as u128) % 97;
        }
        assert_eq!(v.rem_u64(97), r as u64);
        assert_eq!(BigInt::from(0i64).rem_u64(5), 0);
        assert_eq!(BigInt::from(1_000_000_007i64).rem_u64(1_000_000_007), 0);
    }

    #[test]
    fn div_rem_small() {
        let v = BigInt::parse("1000000007").unwrap();
        let (q, r) = v.div_rem_u32(10);
        assert_eq!(q.to_string(), "100000000");
        assert_eq!(r, 7);
    }
}
