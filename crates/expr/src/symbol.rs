//! Interned symbols.
//!
//! Symbols are the identifiers of the Wolfram Language (`Plus`, `x`,
//! `CUDA`Map`, ...). They are interned in a thread-local table so that two
//! symbols with the same name share storage and compare by pointer on the
//! fast path.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// An interned Wolfram Language symbol.
///
/// Cheap to clone (a reference-counted pointer). Equality first compares
/// pointers and falls back to string comparison, so symbols from different
/// threads still compare correctly.
///
/// # Examples
///
/// ```
/// use wolfram_expr::Symbol;
/// let a = Symbol::new("Plus");
/// let b = Symbol::new("Plus");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "Plus");
/// ```
#[derive(Clone)]
pub struct Symbol(Arc<str>);

thread_local! {
    static INTERNER: RefCell<HashSet<Arc<str>>> = RefCell::new(HashSet::new());
}

impl Symbol {
    /// Interns `name` and returns the symbol for it.
    pub fn new(name: &str) -> Self {
        INTERNER.with(|table| {
            let mut table = table.borrow_mut();
            if let Some(existing) = table.get(name) {
                Symbol(Arc::clone(existing))
            } else {
                let rc: Arc<str> = Arc::from(name);
                table.insert(Arc::clone(&rc));
                Symbol(rc)
            }
        })
    }

    /// The symbol's full name, including any context prefix.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The name with any `context`` prefix stripped.
    ///
    /// ```
    /// use wolfram_expr::Symbol;
    /// assert_eq!(Symbol::new("CUDA`Map").short_name(), "Map");
    /// assert_eq!(Symbol::new("Plus").short_name(), "Plus");
    /// ```
    pub fn short_name(&self) -> &str {
        match self.0.rfind('`') {
            Some(ix) => &self.0[ix + 1..],
            None => &self.0,
        }
    }

    /// The context prefix (up to and including the final backtick), if any.
    pub fn context(&self) -> Option<&str> {
        self.0.rfind('`').map(|ix| &self.0[..=ix])
    }

    /// Whether this symbol lives in the `System`` (builtin) namespace, i.e.
    /// has no context prefix or the `System`` prefix.
    pub fn is_system(&self) -> bool {
        match self.context() {
            None => true,
            Some(ctx) => ctx == "System`",
        }
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Self {
        Symbol::new(name)
    }
}

macro_rules! well_known {
    ($($fn_name:ident => $name:literal),+ $(,)?) => {
        /// Accessors for frequently used `System`` symbols.
        pub mod sym {
            use super::Symbol;
            $(
                #[doc = concat!("The symbol `", $name, "`.")]
                pub fn $fn_name() -> Symbol { Symbol::new($name) }
            )+
        }
    };
}

well_known! {
    plus => "Plus",
    times => "Times",
    subtract => "Subtract",
    minus => "Minus",
    divide => "Divide",
    power => "Power",
    list => "List",
    rule => "Rule",
    rule_delayed => "RuleDelayed",
    blank => "Blank",
    blank_sequence => "BlankSequence",
    blank_null_sequence => "BlankNullSequence",
    pattern => "Pattern",
    condition => "Condition",
    pattern_test => "PatternTest",
    alternatives => "Alternatives",
    hold_pattern => "HoldPattern",
    sequence => "Sequence",
    function => "Function",
    slot => "Slot",
    slot_sequence => "SlotSequence",
    set => "Set",
    set_delayed => "SetDelayed",
    compound_expression => "CompoundExpression",
    if_ => "If",
    which => "Which",
    while_ => "While",
    for_ => "For",
    do_ => "Do",
    module => "Module",
    block => "Block",
    with => "With",
    true_ => "True",
    false_ => "False",
    null => "Null",
    and => "And",
    or => "Or",
    not => "Not",
    equal => "Equal",
    unequal => "Unequal",
    less => "Less",
    greater => "Greater",
    less_equal => "LessEqual",
    greater_equal => "GreaterEqual",
    same_q => "SameQ",
    unsame_q => "UnsameQ",
    part => "Part",
    span => "Span",
    map => "Map",
    apply => "Apply",
    fold => "Fold",
    nest => "Nest",
    nest_list => "NestList",
    table => "Table",
    typed => "Typed",
    type_specifier => "TypeSpecifier",
    type_for_all => "TypeForAll",
    type_literal => "TypeLiteral",
    element => "Element",
    integer => "Integer",
    real => "Real",
    complex => "Complex",
    string => "String",
    symbol => "Symbol",
    increment => "Increment",
    decrement => "Decrement",
    pre_increment => "PreIncrement",
    pre_decrement => "PreDecrement",
    add_to => "AddTo",
    subtract_from => "SubtractFrom",
    times_by => "TimesBy",
    divide_by => "DivideBy",
    replace_all => "ReplaceAll",
    replace_repeated => "ReplaceRepeated",
    string_join => "StringJoin",
    kernel_function => "KernelFunction",
    return_ => "Return",
    break_ => "Break",
    continue_ => "Continue",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_storage() {
        let a = Symbol::new("SharedStorageTest");
        let b = Symbol::new("SharedStorageTest");
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn equality_and_ordering() {
        assert_eq!(Symbol::new("a"), Symbol::new("a"));
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
        assert!(Symbol::new("a") < Symbol::new("b"));
    }

    #[test]
    fn context_handling() {
        let s = Symbol::new("CUDA`Map");
        assert_eq!(s.short_name(), "Map");
        assert_eq!(s.context(), Some("CUDA`"));
        assert!(!s.is_system());
        assert!(Symbol::new("Plus").is_system());
        assert!(Symbol::new("System`Plus").is_system());
    }

    #[test]
    fn well_known_symbols() {
        assert_eq!(sym::plus().name(), "Plus");
        assert_eq!(sym::rule_delayed().name(), "RuleDelayed");
    }

    #[test]
    fn display_is_name() {
        assert_eq!(Symbol::new("NestList").to_string(), "NestList");
    }
}
