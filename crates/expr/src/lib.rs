//! MExpr: the Wolfram Language expression substrate.
//!
//! This crate implements the AST data structure the CGO 2020 paper calls
//! `MExpr` (§4.2): an expression is either an *atomic* leaf node (integer,
//! arbitrary-precision integer, real, complex, string, or symbol) or a
//! *normal* node with a head expression and arguments. Arbitrary metadata can
//! be attached to any node, expressions can be serialized (`FullForm`) and
//! deserialized (the parser), and transformations are carried out either with
//! the pattern/rule system or the visitor API.
//!
//! # Examples
//!
//! ```
//! use wolfram_expr::parse;
//!
//! let e = parse("1 + f[x, 2.5]")?;
//! assert_eq!(e.to_full_form(), "Plus[1, f[x, 2.5]]");
//! # Ok::<(), wolfram_expr::ParseError>(())
//! ```

pub mod bigint;
pub mod expr;
pub mod format;
pub mod lex;
pub mod parse;
pub mod pattern;
pub mod rules;
pub mod symbol;
pub mod visit;

pub use bigint::BigInt;
pub use expr::{Expr, ExprKind, Normal};
pub use lex::{LexError, Token, TokenKind};
pub use parse::{parse, parse_all, ParseError};
pub use pattern::{match_pattern, Bindings, MatchCtx};
pub use rules::{replace_all, replace_repeated, Rule};
pub use symbol::Symbol;
pub use visit::{walk, VisitAction};
