//! Rule application: `Rule`/`RuleDelayed`, substitution with sequence
//! splicing, `ReplaceAll`, and `ReplaceRepeated`.
//!
//! This is the engine behind the paper's pattern-based macro substitution
//! system (§4.2) and the interpreter's rewriting semantics.

use crate::expr::{Expr, ExprKind};
use crate::pattern::{match_pattern, Bindings, MatchCtx};
use std::collections::HashMap;

/// A rewrite rule `lhs -> rhs` (or delayed `lhs :> rhs`).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The pattern to match.
    pub lhs: Expr,
    /// The replacement template.
    pub rhs: Expr,
    /// Whether the rule was written with `RuleDelayed` (`:>`). In this
    /// reproduction both kinds substitute structurally; the distinction is
    /// kept for fidelity of round-trips and interpreter semantics.
    pub delayed: bool,
}

impl Rule {
    /// Builds a rule from `Rule[lhs, rhs]` or `RuleDelayed[lhs, rhs]`.
    pub fn from_expr(e: &Expr) -> Option<Rule> {
        let delayed = if e.has_head("Rule") {
            false
        } else if e.has_head("RuleDelayed") {
            true
        } else {
            return None;
        };
        let [lhs, rhs] = e.args() else { return None };
        Some(Rule {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            delayed,
        })
    }

    /// Builds a rule list from a single rule expression or a `List` of them.
    pub fn list_from_expr(e: &Expr) -> Option<Vec<Rule>> {
        if e.has_head("List") {
            e.args().iter().map(Rule::from_expr).collect()
        } else {
            Rule::from_expr(e).map(|r| vec![r])
        }
    }

    /// Attempts to apply this rule at the root of `expr`.
    pub fn try_apply(&self, expr: &Expr, ctx: &mut MatchCtx) -> Option<Expr> {
        let mut bindings = Bindings::new();
        if match_pattern(expr, &self.lhs, &mut bindings, ctx) {
            Some(apply_bindings(&self.rhs, &bindings))
        } else {
            None
        }
    }
}

/// Substitutes `bindings` into `template`, splicing `Sequence[...]` values
/// into argument lists, following Wolfram substitution semantics.
pub fn apply_bindings(template: &Expr, bindings: &Bindings) -> Expr {
    if bindings.is_empty() {
        return template.clone();
    }
    substitute(template, bindings)
}

fn substitute(e: &Expr, bindings: &Bindings) -> Expr {
    match e.kind() {
        ExprKind::Symbol(s) => match bindings.get(s) {
            Some(v) => v.clone(),
            None => e.clone(),
        },
        ExprKind::Normal(n) => {
            let head = substitute(n.head(), bindings);
            let mut args = Vec::with_capacity(n.args().len());
            for a in n.args() {
                let sub = substitute(a, bindings);
                if sub.has_head("Sequence") {
                    args.extend(sub.args().iter().cloned());
                } else {
                    args.push(sub);
                }
            }
            Expr::normal(head, args)
        }
        _ => e.clone(),
    }
}

/// Substitutes free occurrences of symbols using a symbol-to-expression map,
/// without sequence splicing. Used for plain renamings.
pub fn substitute_symbols(e: &Expr, map: &HashMap<crate::symbol::Symbol, Expr>) -> Expr {
    if map.is_empty() {
        return e.clone();
    }
    substitute(e, map)
}

/// Applies the first matching rule at every subexpression position,
/// top-down, leftmost-outermost; each position is rewritten at most once
/// (the result of a rewrite is not revisited). This is Wolfram `ReplaceAll`.
pub fn replace_all(expr: &Expr, rules: &[Rule], ctx: &mut MatchCtx) -> Expr {
    for rule in rules {
        if let Some(replaced) = rule.try_apply(expr, ctx) {
            return replaced;
        }
    }
    match expr.kind() {
        ExprKind::Normal(n) => {
            let head = replace_all(n.head(), rules, ctx);
            let args: Vec<Expr> = n
                .args()
                .iter()
                .map(|a| replace_all(a, rules, ctx))
                .collect();
            Expr::normal(head, args)
        }
        _ => expr.clone(),
    }
}

/// Iterates [`replace_all`] until a fixed point (or the iteration cap, as
/// Wolfram's `ReplaceRepeated` does).
pub fn replace_repeated(expr: &Expr, rules: &[Rule], ctx: &mut MatchCtx) -> Expr {
    const MAX_ITERATIONS: usize = 1 << 16;
    let mut current = expr.clone();
    for _ in 0..MAX_ITERATIONS {
        let next = replace_all(&current, rules, ctx);
        if next == current {
            return current;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn rules(src: &str) -> Vec<Rule> {
        Rule::list_from_expr(&parse(src).unwrap()).unwrap()
    }

    fn ra(expr: &str, rule_src: &str) -> String {
        let e = parse(expr).unwrap();
        replace_all(&e, &rules(rule_src), &mut MatchCtx::default()).to_full_form()
    }

    #[test]
    fn simple_replacement() {
        assert_eq!(ra("x + y", "x -> 1"), "Plus[1, y]");
        assert_eq!(ra("f[f[x]]", "f[a_] -> g[a]"), "g[f[x]]"); // outermost once
    }

    #[test]
    fn sequence_splicing() {
        assert_eq!(ra("f[1, 2, 3]", "f[x_, rest__] -> g[rest]"), "g[2, 3]");
        assert_eq!(ra("f[1]", "f[x___] -> h[0, x]"), "h[0, 1]");
        assert_eq!(ra("f[]", "f[x___] -> h[x]"), "h[]");
    }

    #[test]
    fn rule_lists_first_match_wins() {
        assert_eq!(ra("f[0]", "{f[0] -> zero, f[x_] -> other[x]}"), "zero");
        assert_eq!(ra("f[5]", "{f[0] -> zero, f[x_] -> other[x]}"), "other[5]");
    }

    #[test]
    fn replace_repeated_reaches_fixed_point() {
        let e = parse("f[f[f[x]]]").unwrap();
        let rs = rules("f[a_] -> a");
        let out = replace_repeated(&e, &rs, &mut MatchCtx::default());
        assert_eq!(out.to_full_form(), "x");
    }

    #[test]
    fn delayed_rules_parse() {
        let rs = rules("a :> b");
        assert!(rs[0].delayed);
    }

    #[test]
    fn head_positions_rewrite() {
        assert_eq!(ra("f[x]", "f -> g"), "g[x]");
    }

    #[test]
    fn string_replacement_example() {
        // The paper's mutability example rewrites "foo" -> "grok" in strings
        // at the StringReplace level; here we check expression-level strings.
        assert_eq!(
            ra("g[\"foo\", \"bar\"]", "\"foo\" -> \"grok\""),
            "g[\"grok\", \"bar\"]"
        );
    }

    #[test]
    fn paper_and_macro_rules() {
        // The six And rules from §4.2, applied with ReplaceRepeated.
        let rule_src = r#"{
            And[x_, y_, rest__] :> And[And[x, y], rest],
            And[False, _] -> False,
            And[_, False] -> False,
            And[True, rest__] :> And[rest],
            And[x_] :> SameQ[x, True],
            And[x_, y_] :> If[SameQ[x, True], SameQ[y, True], False]
        }"#;
        let rs = rules(rule_src);
        let e = parse("And[a, b]").unwrap();
        let out = replace_repeated(&e, &rs, &mut MatchCtx::default());
        assert_eq!(
            out.to_full_form(),
            "If[SameQ[a, True], SameQ[b, True], False]"
        );
        let e = parse("And[False, a]").unwrap();
        let out = replace_repeated(&e, &rs, &mut MatchCtx::default());
        assert_eq!(out.to_full_form(), "False");
    }
}
