//! A Pratt parser for the Wolfram Language subset used throughout the paper:
//! bracketed application, lists, patterns, rules, pure functions, operators,
//! `Part` double-brackets, and compound expressions.
//!
//! The grammar intentionally covers what the paper's programs need rather
//! than the full language (no implicit multiplication, no `Span`, no
//! two-dimensional input). See DESIGN.md §6.

use crate::expr::Expr;
use crate::lex::{tokenize, LexError, Token, TokenKind};
use std::fmt;

/// An error produced by [`parse`] / [`parse_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a single expression; trailing input is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical errors, malformed syntax, or leftover
/// tokens.
///
/// # Examples
///
/// ```
/// use wolfram_expr::parse;
/// let e = parse("Function[{n}, If[n < 1, 1, fib[n-1] + fib[n-2]]]")?;
/// assert!(e.has_head("Function"));
/// # Ok::<(), wolfram_expr::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.parse_expr(0)?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a sequence of expressions until end of input.
///
/// Statements are separated by maximal-munch boundaries (usually semicolons
/// or newlines between complete expressions).
///
/// # Errors
///
/// Returns a [`ParseError`] as for [`parse`].
pub fn parse_all(src: &str) -> Result<Vec<Expr>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.parse_expr(0)?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        *self.peek() == TokenKind::Eof
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), TokenKind::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found `{}`", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input `{}`", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    /// Left binding power of the operator at the cursor, 0 if none.
    fn lbp(&self) -> u8 {
        match self.peek() {
            TokenKind::Punct(p) => match *p {
                ";" => 10,
                "=" | ":=" | "+=" | "-=" | "*=" | "/=" => 20,
                "//" => 25,
                "&" => 30,
                "/." | "//." => 42,
                "->" | ":>" => 50,
                "/;" => 55,
                "|" => 58,
                "||" => 60,
                "&&" => 70,
                "===" | "=!=" => 90,
                "==" | "!=" | "<" | ">" | "<=" | ">=" => 100,
                "<>" => 110,
                "+" | "-" => 120,
                "*" | "/" => 130,
                "/@" => 137,
                "^" => 150,
                "++" | "--" => 155,
                "@" => 160,
                "[" => 170,
                _ => 0,
            },
            _ => 0,
        }
    }

    fn parse_expr(&mut self, rbp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.nud()?;
        while self.lbp() > rbp {
            lhs = self.led(lhs)?;
        }
        Ok(lhs)
    }

    fn nud(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            TokenKind::Integer(v) => Ok(Expr::int(v)),
            TokenKind::BigInteger(v) => Ok(Expr::big(v)),
            TokenKind::Real(v) => Ok(Expr::real(v)),
            TokenKind::Str(s) => Ok(Expr::string(s)),
            TokenKind::Ident(name) => Ok(Expr::sym(&name)),
            TokenKind::Slot(n) => Ok(Expr::call("Slot", [Expr::int(n)])),
            TokenKind::SlotSequence => Ok(Expr::call("SlotSequence", [Expr::int(1)])),
            TokenKind::PatternLike { name, blanks, head } => {
                let blank_head = match blanks {
                    1 => "Blank",
                    2 => "BlankSequence",
                    _ => "BlankNullSequence",
                };
                let blank = match head {
                    Some(h) => Expr::call(blank_head, [Expr::sym(&h)]),
                    None => Expr::call(blank_head, []),
                };
                Ok(match name {
                    Some(n) => Expr::call("Pattern", [Expr::sym(&n), blank]),
                    None => blank,
                })
            }
            TokenKind::Punct("(") => {
                let inner = self.parse_expr(0)?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            TokenKind::Punct("{") => {
                let args = self.parse_arg_list("}")?;
                Ok(Expr::list(args))
            }
            TokenKind::Punct("-") => {
                let operand = self.parse_expr(139)?;
                Ok(match operand.as_i64() {
                    Some(v) => match v.checked_neg() {
                        Some(n) => Expr::int(n),
                        None => Expr::big(crate::bigint::BigInt::from(v).neg()),
                    },
                    None => match operand.kind() {
                        crate::expr::ExprKind::Real(v) => Expr::real(-v),
                        // `-9223372036854775808` lexes as BigInteger(2^63);
                        // negating must land back on the machine integer.
                        crate::expr::ExprKind::BigInteger(b) => Expr::big(b.neg()),
                        _ => Expr::call("Times", [Expr::int(-1), operand]),
                    },
                })
            }
            TokenKind::Punct("+") => self.parse_expr(139),
            TokenKind::Punct("!") => {
                let operand = self.parse_expr(79)?;
                Ok(Expr::call("Not", [operand]))
            }
            TokenKind::Punct("++") => {
                let operand = self.parse_expr(154)?;
                Ok(Expr::call("PreIncrement", [operand]))
            }
            TokenKind::Punct("--") => {
                let operand = self.parse_expr(154)?;
                Ok(Expr::call("PreDecrement", [operand]))
            }
            other => Err(ParseError {
                message: format!("unexpected token `{other}`"),
                offset: self.tokens[self.pos.saturating_sub(1)].offset,
            }),
        }
    }

    fn parse_arg_list(&mut self, close: &str) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat_punct(close) {
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr(0)?);
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(close)?;
            return Ok(args);
        }
    }

    /// Builds an n-ary flattened application, merging `lhs` if it already has
    /// the same head (`Plus`, `Times`, `And`, ... are Flat in Wolfram).
    fn flat(head: &str, lhs: Expr, rhs: Expr) -> Expr {
        let mut args = if lhs.has_head(head) {
            lhs.args().to_vec()
        } else {
            vec![lhs]
        };
        args.push(rhs);
        Expr::call(head, args)
    }

    fn led(&mut self, lhs: Expr) -> Result<Expr, ParseError> {
        let TokenKind::Punct(op) = self.bump() else {
            return Err(self.err("expected operator"));
        };
        match op {
            ";" => {
                let mut args = if lhs.has_head("CompoundExpression") {
                    lhs.args().to_vec()
                } else {
                    vec![lhs]
                };
                // A trailing `;` appends Null (statement form).
                if self.at_eof()
                    || self.at_punct(")")
                    || self.at_punct("]")
                    || self.at_punct("}")
                    || self.at_punct(",")
                {
                    args.push(Expr::null());
                } else {
                    args.push(self.parse_expr(10)?);
                }
                Ok(Expr::call("CompoundExpression", args))
            }
            "=" => Ok(Expr::call("Set", [lhs, self.parse_expr(19)?])),
            ":=" => Ok(Expr::call("SetDelayed", [lhs, self.parse_expr(19)?])),
            "+=" => Ok(Expr::call("AddTo", [lhs, self.parse_expr(19)?])),
            "-=" => Ok(Expr::call("SubtractFrom", [lhs, self.parse_expr(19)?])),
            "*=" => Ok(Expr::call("TimesBy", [lhs, self.parse_expr(19)?])),
            "/=" => Ok(Expr::call("DivideBy", [lhs, self.parse_expr(19)?])),
            "//" => {
                let f = self.parse_expr(25)?;
                Ok(Expr::normal(f, vec![lhs]))
            }
            "&" => Ok(Expr::call("Function", [lhs])),
            "/." => Ok(Expr::call("ReplaceAll", [lhs, self.parse_expr(42)?])),
            "//." => Ok(Expr::call("ReplaceRepeated", [lhs, self.parse_expr(42)?])),
            "->" => Ok(Expr::call("Rule", [lhs, self.parse_expr(49)?])),
            ":>" => Ok(Expr::call("RuleDelayed", [lhs, self.parse_expr(49)?])),
            "/;" => Ok(Expr::call("Condition", [lhs, self.parse_expr(55)?])),
            "|" => Ok(Self::flat("Alternatives", lhs, self.parse_expr(58)?)),
            "||" => Ok(Self::flat("Or", lhs, self.parse_expr(60)?)),
            "&&" => Ok(Self::flat("And", lhs, self.parse_expr(70)?)),
            "===" => Ok(Expr::call("SameQ", [lhs, self.parse_expr(90)?])),
            "=!=" => Ok(Expr::call("UnsameQ", [lhs, self.parse_expr(90)?])),
            "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                let head = match op {
                    "==" => "Equal",
                    "!=" => "Unequal",
                    "<" => "Less",
                    ">" => "Greater",
                    "<=" => "LessEqual",
                    _ => "GreaterEqual",
                };
                // Same-operator chains flatten: a < b < c => Less[a, b, c].
                let rhs = self.parse_expr(100)?;
                Ok(Self::flat(head, lhs, rhs))
            }
            "<>" => Ok(Self::flat("StringJoin", lhs, self.parse_expr(110)?)),
            "+" => Ok(Self::flat("Plus", lhs, self.parse_expr(120)?)),
            "-" => Ok(Expr::call("Subtract", [lhs, self.parse_expr(120)?])),
            "*" => Ok(Self::flat("Times", lhs, self.parse_expr(130)?)),
            "/" => Ok(Expr::call("Divide", [lhs, self.parse_expr(130)?])),
            "/@" => Ok(Expr::call("Map", [lhs, self.parse_expr(136)?])),
            "^" => Ok(Expr::call("Power", [lhs, self.parse_expr(149)?])),
            "++" => Ok(Expr::call("Increment", [lhs])),
            "--" => Ok(Expr::call("Decrement", [lhs])),
            "@" => {
                let arg = self.parse_expr(159)?;
                Ok(Expr::normal(lhs, vec![arg]))
            }
            "[" => {
                if self.at_punct("[") {
                    // Part: expr[[i, j, ...]]
                    self.bump();
                    let mut args = vec![lhs];
                    args.extend(self.parse_arg_list("]")?);
                    self.expect_punct("]")?;
                    Ok(Expr::call("Part", args))
                } else {
                    let args = self.parse_arg_list("]")?;
                    Ok(Expr::normal(lhs, args))
                }
            }
            other => Err(self.err(format!("unexpected operator `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ff(src: &str) -> String {
        parse(src).unwrap().to_full_form()
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(ff("1 + 2*3"), "Plus[1, Times[2, 3]]");
        assert_eq!(ff("(1 + 2)*3"), "Times[Plus[1, 2], 3]");
        assert_eq!(ff("2^3^2"), "Power[2, Power[3, 2]]");
        assert_eq!(ff("a - b - c"), "Subtract[Subtract[a, b], c]");
        assert_eq!(ff("a/b"), "Divide[a, b]");
        assert_eq!(ff("1 + 2 + 3"), "Plus[1, 2, 3]");
    }

    #[test]
    fn unary_minus() {
        assert_eq!(ff("-3"), "-3");
        assert_eq!(ff("-3.5"), "-3.5");
        assert_eq!(ff("-x"), "Times[-1, x]");
        assert_eq!(ff("-x + y"), "Plus[Times[-1, x], y]");
        assert_eq!(ff("a - -b"), "Subtract[a, Times[-1, b]]");
    }

    #[test]
    fn application_and_part() {
        assert_eq!(ff("f[x, y]"), "f[x, y]");
        assert_eq!(ff("f[]"), "f[]");
        assert_eq!(ff("f[x][y]"), "f[x][y]");
        assert_eq!(ff("a[[1]]"), "Part[a, 1]");
        assert_eq!(ff("a[[i, j]]"), "Part[a, i, j]");
        assert_eq!(ff("f[a[[1]]]"), "f[Part[a, 1]]");
        assert_eq!(ff("a[[1]][[2]]"), "Part[Part[a, 1], 2]");
    }

    #[test]
    fn lists() {
        assert_eq!(ff("{}"), "List[]");
        assert_eq!(ff("{1, {2, 3}}"), "List[1, List[2, 3]]");
    }

    #[test]
    fn pure_functions() {
        assert_eq!(ff("# + 1 &"), "Function[Plus[Slot[1], 1]]");
        assert_eq!(ff("f[#1, #2] &"), "Function[f[Slot[1], Slot[2]]]");
        assert_eq!(ff("(# + 1 &)[5]"), "Function[Plus[Slot[1], 1]][5]");
        assert_eq!(ff("f @ x"), "f[x]");
        assert_eq!(ff("x // f"), "f[x]");
    }

    #[test]
    fn rules_and_replacement() {
        assert_eq!(ff("x -> 1"), "Rule[x, 1]");
        assert_eq!(ff("x :> 1"), "RuleDelayed[x, 1]");
        assert_eq!(ff("e /. x -> 1"), "ReplaceAll[e, Rule[x, 1]]");
        assert_eq!(ff("e //. {a -> b}"), "ReplaceRepeated[e, List[Rule[a, b]]]");
        assert_eq!(
            ff("StringReplace[#, \"foo\" -> \"grok\"]"),
            "StringReplace[Slot[1], Rule[\"foo\", \"grok\"]]"
        );
    }

    #[test]
    fn patterns_parse() {
        assert_eq!(ff("f[x_] := x"), "SetDelayed[f[Pattern[x, Blank[]]], x]");
        assert_eq!(ff("_Integer"), "Blank[Integer]");
        assert_eq!(
            ff("x__ | y_"),
            "Alternatives[Pattern[x, BlankSequence[]], Pattern[y, Blank[]]]"
        );
        assert_eq!(
            ff("x_ /; x > 0"),
            "Condition[Pattern[x, Blank[]], Greater[x, 0]]"
        );
    }

    #[test]
    fn compound_expressions() {
        assert_eq!(ff("a; b; c"), "CompoundExpression[a, b, c]");
        assert_eq!(ff("a; b;"), "CompoundExpression[a, b, Null]");
        assert_eq!(ff("(a;)"), "CompoundExpression[a, Null]");
        assert_eq!(
            ff("y = x; x = 1; y"),
            "CompoundExpression[Set[y, x], Set[x, 1], y]"
        );
    }

    #[test]
    fn assignment_forms() {
        assert_eq!(ff("x = 1"), "Set[x, 1]");
        assert_eq!(ff("x := 1"), "SetDelayed[x, 1]");
        assert_eq!(ff("x += 2"), "AddTo[x, 2]");
        assert_eq!(ff("i++"), "Increment[i]");
        assert_eq!(ff("i--"), "Decrement[i]");
        assert_eq!(ff("++i"), "PreIncrement[i]");
        assert_eq!(ff("a = b = 1"), "Set[a, Set[b, 1]]");
    }

    #[test]
    fn logic_and_comparisons() {
        assert_eq!(ff("a && b || c"), "Or[And[a, b], c]");
        assert_eq!(ff("a && b && c"), "And[a, b, c]");
        assert_eq!(ff("!a"), "Not[a]");
        assert_eq!(ff("a < b < c"), "Less[a, b, c]");
        assert_eq!(ff("a === b"), "SameQ[a, b]");
        assert_eq!(ff("i >= 0"), "GreaterEqual[i, 0]");
    }

    #[test]
    fn paper_random_walk_parses() {
        let src = "Function[{len},
            NestList[
              Module[{arg = RandomReal[{0, 2*Pi}]},
                {-Cos[arg], Sin[arg]} + #
              ]&,
              {0, 0},
              len
            ]
          ]";
        let e = parse(src).unwrap();
        assert!(e.has_head("Function"));
        assert_eq!(e.args()[0].to_full_form(), "List[len]");
        assert!(e.args()[1].has_head("NestList"));
    }

    #[test]
    fn paper_fib_parses() {
        let e = parse("Function[{n}, If[n < 1, 1, fib[n-1] + fib[n-2]]]").unwrap();
        assert_eq!(
            e.to_full_form(),
            "Function[List[n], If[Less[n, 1], 1, Plus[fib[Subtract[n, 1]], fib[Subtract[n, 2]]]]]"
        );
    }

    #[test]
    fn typed_annotations() {
        assert_eq!(
            ff("Function[{Typed[n, \"MachineInteger\"]}, n + 1]"),
            "Function[List[Typed[n, \"MachineInteger\"]], Plus[n, 1]]"
        );
        assert_eq!(ff("Typed[\"ty\"][e]"), "Typed[\"ty\"][e]");
    }

    #[test]
    fn map_operator() {
        assert_eq!(ff("f /@ {1, 2}"), "Map[f, List[1, 2]]");
    }

    #[test]
    fn string_join() {
        assert_eq!(ff("\"a\" <> \"b\" <> c"), "StringJoin[\"a\", \"b\", c]");
    }

    #[test]
    fn errors() {
        assert!(parse("f[").is_err());
        assert!(parse("1 2").is_err()); // no implicit multiplication
        assert!(parse("").is_err());
        assert!(parse("a +").is_err());
        assert!(parse_all("f[x] g[y]").is_ok()); // two statements
    }

    #[test]
    fn parse_all_sequences() {
        let es = parse_all("x = 1; f[x]").unwrap();
        assert_eq!(es.len(), 1); // one compound expression
        let es = parse_all("f[1] f[2]").unwrap();
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn full_form_roundtrip() {
        for src in [
            "Plus[1, Times[2, x]]",
            "Function[List[n], If[Less[n, 1], 1, n]]",
            "Part[a, 1, 2]",
            "List[\"s\", 1.5, Complex[1., 2.]]",
        ] {
            let e = parse(src).unwrap();
            assert_eq!(parse(&e.to_full_form()).unwrap(), e, "roundtrip {src}");
        }
    }
}
