//! Structural pattern matching.
//!
//! Implements the pattern subset the compiler's macro system (§4.2) and the
//! interpreter's `DownValues` dispatch rely on: `Blank`, `BlankSequence`,
//! `BlankNullSequence` (with optional head restrictions), named `Pattern`s
//! with consistency checks, `Condition`, `Alternatives`, and `HoldPattern`.
//! Sequence patterns backtrack shortest-first, as in the Wolfram Language.
//!
//! Rule ordering uses a *specificity* comparator ([`compare_specificity`])
//! mirroring the paper: "macro rules ... are matched based on the rules'
//! pattern specificity and adhere to the Wolfram pattern ordering".

use crate::expr::{Expr, ExprKind};
use crate::symbol::Symbol;
use std::collections::HashMap;

/// Variable bindings accumulated during a match.
///
/// Sequence variables are bound to a `Sequence[...]` expression which is
/// spliced on substitution.
pub type Bindings = HashMap<Symbol, Expr>;

/// Hooks consulted during matching.
#[derive(Default)]
pub struct MatchCtx<'a> {
    /// Evaluates a `Condition` test after substituting bindings. `None`
    /// means purely structural: the test must already be the literal `True`.
    pub condition_eval: Option<&'a mut dyn FnMut(&Expr) -> bool>,
}

impl MatchCtx<'_> {
    fn test(&mut self, cond: &Expr) -> bool {
        match &mut self.condition_eval {
            Some(f) => f(cond),
            None => cond.is_true(),
        }
    }
}

/// Matches `expr` against `pattern`, extending `bindings` on success.
///
/// On failure `bindings` may contain partial entries; callers that need
/// atomicity should pass a clone.
///
/// # Examples
///
/// ```
/// use wolfram_expr::{match_pattern, parse, Bindings, MatchCtx, Symbol};
/// let pat = parse("f[x_Integer, y_]")?;
/// let e = parse("f[1, g[2]]")?;
/// let mut b = Bindings::new();
/// assert!(match_pattern(&e, &pat, &mut b, &mut MatchCtx::default()));
/// assert_eq!(b[&Symbol::new("x")].as_i64(), Some(1));
/// # Ok::<(), wolfram_expr::ParseError>(())
/// ```
pub fn match_pattern(
    expr: &Expr,
    pattern: &Expr,
    bindings: &mut Bindings,
    ctx: &mut MatchCtx,
) -> bool {
    match pattern.kind() {
        ExprKind::Normal(n) => {
            let head_name = n.head().as_symbol();
            match head_name.as_ref().map(Symbol::name) {
                Some("Blank") => match_blank(expr, n.args()),
                Some("Pattern") if n.args().len() == 2 => {
                    let Some(var) = n.args()[0].as_symbol() else {
                        return false;
                    };
                    if !match_pattern(expr, &n.args()[1], bindings, ctx) {
                        return false;
                    }
                    bind_consistent(bindings, var, expr.clone())
                }
                Some("Condition") if n.args().len() == 2 => {
                    if !match_pattern(expr, &n.args()[0], bindings, ctx) {
                        return false;
                    }
                    let test = crate::rules::apply_bindings(&n.args()[1], bindings);
                    ctx.test(&test)
                }
                Some("Alternatives") => {
                    for alt in n.args() {
                        let mut trial = bindings.clone();
                        if match_pattern(expr, alt, &mut trial, ctx) {
                            *bindings = trial;
                            return true;
                        }
                    }
                    false
                }
                Some("HoldPattern") if n.args().len() == 1 => {
                    match_pattern(expr, &n.args()[0], bindings, ctx)
                }
                Some("PatternTest") if n.args().len() == 2 => {
                    if !match_pattern(expr, &n.args()[0], bindings, ctx) {
                        return false;
                    }
                    let test = Expr::normal(n.args()[1].clone(), vec![expr.clone()]);
                    ctx.test(&test)
                }
                // BlankSequence outside an argument list matches a single
                // element (a sequence of one).
                Some("BlankSequence") | Some("BlankNullSequence") => match_blank(expr, n.args()),
                _ => {
                    // Structural match of a normal pattern against a normal
                    // expression: heads then argument sequences.
                    let ExprKind::Normal(en) = expr.kind() else {
                        return false;
                    };
                    if !match_pattern(en.head(), n.head(), bindings, ctx) {
                        return false;
                    }
                    match_sequence(en.args(), n.args(), bindings, ctx)
                }
            }
        }
        // Atomic pattern: literal equality.
        _ => expr == pattern,
    }
}

fn match_blank(expr: &Expr, blank_args: &[Expr]) -> bool {
    match blank_args.first() {
        None => true,
        Some(h) => &expr.head() == h,
    }
}

fn bind_consistent(bindings: &mut Bindings, var: Symbol, value: Expr) -> bool {
    match bindings.get(&var) {
        Some(existing) => *existing == value,
        None => {
            bindings.insert(var, value);
            true
        }
    }
}

/// Is this pattern (possibly a named `Pattern`) a sequence pattern? Returns
/// `(name, min_len, head_constraint)`.
fn as_sequence_pattern(p: &Expr) -> Option<(Option<Symbol>, usize, Option<Expr>)> {
    let (name, inner) = if p.has_head("Pattern") && p.args().len() == 2 {
        (p.args()[0].as_symbol(), p.args()[1].clone())
    } else {
        (None, p.clone())
    };
    if inner.has_head("BlankSequence") {
        Some((name, 1, inner.args().first().cloned()))
    } else if inner.has_head("BlankNullSequence") {
        Some((name, 0, inner.args().first().cloned()))
    } else {
        None
    }
}

/// Matches a list of argument patterns against a list of argument
/// expressions, backtracking over sequence patterns (shortest first).
pub(crate) fn match_sequence(
    exprs: &[Expr],
    patterns: &[Expr],
    bindings: &mut Bindings,
    ctx: &mut MatchCtx,
) -> bool {
    let Some((p0, rest_pats)) = patterns.split_first() else {
        return exprs.is_empty();
    };
    if let Some((name, min_len, head)) = as_sequence_pattern(p0) {
        for take in min_len..=exprs.len() {
            let (seq, rest) = exprs.split_at(take);
            if let Some(h) = &head {
                if !seq.iter().all(|e| &e.head() == h) {
                    continue;
                }
            }
            let mut trial = bindings.clone();
            if let Some(var) = &name {
                let seq_expr = Expr::call("Sequence", seq.to_vec());
                if !bind_consistent(&mut trial, var.clone(), seq_expr) {
                    continue;
                }
            }
            if match_sequence(rest, rest_pats, &mut trial, ctx) {
                *bindings = trial;
                return true;
            }
        }
        false
    } else {
        let Some((e0, rest_exprs)) = exprs.split_first() else {
            return false;
        };
        let mut trial = bindings.clone();
        if match_pattern(e0, p0, &mut trial, ctx)
            && match_sequence(rest_exprs, rest_pats, &mut trial, ctx)
        {
            *bindings = trial;
            return true;
        }
        false
    }
}

/// Generality score of a pattern: higher = more general (matches more).
/// `(null_seq, seq, bare_blanks, headed_blanks, -literal_nodes)`
fn generality(p: &Expr) -> (u32, u32, u32, u32, i64) {
    fn walk(p: &Expr, acc: &mut (u32, u32, u32, u32, i64)) {
        match p.kind() {
            ExprKind::Normal(n) => {
                match n.head().as_symbol().as_ref().map(Symbol::name) {
                    Some("BlankNullSequence") => acc.0 += 1,
                    Some("BlankSequence") => acc.1 += 1,
                    Some("Blank") => {
                        if n.args().is_empty() {
                            acc.2 += 1;
                        } else {
                            acc.3 += 1;
                        }
                    }
                    Some("Pattern") | Some("HoldPattern") => {
                        // Transparent wrappers: only score the body.
                        if let Some(body) = n.args().last() {
                            walk(body, acc);
                        }
                    }
                    _ => {
                        acc.4 -= 1;
                        walk(n.head(), acc);
                        for a in n.args() {
                            walk(a, acc);
                        }
                    }
                }
            }
            _ => acc.4 -= 1,
        }
    }
    let mut acc = (0, 0, 0, 0, 0i64);
    walk(p, &mut acc);
    acc
}

/// Orders two patterns by specificity: `Less` means `a` is *more specific*
/// and should be tried before `b`.
///
/// This is the heuristic used to order macro rules and `DownValues`
/// (paper §4.2). It ranks patterns with fewer/narrower blanks first and
/// breaks ties toward more literal structure.
pub fn compare_specificity(a: &Expr, b: &Expr) -> std::cmp::Ordering {
    generality(a).cmp(&generality(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn matches(expr: &str, pat: &str) -> Option<Bindings> {
        let e = parse(expr).unwrap();
        let p = parse(pat).unwrap();
        let mut b = Bindings::new();
        match_pattern(&e, &p, &mut b, &mut MatchCtx::default()).then_some(b)
    }

    fn binding(b: &Bindings, name: &str) -> String {
        b[&Symbol::new(name)].to_full_form()
    }

    #[test]
    fn blanks() {
        assert!(matches("5", "_").is_some());
        assert!(matches("5", "_Integer").is_some());
        assert!(matches("5.0", "_Integer").is_none());
        assert!(matches("f[1]", "_f").is_some());
        assert!(matches("\"s\"", "_String").is_some());
    }

    #[test]
    fn named_patterns_bind() {
        let b = matches("f[1, 2]", "f[x_, y_]").unwrap();
        assert_eq!(binding(&b, "x"), "1");
        assert_eq!(binding(&b, "y"), "2");
    }

    #[test]
    fn repeated_names_must_agree() {
        assert!(matches("f[1, 1]", "f[x_, x_]").is_some());
        assert!(matches("f[1, 2]", "f[x_, x_]").is_none());
    }

    #[test]
    fn sequences() {
        let b = matches("f[1, 2, 3]", "f[x_, rest__]").unwrap();
        assert_eq!(binding(&b, "rest"), "Sequence[2, 3]");
        assert!(matches("f[1]", "f[x_, rest__]").is_none());
        let b = matches("f[1]", "f[x_, rest___]").unwrap();
        assert_eq!(binding(&b, "rest"), "Sequence[]");
        // Shortest-first: x__ takes one element when possible.
        let b = matches("f[1, 2, 3]", "f[x__, y__]").unwrap();
        assert_eq!(binding(&b, "x"), "Sequence[1]");
        assert_eq!(binding(&b, "y"), "Sequence[2, 3]");
    }

    #[test]
    fn sequence_head_constraints() {
        assert!(matches("f[1, 2]", "f[x__Integer]").is_some());
        assert!(matches("f[1, 2.0]", "f[x__Integer]").is_none());
    }

    #[test]
    fn alternatives() {
        assert!(matches("5", "_Integer | _Real").is_some());
        assert!(matches("5.0", "_Integer | _Real").is_some());
        assert!(matches("\"x\"", "_Integer | _Real").is_none());
    }

    #[test]
    fn conditions_default_structural() {
        // Without an evaluator only a literal True condition passes.
        assert!(matches("5", "x_ /; True").is_some());
        assert!(matches("5", "x_ /; x > 0").is_none());
    }

    #[test]
    fn conditions_with_evaluator() {
        let e = parse("5").unwrap();
        let p = parse("x_ /; x > 0").unwrap();
        let mut b = Bindings::new();
        let mut eval = |cond: &Expr| {
            // A toy evaluator handling `n > 0` for integer literals.
            cond.has_head("Greater") && cond.args()[0].as_i64().is_some_and(|v| v > 0)
        };
        let mut ctx = MatchCtx {
            condition_eval: Some(&mut eval),
        };
        assert!(match_pattern(&e, &p, &mut b, &mut ctx));
    }

    #[test]
    fn literal_heads_and_structure() {
        assert!(matches("f[g[1], 2]", "f[g[_], _]").is_some());
        assert!(matches("f[h[1], 2]", "f[g[_], _]").is_none());
        // Pattern in head position.
        let b = matches("f[1]", "h_[1]").unwrap();
        assert_eq!(binding(&b, "h"), "f");
    }

    #[test]
    fn specificity_ordering() {
        let ord = |a: &str, b: &str| compare_specificity(&parse(a).unwrap(), &parse(b).unwrap());
        use std::cmp::Ordering::*;
        // The paper's And macro rules: literal-argument rules beat blanks.
        assert_eq!(ord("And[False, _]", "And[x_, y_]"), Less);
        assert_eq!(ord("And[x_]", "And[x_, y_, rest__]"), Less);
        assert_eq!(ord("And[x_, y_]", "And[x_, y_, rest__]"), Less);
        assert_eq!(ord("f[1, 2]", "f[_, _]"), Less);
        assert_eq!(ord("_", "__"), Less);
        assert_eq!(ord("__", "___"), Less);
        assert_eq!(ord("_Integer", "_"), Less);
    }

    #[test]
    fn hold_pattern_is_transparent() {
        assert!(matches("f[1]", "HoldPattern[f[_]]").is_some());
    }
}
