//! Builtin function registry for the interpreter.
//!
//! Each builtin declares its evaluation attributes (hold/listable) and an
//! implementation. Returning `Ok(None)` means "no rule applies": the
//! expression stays symbolic — the behavior that makes the language's
//! symbolic computation (F8) fall out naturally.

pub mod arithmetic;
pub mod control;
pub mod lists;
pub mod random;
pub mod strings;

use crate::env::Attributes;
use crate::eval::{EvalError, Interpreter};
use std::collections::HashMap;
use std::sync::OnceLock;
use wolfram_expr::Expr;

/// The calling convention for builtins: arguments arrive evaluated or held
/// according to the declared attributes; `depth` is the evaluation depth.
pub type BuiltinFn = fn(&mut Interpreter, &[Expr], usize) -> Result<Option<Expr>, EvalError>;

/// A registered builtin.
pub struct BuiltinDef {
    /// Evaluation attributes honored by the evaluator before dispatch.
    pub attrs: Attributes,
    /// The implementation.
    pub run: BuiltinFn,
}

/// Looks up a builtin by symbol name.
pub fn builtin(name: &str) -> Option<&'static BuiltinDef> {
    registry().get(name)
}

/// Number of registered builtins (reported by the docs/tests).
pub fn builtin_count() -> usize {
    registry().len()
}

/// All registered builtin names, sorted.
pub fn builtin_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = registry().keys().copied().collect();
    names.sort_unstable();
    names
}

fn registry() -> &'static HashMap<&'static str, BuiltinDef> {
    static REGISTRY: OnceLock<HashMap<&'static str, BuiltinDef>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut m = HashMap::new();
        control::register(&mut m);
        arithmetic::register(&mut m);
        lists::register(&mut m);
        strings::register(&mut m);
        random::register(&mut m);
        crate::symbolic::register(&mut m);
        crate::findroot::register(&mut m);
        m
    })
}

/// Registration helper used by the submodules.
pub(crate) fn reg(
    m: &mut HashMap<&'static str, BuiltinDef>,
    name: &'static str,
    attrs: Attributes,
    run: BuiltinFn,
) {
    let previous = m.insert(name, BuiltinDef { attrs, run });
    debug_assert!(previous.is_none(), "duplicate builtin {name}");
}

/// Attribute shorthands.
pub(crate) mod attr {
    use crate::env::Attributes;

    pub fn none() -> Attributes {
        Attributes::none()
    }
    pub fn hold_all() -> Attributes {
        Attributes {
            hold_all: true,
            ..Attributes::none()
        }
    }
    pub fn hold_first() -> Attributes {
        Attributes {
            hold_first: true,
            ..Attributes::none()
        }
    }
    pub fn hold_rest() -> Attributes {
        Attributes {
            hold_rest: true,
            ..Attributes::none()
        }
    }
    pub fn listable() -> Attributes {
        Attributes {
            listable: true,
            ..Attributes::none()
        }
    }
}

/// An "unevaluated" marker: keeps the expression symbolic.
pub(crate) const INERT: Result<Option<Expr>, EvalError> = Ok(None);

/// Wraps a value as "evaluated to".
pub(crate) fn done(e: Expr) -> Result<Option<Expr>, EvalError> {
    Ok(Some(e))
}

/// Type-error helper.
pub(crate) fn type_err<T>(msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError::Runtime(wolfram_runtime::RuntimeError::Type(
        msg.into(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        assert!(builtin("Plus").is_some());
        assert!(builtin("Module").is_some());
        assert!(builtin("NoSuchBuiltin").is_none());
        // The reproduction ships a substantial builtin surface.
        assert!(builtin_count() >= 100, "only {} builtins", builtin_count());
    }

    #[test]
    fn attributes_declared() {
        assert!(builtin("If").unwrap().attrs.hold_rest);
        assert!(builtin("Module").unwrap().attrs.hold_all);
        assert!(builtin("Set").unwrap().attrs.hold_first);
        assert!(builtin("Plus").unwrap().attrs.listable);
    }

    #[test]
    fn names_sorted_unique() {
        let names = builtin_names();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert!(names.windows(2).all(|w| w[0] < w[1]));
    }
}
