//! String builtins — the functionality class the legacy bytecode compiler
//! could not express (limitation L1) and the new compiler supports natively
//! (the FNV1a benchmark operates on UTF-8 bytes of real strings).

use super::{attr, done, reg, type_err, BuiltinDef, INERT};
use crate::eval::{EvalError, Interpreter};
use std::collections::HashMap;
use wolfram_expr::{Expr, Rule};

pub(crate) fn register(m: &mut HashMap<&'static str, BuiltinDef>) {
    reg(m, "StringLength", attr::listable(), string_length);
    reg(m, "StringJoin", attr::none(), string_join);
    reg(m, "StringTake", attr::none(), string_take);
    reg(m, "Characters", attr::none(), characters);
    reg(m, "ToCharacterCode", attr::none(), to_character_code);
    reg(m, "FromCharacterCode", attr::none(), from_character_code);
    reg(m, "StringReplace", attr::none(), string_replace);
    reg(m, "ToString", attr::none(), to_string);
    reg(m, "ToUpperCase", attr::none(), |_, a, _| {
        map_str(a, |s| s.to_uppercase())
    });
    reg(m, "ToLowerCase", attr::none(), |_, a, _| {
        map_str(a, |s| s.to_lowercase())
    });
    reg(m, "StringReverse", attr::none(), |_, a, _| {
        map_str(a, |s| s.chars().rev().collect())
    });
}

fn map_str(args: &[Expr], f: impl Fn(&str) -> String) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match a.as_str() {
        Some(s) => done(Expr::string(f(s))),
        None => INERT,
    }
}

fn string_length(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match a.as_str() {
        Some(s) => done(Expr::int(s.chars().count() as i64)),
        None => INERT,
    }
}

fn string_join(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let mut out = String::new();
    for a in args {
        // StringJoin flattens lists of strings.
        if a.has_head("List") {
            for e in a.args() {
                match e.as_str() {
                    Some(s) => out.push_str(s),
                    None => return INERT,
                }
            }
            continue;
        }
        match a.as_str() {
            Some(s) => out.push_str(s),
            None => return INERT,
        }
    }
    done(Expr::string(out))
}

fn string_take(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a, spec] = args else { return INERT };
    let Some(s) = a.as_str() else { return INERT };
    let chars: Vec<char> = s.chars().collect();
    let len = chars.len();
    let slice: &[char] = if let Some(k) = spec.as_i64() {
        if k >= 0 {
            let k = (k as usize).min(len);
            &chars[..k]
        } else {
            let k = ((-k) as usize).min(len);
            &chars[len - k..]
        }
    } else if spec.has_head("List") && spec.length() == 2 {
        let (Some(a), Some(b)) = (spec.args()[0].as_i64(), spec.args()[1].as_i64()) else {
            return INERT;
        };
        let a = wolfram_runtime::checked::resolve_part_index(a, len).map_err(EvalError::Runtime)?;
        let b = wolfram_runtime::checked::resolve_part_index(b, len).map_err(EvalError::Runtime)?;
        if a > b {
            return type_err("StringTake: reversed range");
        }
        &chars[a..=b]
    } else {
        return INERT;
    };
    done(Expr::string(slice.iter().collect::<String>()))
}

fn characters(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match a.as_str() {
        Some(s) => done(Expr::list(
            s.chars()
                .map(|c| Expr::string(c.to_string()))
                .collect::<Vec<_>>(),
        )),
        None => INERT,
    }
}

fn to_character_code(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match a.as_str() {
        Some(s) => done(Expr::list(
            s.chars().map(|c| Expr::int(c as i64)).collect::<Vec<_>>(),
        )),
        None => INERT,
    }
}

fn from_character_code(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    let codes: Vec<i64> = if let Some(c) = a.as_i64() {
        vec![c]
    } else if a.has_head("List") {
        match a.args().iter().map(Expr::as_i64).collect() {
            Some(cs) => cs,
            None => return INERT,
        }
    } else {
        return INERT;
    };
    let mut out = String::new();
    for c in codes {
        let ch = u32::try_from(c)
            .ok()
            .and_then(char::from_u32)
            .ok_or_else(|| {
                EvalError::Runtime(wolfram_runtime::RuntimeError::Type(format!(
                    "invalid character code {c}"
                )))
            })?;
        out.push(ch);
    }
    done(Expr::string(out))
}

fn string_replace(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
) -> Result<Option<Expr>, EvalError> {
    let [subject, rules] = args else { return INERT };
    let Some(s) = subject.as_str() else {
        return INERT;
    };
    let Some(rules) = Rule::list_from_expr(rules) else {
        return INERT;
    };
    // Literal string rules applied left-to-right over the subject, each
    // position rewritten at most once (Wolfram semantics for literal
    // patterns). The original string is not mutated (F5).
    let mut pairs = Vec::new();
    for r in &rules {
        let (Some(from), Some(to)) = (r.lhs.as_str(), r.rhs.as_str()) else {
            return INERT;
        };
        if from.is_empty() {
            return type_err("StringReplace: empty pattern");
        }
        pairs.push((from.to_owned(), to.to_owned()));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    'scan: while !rest.is_empty() {
        for (from, to) in &pairs {
            if let Some(stripped) = rest.strip_prefix(from.as_str()) {
                out.push_str(to);
                rest = stripped;
                continue 'scan;
            }
        }
        let ch = rest.chars().next().expect("nonempty");
        out.push(ch);
        rest = &rest[ch.len_utf8()..];
    }
    done(Expr::string(out))
}

fn to_string(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    match args {
        [a] => done(Expr::string(a.to_input_form())),
        [a, form] if form.is_symbol("InputForm") => done(Expr::string(a.to_input_form())),
        [a, form] if form.is_symbol("FullForm") => done(Expr::string(a.to_full_form())),
        _ => INERT,
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::Interpreter;

    fn ev(src: &str) -> String {
        Interpreter::new().eval_src(src).unwrap().to_full_form()
    }

    #[test]
    fn basic_string_ops() {
        assert_eq!(ev("StringLength[\"hello\"]"), "5");
        assert_eq!(ev("StringJoin[\"foo\", \"bar\"]"), "\"foobar\"");
        assert_eq!(ev("\"a\" <> \"b\" <> \"c\""), "\"abc\"");
        assert_eq!(ev("StringTake[\"hello\", 2]"), "\"he\"");
        assert_eq!(ev("StringTake[\"hello\", -2]"), "\"lo\"");
        assert_eq!(ev("StringTake[\"hello\", {2, 4}]"), "\"ell\"");
        assert_eq!(ev("ToUpperCase[\"abc\"]"), "\"ABC\"");
        assert_eq!(ev("StringReverse[\"abc\"]"), "\"cba\"");
    }

    #[test]
    fn character_codes() {
        assert_eq!(ev("ToCharacterCode[\"AB\"]"), "List[65, 66]");
        assert_eq!(ev("FromCharacterCode[{104, 105}]"), "\"hi\"");
        assert_eq!(ev("FromCharacterCode[65]"), "\"A\"");
        assert_eq!(ev("Characters[\"ok\"]"), "List[\"o\", \"k\"]");
    }

    #[test]
    fn paper_string_replace_example() {
        // ({#, StringReplace[#, "foo" -> "grok"]} &)["foobar"]
        // => {"foobar", "grokbar"} — the original string is unchanged.
        assert_eq!(
            ev("({#, StringReplace[#, \"foo\" -> \"grok\"]} &)[\"foobar\"]"),
            "List[\"foobar\", \"grokbar\"]"
        );
    }

    #[test]
    fn string_replace_multiple_rules() {
        assert_eq!(
            ev("StringReplace[\"abcabc\", {\"a\" -> \"x\", \"c\" -> \"y\"}]"),
            "\"xbyxby\""
        );
    }

    #[test]
    fn to_string_forms() {
        assert_eq!(ev("ToString[1 + 1]"), "\"2\"");
        assert_eq!(ev("ToString[f[x], FullForm]"), "\"f[x]\"");
        assert_eq!(ev("ToString[{1, 2}]"), "\"{1, 2}\"");
    }

    #[test]
    fn unicode_strings() {
        assert_eq!(ev("StringLength[\"héllo\"]"), "5");
        assert_eq!(ev("ToCharacterCode[\"é\"]"), "List[233]");
    }
}
