//! Random number builtins, backed by the interpreter's deterministic
//! splitmix generator so benchmark workloads are reproducible.

use super::{attr, done, reg, type_err, BuiltinDef, INERT};
use crate::builtins::arithmetic::numericize;
use crate::eval::{EvalError, Interpreter};
use std::collections::HashMap;
use wolfram_expr::Expr;

pub(crate) fn register(m: &mut HashMap<&'static str, BuiltinDef>) {
    reg(m, "RandomReal", attr::none(), random_real);
    reg(m, "RandomInteger", attr::none(), random_integer);
    reg(m, "RandomVariate", attr::none(), random_variate);
    reg(m, "NormalDistribution", attr::none(), |_, _, _| INERT);
    reg(m, "UniformDistribution", attr::none(), |_, _, _| INERT);
    reg(m, "SeedRandom", attr::none(), seed_random);
}

fn seed_random(i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    match args {
        [s] => match s.as_i64() {
            Some(v) => {
                i.seed_random(v as u64);
                done(Expr::null())
            }
            None => type_err("SeedRandom expects an integer"),
        },
        [] => {
            i.seed_random(0x1234_5678_9ABC_DEF0);
            done(Expr::null())
        }
        _ => INERT,
    }
}

/// Parses an optional shape argument: `n` or `{n1, n2, ...}`.
fn parse_shape(e: &Expr) -> Option<Vec<usize>> {
    if let Some(n) = e.as_i64() {
        return (n >= 0).then(|| vec![n as usize]);
    }
    if e.has_head("List") {
        return e
            .args()
            .iter()
            .map(|d| d.as_i64().and_then(|v| (v >= 0).then_some(v as usize)))
            .collect();
    }
    None
}

fn build_shaped(shape: &[usize], gen: &mut dyn FnMut() -> Expr) -> Expr {
    match shape {
        [] => gen(),
        [n, rest @ ..] => Expr::list((0..*n).map(|_| build_shaped(rest, gen)).collect::<Vec<_>>()),
    }
}

/// Numeric bound extraction: applies `N` so symbolic bounds like `2 Pi`
/// work (the paper's random-walk program).
fn bound_f64(i: &mut Interpreter, e: &Expr, depth: usize) -> Result<f64, EvalError> {
    let numeric = numericize(e);
    let v = i.eval_depth(&numeric, depth + 1)?;
    v.as_f64().ok_or_else(|| {
        EvalError::Runtime(wolfram_runtime::RuntimeError::Type(format!(
            "expected a numeric bound, got {}",
            e.to_input_form()
        )))
    })
}

fn random_real(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let (lo, hi, shape) = match args {
        [] => (0.0, 1.0, vec![]),
        [spec] => match range_spec(i, spec, depth)? {
            Some((lo, hi)) => (lo, hi, vec![]),
            None => return INERT,
        },
        [spec, shape] => {
            let Some(dims) = parse_shape(shape) else {
                return INERT;
            };
            match range_spec(i, spec, depth)? {
                Some((lo, hi)) => (lo, hi, dims),
                None => return INERT,
            }
        }
        _ => return INERT,
    };
    let mut gen = || Expr::real(lo + (hi - lo) * i.next_random_f64());
    done(build_shaped(&shape, &mut gen))
}

fn range_spec(
    i: &mut Interpreter,
    spec: &Expr,
    depth: usize,
) -> Result<Option<(f64, f64)>, EvalError> {
    if spec.has_head("List") && spec.length() == 2 {
        let lo = bound_f64(i, &spec.args()[0], depth)?;
        let hi = bound_f64(i, &spec.args()[1], depth)?;
        return Ok(Some((lo, hi)));
    }
    // RandomReal[max]
    match bound_f64(i, spec, depth) {
        Ok(hi) => Ok(Some((0.0, hi))),
        Err(_) => Ok(None),
    }
}

fn random_integer(
    i: &mut Interpreter,
    args: &[Expr],
    _depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let (lo, hi, shape) = match args {
        [] => (0i64, 1i64, vec![]),
        [spec] => match int_range_spec(spec) {
            Some((lo, hi)) => (lo, hi, vec![]),
            None => return INERT,
        },
        [spec, shape_e] => {
            let Some(dims) = parse_shape(shape_e) else {
                return INERT;
            };
            match int_range_spec(spec) {
                Some((lo, hi)) => (lo, hi, dims),
                None => return INERT,
            }
        }
        _ => return INERT,
    };
    if hi < lo {
        return type_err("RandomInteger: empty range");
    }
    let span = (hi - lo) as u64 + 1;
    let mut gen = || Expr::int(lo + (i.next_random_u64() % span) as i64);
    done(build_shaped(&shape, &mut gen))
}

fn int_range_spec(spec: &Expr) -> Option<(i64, i64)> {
    if let Some(hi) = spec.as_i64() {
        return Some((0, hi));
    }
    if spec.has_head("List") && spec.length() == 2 {
        let lo = spec.args()[0].as_i64()?;
        let hi = spec.args()[1].as_i64()?;
        return Some((lo, hi));
    }
    None
}

fn random_variate(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let (dist, shape) = match args {
        [d] => (d, vec![]),
        [d, shape_e] => {
            let Some(dims) = parse_shape(shape_e) else {
                return INERT;
            };
            (d, dims)
        }
        _ => return INERT,
    };
    if dist.has_head("NormalDistribution") {
        let (mu, sigma) = match dist.args() {
            [] => (0.0, 1.0),
            [m, s] => (bound_f64(i, m, depth)?, bound_f64(i, s, depth)?),
            _ => return INERT,
        };
        // Box–Muller transform over the deterministic generator.
        let mut gen = || {
            let u1 = i.next_random_f64().max(f64::MIN_POSITIVE);
            let u2 = i.next_random_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            Expr::real(mu + sigma * z)
        };
        return done(build_shaped(&shape, &mut gen));
    }
    if dist.has_head("UniformDistribution") {
        let (lo, hi) = match dist.args() {
            [] => (0.0, 1.0),
            [spec] if spec.has_head("List") && spec.length() == 2 => (
                bound_f64(i, &spec.args()[0], depth)?,
                bound_f64(i, &spec.args()[1], depth)?,
            ),
            _ => return INERT,
        };
        let mut gen = || Expr::real(lo + (hi - lo) * i.next_random_f64());
        return done(build_shaped(&shape, &mut gen));
    }
    INERT
}

#[cfg(test)]
mod tests {
    use crate::eval::Interpreter;
    use wolfram_expr::Expr;

    fn seeded() -> Interpreter {
        let mut i = Interpreter::new();
        i.seed_random(42);
        i
    }

    #[test]
    fn random_real_ranges() {
        let mut i = seeded();
        for _ in 0..50 {
            let v = i.eval_src("RandomReal[]").unwrap().as_f64().unwrap();
            assert!((0.0..1.0).contains(&v));
            let v = i.eval_src("RandomReal[{5, 6}]").unwrap().as_f64().unwrap();
            assert!((5.0..6.0).contains(&v));
            let v = i.eval_src("RandomReal[10]").unwrap().as_f64().unwrap();
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn symbolic_bounds_via_n() {
        // The paper's random walk uses RandomReal[{0, 2 Pi}].
        let mut i = seeded();
        for _ in 0..20 {
            let v = i
                .eval_src("RandomReal[{0, 2*Pi}]")
                .unwrap()
                .as_f64()
                .unwrap();
            assert!((0.0..std::f64::consts::TAU).contains(&v));
        }
    }

    #[test]
    fn shapes() {
        let mut i = seeded();
        let m = i.eval_src("RandomReal[1, {2, 3}]").unwrap();
        assert_eq!(m.length(), 2);
        assert_eq!(m.args()[0].length(), 3);
        let v = i.eval_src("RandomInteger[{1, 6}, 10]").unwrap();
        assert_eq!(v.length(), 10);
        assert!(v
            .args()
            .iter()
            .all(|d| (1..=6).contains(&d.as_i64().unwrap())));
    }

    #[test]
    fn paper_intro_example() {
        // Total[RandomVariate[NormalDistribution[], {10, 10}]] from §1:
        // a 10x10 matrix of normals, rows summed.
        let mut i = seeded();
        let out = i
            .eval_src("Total[RandomVariate[NormalDistribution[], {10, 10}]]")
            .unwrap();
        assert!(out.has_head("List"));
        assert_eq!(out.length(), 10);
        assert!(out.args().iter().all(|v| v.as_f64().is_some()));
    }

    #[test]
    fn normal_variates_plausible() {
        let mut i = seeded();
        let sample = i
            .eval_src("RandomVariate[NormalDistribution[], 2000]")
            .unwrap();
        let values: Vec<f64> = sample.args().iter().map(|e| e.as_f64().unwrap()).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.25, "variance {var}");
    }

    #[test]
    fn seeding_reproduces() {
        let run = || {
            let mut i = seeded();
            i.eval_src("RandomInteger[{0, 1000000}, 5]")
                .unwrap()
                .to_full_form()
        };
        assert_eq!(run(), run());
        let _ = Expr::null();
    }
}
