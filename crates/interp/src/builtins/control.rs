//! Control flow, scoping constructs, and assignment.

use super::{attr, done, reg, type_err, BuiltinDef, INERT};
use crate::eval::{EvalError, Interpreter};
use std::collections::HashMap;
use wolfram_expr::rules::substitute_symbols;
use wolfram_expr::{Expr, Rule, Symbol};
use wolfram_runtime::RuntimeError;

pub(crate) fn register(m: &mut HashMap<&'static str, BuiltinDef>) {
    reg(m, "If", attr::hold_rest(), if_builtin);
    reg(m, "Which", attr::hold_all(), which);
    reg(m, "While", attr::hold_all(), while_builtin);
    reg(m, "For", attr::hold_all(), for_builtin);
    reg(m, "Do", attr::hold_all(), do_builtin);
    reg(m, "CompoundExpression", attr::hold_all(), compound);
    reg(m, "Module", attr::hold_all(), module);
    reg(m, "Block", attr::hold_all(), block);
    reg(m, "With", attr::hold_all(), with);
    reg(m, "Set", attr::hold_first(), set);
    reg(m, "SetDelayed", attr::hold_all(), set_delayed);
    reg(m, "Unset", attr::hold_first(), unset);
    reg(m, "Clear", attr::hold_all(), clear);
    reg(m, "Increment", attr::hold_first(), |i, a, d| {
        step_assign(i, a, d, 1, false)
    });
    reg(m, "Decrement", attr::hold_first(), |i, a, d| {
        step_assign(i, a, d, -1, false)
    });
    reg(m, "PreIncrement", attr::hold_first(), |i, a, d| {
        step_assign(i, a, d, 1, true)
    });
    reg(m, "PreDecrement", attr::hold_first(), |i, a, d| {
        step_assign(i, a, d, -1, true)
    });
    reg(m, "AddTo", attr::hold_first(), |i, a, d| {
        op_assign(i, a, d, "Plus")
    });
    reg(m, "SubtractFrom", attr::hold_first(), |i, a, d| {
        op_assign(i, a, d, "Subtract")
    });
    reg(m, "TimesBy", attr::hold_first(), |i, a, d| {
        op_assign(i, a, d, "Times")
    });
    reg(m, "DivideBy", attr::hold_first(), |i, a, d| {
        op_assign(i, a, d, "Divide")
    });
    reg(m, "Return", attr::none(), return_builtin);
    reg(m, "Break", attr::none(), |_, _, _| {
        Err(EvalError::BreakSignal)
    });
    reg(m, "Continue", attr::none(), |_, _, _| {
        Err(EvalError::ContinueSignal)
    });
    reg(m, "Throw", attr::none(), throw);
    reg(m, "Catch", attr::hold_all(), catch);
    reg(m, "Function", attr::hold_all(), |_, _, _| INERT);
    reg(m, "Hold", attr::hold_all(), |_, _, _| INERT);
    reg(m, "Abort", attr::none(), |_, _, _| {
        Err(RuntimeError::Aborted.into())
    });
    reg(m, "Print", attr::none(), print);
    reg(m, "AbsoluteTiming", attr::hold_all(), absolute_timing);
    reg(m, "SetAttributes", attr::hold_first(), set_attributes);
    reg(m, "Identity", attr::none(), |_, a, _| {
        if a.len() == 1 {
            done(a[0].clone())
        } else {
            INERT
        }
    });
}

fn if_builtin(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    if !(2..=4).contains(&args.len()) {
        return INERT;
    }
    let cond = &args[0];
    if cond.is_true() {
        i.eval_depth(&args[1], depth + 1).map(Some)
    } else if cond.is_false() {
        match args.get(2) {
            Some(f) => i.eval_depth(f, depth + 1).map(Some),
            None => done(Expr::null()),
        }
    } else {
        // Undecidable condition: If[c, t, f, u] evaluates u, else symbolic.
        match args.get(3) {
            Some(u) => i.eval_depth(u, depth + 1).map(Some),
            None => INERT,
        }
    }
}

fn which(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    for pair in args.chunks(2) {
        let [cond, value] = pair else {
            return type_err("Which expects condition/value pairs");
        };
        let c = i.eval_depth(cond, depth + 1)?;
        if c.is_true() {
            return i.eval_depth(value, depth + 1).map(Some);
        }
        if !c.is_false() {
            return INERT;
        }
    }
    done(Expr::null())
}

fn while_builtin(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    if args.is_empty() || args.len() > 2 {
        return INERT;
    }
    loop {
        let test = i.eval_depth(&args[0], depth + 1)?;
        if !test.is_true() {
            return done(Expr::null());
        }
        if let Some(body) = args.get(1) {
            match i.eval_depth(body, depth + 1) {
                Ok(_) => {}
                Err(EvalError::BreakSignal) => return done(Expr::null()),
                Err(EvalError::ContinueSignal) => {}
                Err(other) => return Err(other),
            }
        }
    }
}

fn for_builtin(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    if !(3..=4).contains(&args.len()) {
        return INERT;
    }
    i.eval_depth(&args[0], depth + 1)?;
    loop {
        let test = i.eval_depth(&args[1], depth + 1)?;
        if !test.is_true() {
            return done(Expr::null());
        }
        if let Some(body) = args.get(3) {
            match i.eval_depth(body, depth + 1) {
                Ok(_) => {}
                Err(EvalError::BreakSignal) => return done(Expr::null()),
                Err(EvalError::ContinueSignal) => {}
                Err(other) => return Err(other),
            }
        }
        i.eval_depth(&args[2], depth + 1)?;
    }
}

fn do_builtin(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [body, spec] = args else { return INERT };
    let mut broke = false;
    super::lists::iterate_spec(
        i,
        spec,
        depth,
        &mut |i, _| match i.eval_depth(body, depth + 1) {
            Ok(_) => Ok(true),
            Err(EvalError::BreakSignal) => {
                broke = true;
                Ok(false)
            }
            Err(EvalError::ContinueSignal) => Ok(true),
            Err(other) => Err(other),
        },
    )?;
    let _ = broke;
    done(Expr::null())
}

fn compound(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let mut last = Expr::null();
    for a in args {
        last = i.eval_depth(a, depth + 1)?;
    }
    done(last)
}

/// Parses a scoping spec entry: `x` or `x = init` (held).
fn scope_entry(e: &Expr) -> Result<(Symbol, Option<Expr>), EvalError> {
    if let Some(s) = e.as_symbol() {
        return Ok((s, None));
    }
    if e.has_head("Set") && e.args().len() == 2 {
        if let Some(s) = e.args()[0].as_symbol() {
            return Ok((s, Some(e.args()[1].clone())));
        }
    }
    type_err(format!("invalid scoping variable {}", e.to_input_form()))
}

fn module(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [vars, body] = args else { return INERT };
    if !vars.has_head("List") {
        return type_err("Module expects a variable list");
    }
    // Inits are evaluated in the enclosing scope; each variable is renamed
    // to a fresh `x$n` symbol — exactly what the compiler's binding
    // analysis later does statically (§4.2).
    let mut map: HashMap<Symbol, Expr> = HashMap::new();
    let mut fresh_syms = Vec::new();
    for spec in vars.args() {
        let (name, init) = scope_entry(spec)?;
        let fresh = i.env.fresh_module_symbol(&name);
        if let Some(init) = init {
            let v = i.eval_depth(&init, depth + 1)?;
            i.env.set_own(fresh.clone(), v);
        }
        map.insert(name, Expr::symbol(fresh.clone()));
        fresh_syms.push(fresh);
    }
    let body = substitute_symbols(body, &map);
    let result = i.eval_depth(&body, depth + 1)?;
    // Clean up fresh symbols unless they escape in the result.
    for s in fresh_syms {
        if !result.contains_symbol(s.name()) {
            i.env.clear_all(&s);
        }
    }
    done(result)
}

fn block(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [vars, body] = args else { return INERT };
    if !vars.has_head("List") {
        return type_err("Block expects a variable list");
    }
    let mut saved: Vec<(Symbol, Option<Expr>)> = Vec::new();
    for spec in vars.args() {
        let (name, init) = scope_entry(spec)?;
        saved.push((name.clone(), i.env.own_value(&name).cloned()));
        match init {
            Some(init) => {
                let v = i.eval_depth(&init, depth + 1)?;
                i.env.set_own(name, v);
            }
            None => i.env.clear_own(&name),
        }
    }
    let result = i.eval_depth(body, depth + 1);
    for (name, old) in saved {
        match old {
            Some(v) => i.env.set_own(name, v),
            None => i.env.clear_own(&name),
        }
    }
    result.map(Some)
}

fn with(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [vars, body] = args else { return INERT };
    if !vars.has_head("List") {
        return type_err("With expects a variable list");
    }
    let mut map: HashMap<Symbol, Expr> = HashMap::new();
    for spec in vars.args() {
        let (name, init) = scope_entry(spec)?;
        let Some(init) = init else {
            return type_err("With variables must be initialized");
        };
        let v = i.eval_depth(&init, depth + 1)?;
        map.insert(name, v);
    }
    let body = substitute_symbols(body, &map);
    i.eval_depth(&body, depth + 1).map(Some)
}

fn set(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [lhs, rhs] = args else { return INERT };
    assign(i, lhs, rhs.clone(), depth)
}

fn set_delayed(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let [lhs, rhs] = args else { return INERT };
    // RHS held: store unevaluated, return Null (as Wolfram does).
    if let Some(s) = lhs.as_symbol() {
        i.env.set_own(s, rhs.clone());
        return done(Expr::null());
    }
    if let Some(fsym) = lhs.head_symbol() {
        i.env.add_down_value(
            fsym,
            Rule {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                delayed: true,
            },
        );
        return done(Expr::null());
    }
    let _ = depth;
    type_err(format!("cannot define {}", lhs.to_input_form()))
}

/// Shared by `Set` and the compound assignments: `rhs` arrives *held*;
/// evaluated here, then stored into the lvalue.
fn assign(
    i: &mut Interpreter,
    lhs: &Expr,
    rhs: Expr,
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let value = i.eval_depth(&rhs, depth + 1)?;
    store(i, lhs, value.clone(), depth)?;
    done(value)
}

/// Stores `value` into an lvalue: a symbol, a `Part[sym, ...]` position, or
/// a `f[patterns]` down-value.
fn store(i: &mut Interpreter, lhs: &Expr, value: Expr, depth: usize) -> Result<(), EvalError> {
    if let Some(s) = lhs.as_symbol() {
        i.env.set_own(s, value);
        return Ok(());
    }
    if lhs.has_head("Part") && lhs.length() >= 2 {
        let base = &lhs.args()[0];
        let Some(base_sym) = base.as_symbol() else {
            return type_err("Part assignment requires a symbol base");
        };
        let current = i
            .env
            .own_value(&base_sym)
            .cloned()
            .ok_or_else(|| RuntimeError::Unevaluated(format!("{base_sym} has no value")))?;
        let mut indices = Vec::new();
        for ix in &lhs.args()[1..] {
            let v = i.eval_depth(ix, depth + 1)?;
            let Some(n) = v.as_i64() else {
                return type_err("Part assignment indices must be integers");
            };
            indices.push(n);
        }
        let updated = part_set(&current, &indices, value)?;
        i.env.set_own(base_sym, updated);
        return Ok(());
    }
    if let Some(fsym) = lhs.head_symbol() {
        i.env.add_down_value(
            fsym,
            Rule {
                lhs: lhs.clone(),
                rhs: value,
                delayed: false,
            },
        );
        return Ok(());
    }
    type_err(format!("cannot assign to {}", lhs.to_input_form()))
}

/// Functional update of a nested `List` expression at a 1-based (possibly
/// negative) index path. Expressions are immutable: this rebuilds the spine
/// (the interpreter-level realization of copy-on-write).
fn part_set(list: &Expr, indices: &[i64], value: Expr) -> Result<Expr, EvalError> {
    let Some((ix, rest)) = indices.split_first() else {
        return Ok(value);
    };
    if list.is_atom() {
        return type_err("Part assignment into an atom");
    }
    let len = list.length();
    let offset =
        wolfram_runtime::checked::resolve_part_index(*ix, len).map_err(EvalError::Runtime)?;
    let mut args = list.args().to_vec();
    args[offset] = part_set(&args[offset], rest, value)?;
    Ok(list.with_args(args))
}

fn unset(i: &mut Interpreter, args: &[Expr], _depth: usize) -> Result<Option<Expr>, EvalError> {
    let [lhs] = args else { return INERT };
    if let Some(s) = lhs.as_symbol() {
        i.env.clear_own(&s);
        return done(Expr::null());
    }
    type_err("Unset expects a symbol")
}

fn clear(i: &mut Interpreter, args: &[Expr], _depth: usize) -> Result<Option<Expr>, EvalError> {
    for a in args {
        if let Some(s) = a.as_symbol() {
            i.env.clear_all(&s);
        }
    }
    done(Expr::null())
}

/// `Increment`/`Decrement` (return old value) and the `Pre` forms (return
/// new value).
fn step_assign(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
    delta: i64,
    pre: bool,
) -> Result<Option<Expr>, EvalError> {
    let [lhs] = args else { return INERT };
    let old = i.eval_depth(lhs, depth + 1)?;
    let new = i.eval_depth(
        &Expr::call("Plus", [old.clone(), Expr::int(delta)]),
        depth + 1,
    )?;
    store(i, lhs, new.clone(), depth)?;
    done(if pre { new } else { old })
}

/// `AddTo` and friends: `x op= v` evaluates to the new value.
fn op_assign(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
    op: &str,
) -> Result<Option<Expr>, EvalError> {
    let [lhs, rhs] = args else { return INERT };
    let old = i.eval_depth(lhs, depth + 1)?;
    let new = i.eval_depth(&Expr::call(op, [old, rhs.clone()]), depth + 1)?;
    store(i, lhs, new.clone(), depth)?;
    done(new)
}

fn return_builtin(
    _i: &mut Interpreter,
    args: &[Expr],
    _depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let value = args.first().cloned().unwrap_or_else(Expr::null);
    Err(EvalError::ReturnSignal(value))
}

fn throw(_i: &mut Interpreter, args: &[Expr], _depth: usize) -> Result<Option<Expr>, EvalError> {
    let value = args.first().cloned().unwrap_or_else(Expr::null);
    Err(EvalError::ThrowSignal(value))
}

fn catch(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [body] = args else { return INERT };
    match i.eval_depth(body, depth + 1) {
        Err(EvalError::ThrowSignal(v)) => done(v),
        other => other.map(Some),
    }
}

fn print(i: &mut Interpreter, args: &[Expr], _depth: usize) -> Result<Option<Expr>, EvalError> {
    let line: String = args
        .iter()
        .map(|a| match a.as_str() {
            Some(s) => s.to_owned(),
            None => a.to_input_form(),
        })
        .collect();
    i.push_output(line);
    done(Expr::null())
}

fn absolute_timing(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let [body] = args else { return INERT };
    let start = std::time::Instant::now();
    let result = i.eval_depth(body, depth + 1)?;
    let secs = start.elapsed().as_secs_f64();
    done(Expr::list([Expr::real(secs), result]))
}

fn set_attributes(
    i: &mut Interpreter,
    args: &[Expr],
    _depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let [sym, spec] = args else { return INERT };
    let Some(s) = sym.as_symbol() else {
        return type_err("SetAttributes expects a symbol");
    };
    let mut attrs = i.env.attributes(&s);
    let names: Vec<Expr> = if spec.has_head("List") {
        spec.args().to_vec()
    } else {
        vec![spec.clone()]
    };
    for name in names {
        match name
            .as_symbol()
            .as_ref()
            .map(|x| x.name().to_owned())
            .as_deref()
        {
            Some("HoldAll") => attrs.hold_all = true,
            Some("HoldFirst") => attrs.hold_first = true,
            Some("HoldRest") => attrs.hold_rest = true,
            Some("Listable") => attrs.listable = true,
            Some("Protected") => attrs.protected = true,
            _ => return type_err(format!("unknown attribute {}", name.to_input_form())),
        }
    }
    i.env.set_attributes(s, attrs);
    done(Expr::null())
}
