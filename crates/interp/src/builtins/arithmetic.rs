//! Numeric builtins, comparisons, logic, and predicates.
//!
//! Arithmetic on machine integers promotes to bignum on overflow (F2).
//! Partially-symbolic arithmetic folds the numeric part and keeps the rest
//! symbolic (`Plus[1, 2, x]` -> `Plus[3, x]`).

use super::{attr, done, reg, type_err, BuiltinDef, INERT};
use crate::eval::{EvalError, Interpreter};
use crate::numeric::Num;
use std::cmp::Ordering;
use std::collections::HashMap;
use wolfram_expr::{Expr, ExprKind};

pub(crate) fn register(m: &mut HashMap<&'static str, BuiltinDef>) {
    reg(m, "Plus", attr::listable(), plus);
    reg(m, "Times", attr::listable(), times);
    reg(m, "Subtract", attr::listable(), subtract);
    reg(m, "Divide", attr::listable(), divide);
    reg(m, "Minus", attr::listable(), minus);
    reg(m, "Power", attr::listable(), power);
    reg(m, "Mod", attr::listable(), mod_builtin);
    reg(m, "Quotient", attr::listable(), quotient);
    reg(m, "Abs", attr::listable(), abs);
    reg(m, "Sign", attr::listable(), sign);
    reg(m, "Min", attr::none(), |i, a, d| {
        min_max(i, a, d, Ordering::Less)
    });
    reg(m, "Max", attr::none(), |i, a, d| {
        min_max(i, a, d, Ordering::Greater)
    });
    reg(m, "Floor", attr::listable(), |i, a, d| {
        rounding(i, a, d, f64::floor)
    });
    reg(m, "Ceiling", attr::listable(), |i, a, d| {
        rounding(i, a, d, f64::ceil)
    });
    reg(m, "Round", attr::listable(), |i, a, d| {
        rounding(i, a, d, round_half_even)
    });
    reg(m, "Sqrt", attr::listable(), sqrt);
    reg(m, "Exp", attr::listable(), |i, a, d| {
        unary_real(i, a, d, f64::exp, "Exp")
    });
    reg(m, "Log", attr::listable(), log);
    reg(m, "Sin", attr::listable(), |i, a, d| {
        unary_real(i, a, d, f64::sin, "Sin")
    });
    reg(m, "Cos", attr::listable(), |i, a, d| {
        unary_real(i, a, d, f64::cos, "Cos")
    });
    reg(m, "Tan", attr::listable(), |i, a, d| {
        unary_real(i, a, d, f64::tan, "Tan")
    });
    reg(m, "ArcSin", attr::listable(), |i, a, d| {
        unary_real(i, a, d, f64::asin, "ArcSin")
    });
    reg(m, "ArcCos", attr::listable(), |i, a, d| {
        unary_real(i, a, d, f64::acos, "ArcCos")
    });
    reg(m, "ArcTan", attr::listable(), arctan);
    reg(m, "Re", attr::listable(), re);
    reg(m, "Im", attr::listable(), im);
    reg(m, "Conjugate", attr::listable(), conjugate);
    reg(m, "N", attr::none(), n_builtin);
    // Comparisons & logic.
    reg(m, "SameQ", attr::none(), same_q);
    reg(m, "UnsameQ", attr::none(), unsame_q);
    reg(m, "Equal", attr::none(), |i, a, d| {
        compare_chain(i, a, d, &[Ordering::Equal])
    });
    reg(m, "Unequal", attr::none(), unequal);
    reg(m, "Less", attr::none(), |i, a, d| {
        compare_chain(i, a, d, &[Ordering::Less])
    });
    reg(m, "Greater", attr::none(), |i, a, d| {
        compare_chain(i, a, d, &[Ordering::Greater])
    });
    reg(m, "LessEqual", attr::none(), |i, a, d| {
        compare_chain(i, a, d, &[Ordering::Less, Ordering::Equal])
    });
    reg(m, "GreaterEqual", attr::none(), |i, a, d| {
        compare_chain(i, a, d, &[Ordering::Greater, Ordering::Equal])
    });
    reg(m, "Not", attr::none(), not);
    reg(m, "And", attr::hold_all(), and);
    reg(m, "Or", attr::hold_all(), or);
    // Predicates.
    reg(m, "TrueQ", attr::none(), |_, a, _| {
        done(Expr::bool(a.len() == 1 && a[0].is_true()))
    });
    reg(m, "IntegerQ", attr::none(), |_, a, _| {
        done(Expr::bool(
            a.len() == 1 && matches!(a[0].kind(), ExprKind::Integer(_) | ExprKind::BigInteger(_)),
        ))
    });
    reg(m, "EvenQ", attr::none(), |_, a, _| {
        done(Expr::bool(
            a.len() == 1 && a[0].as_i64().is_some_and(|v| v % 2 == 0),
        ))
    });
    reg(m, "OddQ", attr::none(), |_, a, _| {
        done(Expr::bool(
            a.len() == 1 && a[0].as_i64().is_some_and(|v| v % 2 != 0),
        ))
    });
    reg(m, "NumberQ", attr::none(), |_, a, _| {
        done(Expr::bool(a.len() == 1 && Num::from_expr(&a[0]).is_some()))
    });
    reg(m, "NumericQ", attr::none(), numeric_q);
    reg(m, "StringQ", attr::none(), |_, a, _| {
        done(Expr::bool(a.len() == 1 && a[0].as_str().is_some()))
    });
    reg(m, "ListQ", attr::none(), |_, a, _| {
        done(Expr::bool(a.len() == 1 && a[0].has_head("List")))
    });
    reg(m, "AtomQ", attr::none(), |_, a, _| {
        done(Expr::bool(a.len() == 1 && a[0].is_atom()))
    });
    reg(m, "Positive", attr::listable(), |_, a, _| {
        sign_pred(a, |o| o == Ordering::Greater)
    });
    reg(m, "Negative", attr::listable(), |_, a, _| {
        sign_pred(a, |o| o == Ordering::Less)
    });
    reg(m, "NonNegative", attr::listable(), |_, a, _| {
        sign_pred(a, |o| o != Ordering::Less)
    });
    reg(m, "PrimeQ", attr::listable(), prime_q);
    reg(m, "Factorial", attr::listable(), factorial);
    reg(m, "GCD", attr::listable(), gcd_builtin);
    reg(m, "LCM", attr::listable(), lcm_builtin);
    reg(m, "IntegerDigits", attr::none(), integer_digits);
    reg(m, "FromDigits", attr::none(), from_digits);
    reg(m, "Boole", attr::listable(), |_, a, _| match a {
        [e] if e.is_true() => done(Expr::int(1)),
        [e] if e.is_false() => done(Expr::int(0)),
        _ => INERT,
    });
}

/// Folds an n-ary numeric operation over literal arguments, keeping
/// symbolic arguments in place.
fn nary_fold(
    args: &[Expr],
    identity: Num,
    head: &str,
    f: impl Fn(&Num, &Num) -> Num,
) -> Result<Option<Expr>, EvalError> {
    let mut acc = identity.clone();
    let mut symbolic: Vec<Expr> = Vec::new();
    let mut folded_any = false;
    for a in args {
        match Num::from_expr(a) {
            Some(n) => {
                acc = f(&acc, &n);
                folded_any = true;
            }
            None => symbolic.push(a.clone()),
        }
    }
    if symbolic.is_empty() {
        return done(acc.into_expr());
    }
    if !folded_any || args.len() == symbolic.len() {
        // Nothing folded: stay as-is (but collapse singleton applications).
        if symbolic.len() == 1 && args.len() == 1 {
            return done(symbolic.pop().expect("len checked"));
        }
        return INERT;
    }
    // Partial fold: numeric part first unless it is the identity, then the
    // symbolic part in canonical order (Plus and Times are Orderless).
    symbolic.sort_by(super::lists::canonical_order);
    let mut new_args = Vec::with_capacity(symbolic.len() + 1);
    if acc != identity {
        new_args.push(acc.into_expr());
    }
    new_args.extend(symbolic);
    if new_args.len() == 1 {
        return done(new_args.pop().expect("len checked"));
    }
    done(Expr::call(head, new_args))
}

/// Flattens nested applications of a Flat head (`Plus[1, Plus[2, x]]` ->
/// `Plus[1, 2, x]`).
fn flatten_flat(head: &str, args: &[Expr]) -> Vec<Expr> {
    let mut out = Vec::with_capacity(args.len());
    for a in args {
        if a.has_head(head) {
            out.extend(a.args().iter().cloned());
        } else {
            out.push(a.clone());
        }
    }
    out
}

fn plus(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    if args.len() == 1 {
        return done(args[0].clone());
    }
    let mut flat = flatten_flat("Plus", args);
    // Collect like terms: x + x -> 2 x (after sorting, duplicates adjoin).
    flat.sort_by(super::lists::canonical_order);
    let mut collected: Vec<Expr> = Vec::with_capacity(flat.len());
    let mut run_len = 1usize;
    for ix in 1..=flat.len() {
        if ix < flat.len() && flat[ix] == flat[ix - 1] && Num::from_expr(&flat[ix]).is_none() {
            run_len += 1;
            continue;
        }
        let term = flat[ix - 1].clone();
        if run_len > 1 {
            collected.push(Expr::call("Times", [Expr::int(run_len as i64), term]));
        } else {
            collected.push(term);
        }
        run_len = 1;
    }
    nary_fold(&collected, Num::Int(0), "Plus", Num::add)
}

fn times(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    if args.len() == 1 {
        return done(args[0].clone());
    }
    let flat = flatten_flat("Times", args);
    // Times[0, ...] short-circuits even with symbolic arguments, but an
    // inexact factor makes the zero inexact: `0*1.5` is `0.` while `0*x`
    // stays the exact integer 0 (Wolfram precision-contagion semantics).
    // A non-finite real factor disables the shortcut: `0*Infinity` is
    // IEEE's `0. * inf = NaN`, not zero. The inexact zero also keeps the
    // IEEE sign product (`-1.5*0` is `-0.`), so reciprocal powers of it
    // agree with compiled real code on the branch of infinity.
    if flat.iter().any(|a| a.as_i64() == Some(0))
        && !flat
            .iter()
            .any(|a| matches!(a.kind(), ExprKind::Real(r) if !r.is_finite()))
    {
        if flat.iter().any(|a| matches!(a.kind(), ExprKind::Real(_))) {
            let negative = flat
                .iter()
                .filter(|a| match a.kind() {
                    ExprKind::Real(r) => r.is_sign_negative(),
                    ExprKind::BigInteger(b) => b.is_negative(),
                    _ => a.as_i64().is_some_and(|v| v < 0),
                })
                .count()
                % 2
                == 1;
            return done(Expr::real(if negative { -0.0 } else { 0.0 }));
        }
        return done(Expr::int(0));
    }
    nary_fold(&flat, Num::Int(1), "Times", Num::mul)
}

fn subtract(i: &mut Interpreter, args: &[Expr], d: usize) -> Result<Option<Expr>, EvalError> {
    let [a, b] = args else { return INERT };
    match (Num::from_expr(a), Num::from_expr(b)) {
        (Some(x), Some(y)) => done(x.sub(&y).into_expr()),
        _ => i
            .eval_depth(
                &Expr::call(
                    "Plus",
                    [a.clone(), Expr::call("Times", [Expr::int(-1), b.clone()])],
                ),
                d + 1,
            )
            .map(Some),
    }
}

fn minus(i: &mut Interpreter, args: &[Expr], d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(x) => done(x.neg().into_expr()),
        None => i
            .eval_depth(&Expr::call("Times", [Expr::int(-1), a.clone()]), d + 1)
            .map(Some),
    }
}

fn divide(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a, b] = args else { return INERT };
    match (Num::from_expr(a), Num::from_expr(b)) {
        (Some(x), Some(y)) => match x.div(&y) {
            Some(v) => done(v.into_expr()),
            None => Err(wolfram_runtime::RuntimeError::DivideByZero.into()),
        },
        _ => INERT,
    }
}

fn power(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a, b] = args else { return INERT };
    // Symbolic simplifications used by the differentiation rules.
    if b.as_i64() == Some(1) {
        return done(a.clone());
    }
    if b.as_i64() == Some(0) {
        return done(Expr::int(1));
    }
    match (Num::from_expr(a), Num::from_expr(b)) {
        (Some(x), Some(y)) => done(x.pow(&y).into_expr()),
        _ => INERT,
    }
}

fn mod_builtin(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a, b] = args else { return INERT };
    // Exact bignum remainder (Mod[2^100, p] must not round-trip floats).
    if let (ExprKind::BigInteger(big), Some(m)) = (a.kind(), b.as_i64()) {
        if m > 0 {
            let r = big.rem_u64(m as u64) as i64;
            let r = if big.is_negative() && r != 0 {
                m - r
            } else {
                r
            };
            return done(Expr::int(r));
        }
    }
    match (a.as_i64(), b.as_i64()) {
        (Some(x), Some(y)) => wolfram_runtime::checked::mod_i64(x, y)
            .map(|v| Some(Expr::int(v)))
            .map_err(EvalError::from),
        _ => match (Num::from_expr(a), Num::from_expr(b)) {
            (Some(x), Some(y)) if !y.is_zero() => {
                let (xf, yf) = (x.to_f64(), y.to_f64());
                done(Expr::real(xf - yf * (xf / yf).floor()))
            }
            _ => INERT,
        },
    }
}

fn quotient(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a, b] = args else { return INERT };
    match (a.as_i64(), b.as_i64()) {
        (Some(x), Some(y)) => {
            if y == 0 {
                return Err(wolfram_runtime::RuntimeError::DivideByZero.into());
            }
            if x == i64::MIN && y == -1 {
                return Err(wolfram_runtime::RuntimeError::IntegerOverflow.into());
            }
            // Exact floor division: Quotient[m, n] = Floor[m/n].
            let (q, r) = (x / y, x % y);
            done(Expr::int(if r != 0 && (r < 0) != (y < 0) {
                q - 1
            } else {
                q
            }))
        }
        _ => match (Num::from_expr(a), Num::from_expr(b)) {
            // Real operands: still an integer result (Quotient[5.3, 2]
            // is 2, not 2.) — shared with the compiled engines through
            // `checked::quotient_f64`. Bignums stay exact (inert here),
            // complexes have no floor.
            (Some(x @ (Num::Int(_) | Num::Real(_))), Some(y @ (Num::Int(_) | Num::Real(_)))) => {
                wolfram_runtime::checked::quotient_f64(x.to_f64(), y.to_f64())
                    .map(|v| Some(Expr::int(v)))
                    .map_err(EvalError::from)
            }
            _ => INERT,
        },
    }
}

fn abs(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(Num::Int(v)) => done(match v.checked_abs() {
            Some(x) => Expr::int(x),
            None => Expr::big(wolfram_expr::BigInt::from(v).neg()),
        }),
        Some(Num::Big(b)) => done(Expr::big(if b.is_negative() { b.neg() } else { b })),
        Some(Num::Real(v)) => done(Expr::real(v.abs())),
        Some(Num::Complex(re, im)) => done(Expr::real(re.hypot(im))),
        None => INERT,
    }
}

fn sign(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(n) => match n.compare(&Num::Int(0)) {
            Some(Ordering::Less) => done(Expr::int(-1)),
            Some(Ordering::Equal) => done(Expr::int(0)),
            Some(Ordering::Greater) => done(Expr::int(1)),
            None => INERT,
        },
        None => INERT,
    }
}

fn min_max(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
    keep: Ordering,
) -> Result<Option<Expr>, EvalError> {
    // Min/Max flatten lists.
    let mut flat = Vec::new();
    for a in args {
        if a.has_head("List") {
            flat.extend(a.args().iter().cloned());
        } else {
            flat.push(a.clone());
        }
    }
    let nums: Option<Vec<Num>> = flat.iter().map(Num::from_expr).collect();
    let Some(nums) = nums else { return INERT };
    let mut best: Option<Num> = None;
    for n in nums {
        best = Some(match best {
            None => n,
            Some(b) => match n.compare(&b) {
                Some(o) if o == keep => n,
                Some(_) => b,
                None => return INERT,
            },
        });
    }
    match best {
        Some(b) => done(b.into_expr()),
        None => INERT,
    }
}

fn round_half_even(v: f64) -> f64 {
    let r = v.round();
    if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - v.signum()
    } else {
        r
    }
}

fn rounding(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
    f: impl Fn(f64) -> f64,
) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(Num::Int(v)) => done(Expr::int(v)),
        Some(Num::Big(b)) => done(Expr::big(b)),
        Some(Num::Real(v)) => done(Expr::int(f(v) as i64)),
        _ => INERT,
    }
}

fn sqrt(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(Num::Int(v)) if v >= 0 => {
            let r = (v as f64).sqrt().round() as i64;
            if r * r == v {
                done(Expr::int(r))
            } else {
                INERT
            }
        }
        Some(Num::Real(v)) if v >= 0.0 => done(Expr::real(v.sqrt())),
        Some(Num::Real(v)) => done(Expr::complex(0.0, (-v).sqrt())),
        _ => INERT,
    }
}

fn log(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    match args {
        [a] => {
            if a.as_i64() == Some(1) {
                return done(Expr::int(0));
            }
            if a.is_symbol("E") {
                return done(Expr::int(1));
            }
            match Num::from_expr(a) {
                Some(Num::Real(v)) if v > 0.0 => done(Expr::real(v.ln())),
                _ => INERT,
            }
        }
        [base, a] => match (Num::from_expr(base), Num::from_expr(a)) {
            (Some(b), Some(x)) => done(Expr::real(x.to_f64().log(b.to_f64()))),
            _ => INERT,
        },
        _ => INERT,
    }
}

/// Real-valued unary math: evaluates on `Real` arguments, keeps integers
/// and symbols symbolic (except the exact zero cases below).
fn unary_real(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
    f: impl Fn(f64) -> f64,
    name: &str,
) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    if a.as_i64() == Some(0) {
        // Sin[0] -> 0, Cos[0] -> 1, Exp[0] -> 1, Tan[0] -> 0, ...
        return done(
            Expr::real(f(0.0))
                .as_f64()
                .map(|v| {
                    if v == v.trunc() {
                        Expr::int(v as i64)
                    } else {
                        Expr::real(v)
                    }
                })
                .expect("real literal"),
        );
    }
    match a.kind() {
        ExprKind::Real(v) => done(Expr::real(f(*v))),
        _ => {
            let _ = name;
            INERT
        }
    }
}

fn arctan(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    match args {
        [a] => match a.kind() {
            ExprKind::Real(v) => done(Expr::real(v.atan())),
            ExprKind::Integer(0) => done(Expr::int(0)),
            _ => INERT,
        },
        [x, y] => match (Num::from_expr(x), Num::from_expr(y)) {
            (Some(a), Some(b)) => done(Expr::real(b.to_f64().atan2(a.to_f64()))),
            _ => INERT,
        },
        _ => INERT,
    }
}

fn re(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(Num::Complex(re, _)) => done(Expr::real(re)),
        Some(n) => done(n.into_expr()),
        None => INERT,
    }
}

fn im(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(Num::Complex(_, im)) => done(Expr::real(im)),
        Some(_) => done(Expr::int(0)),
        None => INERT,
    }
}

fn conjugate(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a) {
        Some(Num::Complex(re, im)) => done(Expr::complex(re, -im)),
        Some(n) => done(n.into_expr()),
        None => INERT,
    }
}

/// `N`: numericize constants and exact numbers, then re-evaluate.
fn n_builtin(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    let numericized = numericize(a);
    i.eval_depth(&numericized, depth + 1).map(Some)
}

/// Replaces exact numbers and known constants by machine reals, bottom-up.
pub(crate) fn numericize(e: &Expr) -> Expr {
    e.map_bottom_up(&mut |node| match node.kind() {
        ExprKind::Integer(v) => Expr::real(*v as f64),
        ExprKind::BigInteger(b) => Expr::real(b.to_f64()),
        ExprKind::Symbol(s) => match s.name() {
            "Pi" => Expr::real(std::f64::consts::PI),
            "E" => Expr::real(std::f64::consts::E),
            "Degree" => Expr::real(std::f64::consts::PI / 180.0),
            "I" => Expr::complex(0.0, 1.0),
            "GoldenRatio" => Expr::real((1.0 + 5.0f64.sqrt()) / 2.0),
            _ => node,
        },
        _ => node,
    })
}

fn same_q(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    done(Expr::bool(args.windows(2).all(|w| w[0] == w[1])))
}

fn unsame_q(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    // UnsameQ is pairwise-distinct.
    for (ix, a) in args.iter().enumerate() {
        for b in &args[ix + 1..] {
            if a == b {
                return done(Expr::bool(false));
            }
        }
    }
    done(Expr::bool(true))
}

/// Decides equality of two (possibly symbolic) expressions: `Some(bool)` if
/// decidable, `None` otherwise.
pub(crate) fn decide_equal(a: &Expr, b: &Expr) -> Option<bool> {
    if let (Some(x), Some(y)) = (Num::from_expr(a), Num::from_expr(b)) {
        return Some(x.compare(&y) == Some(Ordering::Equal));
    }
    match (a.kind(), b.kind()) {
        (ExprKind::Str(x), ExprKind::Str(y)) => Some(x == y),
        _ => {
            if a == b {
                // Identical expressions are equal even when symbolic.
                Some(true)
            } else if a.is_atom()
                && b.is_atom()
                && a.as_symbol().is_none()
                && b.as_symbol().is_none()
            {
                Some(false)
            } else {
                None
            }
        }
    }
}

fn compare_chain(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
    allowed: &[Ordering],
) -> Result<Option<Expr>, EvalError> {
    if args.len() < 2 {
        return done(Expr::bool(true));
    }
    let equality_only = allowed == [Ordering::Equal];
    for w in args.windows(2) {
        if equality_only {
            match decide_equal(&w[0], &w[1]) {
                Some(true) => continue,
                Some(false) => return done(Expr::bool(false)),
                None => return INERT,
            }
        }
        match (Num::from_expr(&w[0]), Num::from_expr(&w[1])) {
            (Some(x), Some(y)) => match x.compare(&y) {
                Some(o) if allowed.contains(&o) => continue,
                Some(_) => return done(Expr::bool(false)),
                None => return INERT,
            },
            _ => match (w[0].as_str(), w[1].as_str()) {
                (Some(x), Some(y)) => {
                    let o = x.cmp(y);
                    if allowed.contains(&o) {
                        continue;
                    }
                    return done(Expr::bool(false));
                }
                _ => return INERT,
            },
        }
    }
    done(Expr::bool(true))
}

fn unequal(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    for (ix, a) in args.iter().enumerate() {
        for b in &args[ix + 1..] {
            match decide_equal(a, b) {
                Some(true) => return done(Expr::bool(false)),
                Some(false) => {}
                None => return INERT,
            }
        }
    }
    done(Expr::bool(true))
}

fn not(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    if a.is_true() {
        done(Expr::bool(false))
    } else if a.is_false() {
        done(Expr::bool(true))
    } else {
        INERT
    }
}

fn and(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let mut residual = Vec::new();
    for a in args {
        let v = i.eval_depth(a, depth + 1)?;
        if v.is_false() {
            return done(Expr::bool(false));
        }
        if !v.is_true() {
            residual.push(v);
        }
    }
    match residual.len() {
        0 => done(Expr::bool(true)),
        1 => done(residual.pop().expect("len checked")),
        _ => done(Expr::call("And", residual)),
    }
}

fn or(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let mut residual = Vec::new();
    for a in args {
        let v = i.eval_depth(a, depth + 1)?;
        if v.is_true() {
            return done(Expr::bool(true));
        }
        if !v.is_false() {
            residual.push(v);
        }
    }
    match residual.len() {
        0 => done(Expr::bool(false)),
        1 => done(residual.pop().expect("len checked")),
        _ => done(Expr::call("Or", residual)),
    }
}

fn numeric_q(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else {
        return type_err("NumericQ expects one argument");
    };
    let numeric = Num::from_expr(a).is_some()
        || matches!(
            a.as_symbol()
                .as_ref()
                .map(|s| s.name().to_owned())
                .as_deref(),
            Some("Pi") | Some("E") | Some("Degree") | Some("GoldenRatio")
        );
    done(Expr::bool(numeric))
}

fn sign_pred(args: &[Expr], ok: impl Fn(Ordering) -> bool) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match Num::from_expr(a).and_then(|n| n.compare(&Num::Int(0))) {
        Some(o) => done(Expr::bool(ok(o))),
        None => INERT,
    }
}

fn factorial(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    let Some(n) = a.as_i64() else { return INERT };
    if n < 0 {
        return INERT; // ComplexInfinity territory: stays symbolic here
    }
    // Arbitrary precision: Factorial never overflows in the interpreter.
    let mut acc = wolfram_expr::BigInt::one();
    for k in 2..=n {
        acc = &acc * &wolfram_expr::BigInt::from(k);
    }
    done(Expr::big(acc))
}

/// Euclidean gcd on machine integers (non-negative result).
pub fn gcd_i64(mut a: i64, mut b: i64) -> i64 {
    a = a.unsigned_abs() as i64;
    b = b.unsigned_abs() as i64;
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn gcd_builtin(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let mut acc = 0i64;
    for a in args {
        let Some(v) = a.as_i64() else { return INERT };
        acc = gcd_i64(acc, v);
    }
    done(Expr::int(acc))
}

fn lcm_builtin(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let mut acc = 1i64;
    for a in args {
        let Some(v) = a.as_i64() else { return INERT };
        if v == 0 {
            return done(Expr::int(0));
        }
        let g = gcd_i64(acc, v);
        acc = match (acc / g).checked_mul(v.abs()) {
            Some(x) => x,
            None => return Err(wolfram_runtime::RuntimeError::IntegerOverflow.into()),
        };
    }
    done(Expr::int(acc))
}

fn integer_digits(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
) -> Result<Option<Expr>, EvalError> {
    let (n, base) = match args {
        [n] => (n, 10i64),
        [n, b] => match b.as_i64() {
            Some(b) if b >= 2 => (n, b),
            _ => return INERT,
        },
        _ => return INERT,
    };
    let Some(mut v) = n.as_i64() else {
        return INERT;
    };
    v = v.abs();
    if v == 0 {
        return done(Expr::list([Expr::int(0)]));
    }
    let mut digits = Vec::new();
    while v > 0 {
        digits.push(Expr::int(v % base));
        v /= base;
    }
    digits.reverse();
    done(Expr::list(digits))
}

fn from_digits(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let (digits, base) = match args {
        [d] => (d, 10i64),
        [d, b] => match b.as_i64() {
            Some(b) if b >= 2 => (d, b),
            _ => return INERT,
        },
        _ => return INERT,
    };
    if !digits.has_head("List") {
        return INERT;
    }
    let mut acc = 0i64;
    for d in digits.args() {
        let Some(d) = d.as_i64() else { return INERT };
        acc = wolfram_runtime::checked::mul_i64(acc, base)
            .and_then(|x| wolfram_runtime::checked::add_i64(x, d))
            .map_err(EvalError::from)?;
    }
    done(Expr::int(acc))
}

/// Deterministic Miller–Rabin for `u64` (the PrimeQ benchmark's algorithm,
/// §6: "the Rabin-Miller primality test").
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

fn prime_q(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match a.as_i64() {
        Some(v) => done(Expr::bool(is_prime_u64(v.unsigned_abs()))),
        None => INERT,
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::Interpreter;

    fn ev(src: &str) -> String {
        Interpreter::new().eval_src(src).unwrap().to_full_form()
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(ev("1 + 2*3"), "7");
        assert_eq!(ev("10 - 4"), "6");
        assert_eq!(ev("7/2"), "3.5");
        assert_eq!(ev("6/3"), "2");
        assert_eq!(ev("2^10"), "1024");
        assert_eq!(ev("Mod[-7, 3]"), "2");
        assert_eq!(ev("Quotient[7, 2]"), "3");
    }

    #[test]
    fn overflow_promotes_to_bignum() {
        // The interpreter silently switches to arbitrary precision (F2).
        assert_eq!(ev("2^100"), "1267650600228229401496703205376");
        assert_eq!(ev("9223372036854775807 + 1"), "9223372036854775808");
    }

    #[test]
    fn partial_symbolic_folding() {
        assert_eq!(ev("1 + x + 2"), "Plus[3, x]");
        assert_eq!(ev("2 * x * 3"), "Times[6, x]");
        assert_eq!(ev("x + 0 + 0"), "x");
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("1 < 2"), "True");
        assert_eq!(ev("1 < 2 < 3"), "True");
        assert_eq!(ev("1 < 2 < 2"), "False");
        assert_eq!(ev("2.0 == 2"), "True");
        assert_eq!(ev("\"a\" == \"a\""), "True");
        assert_eq!(ev("x == x"), "True");
        assert_eq!(ev("x == y"), "Equal[x, y]");
        assert_eq!(ev("True && False"), "False");
        assert_eq!(ev("False || True"), "True");
        assert_eq!(ev("!True"), "False");
        assert_eq!(ev("1 != 2"), "True");
        assert_eq!(ev("x === x"), "True");
        assert_eq!(ev("x =!= y"), "True");
    }

    #[test]
    fn short_circuit_and() {
        // The second operand must not be evaluated.
        assert_eq!(ev("False && (x = 1; True)"), "False");
        assert_eq!(ev("x"), "x"); // x was never set (fresh interpreter)
    }

    #[test]
    fn math_functions() {
        assert_eq!(ev("Abs[-5]"), "5");
        assert_eq!(ev("Sqrt[16]"), "4");
        assert_eq!(ev("Sqrt[2.0]"), ev("1.4142135623730951"));
        assert_eq!(ev("Sqrt[2]"), "Sqrt[2]"); // stays symbolic
        assert_eq!(ev("Exp[0]"), "1");
        assert_eq!(ev("Log[1]"), "0");
        assert_eq!(ev("Sign[-9]"), "-1");
        // Abs of a complex literal built through N[..] of 3 + 4 I.
        let v = Interpreter::new()
            .eval_src("Abs[N[3 + 4*I]]")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(v, 5.0);
    }

    #[test]
    fn numeric_n() {
        assert_eq!(ev("N[Pi]"), format!("{}", std::f64::consts::PI));
        assert_eq!(ev("N[1/3]"), ev("0.3333333333333333"));
        assert_eq!(ev("N[2*Pi]"), ev("6.283185307179586"));
    }

    #[test]
    fn primes() {
        use super::is_prime_u64;
        let primes: Vec<u64> = (0..30).filter(|&n| is_prime_u64(n)).collect();
        assert_eq!(primes, [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(is_prime_u64(1_000_003));
        assert!(!is_prime_u64(1_000_001)); // 101 * 9901
        assert!(is_prime_u64(2_147_483_647)); // Mersenne prime 2^31-1
        assert_eq!(ev("PrimeQ[97]"), "True");
        assert_eq!(ev("PrimeQ[98]"), "False");
    }

    #[test]
    fn trig_on_reals_only() {
        assert_eq!(ev("Sin[0]"), "0");
        assert_eq!(ev("Cos[0]"), "1");
        assert_eq!(ev("Sin[x]"), "Sin[x]");
        assert_eq!(ev("Sin[1]"), "Sin[1]");
        let v = Interpreter::new()
            .eval_src("Sin[1.0]")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((v - 1.0f64.sin()).abs() < 1e-15);
    }

    #[test]
    fn min_max_flatten() {
        assert_eq!(ev("Min[3, 1, 2]"), "1");
        assert_eq!(ev("Max[{3, 1}, 5]"), "5");
        assert_eq!(ev("Min[2.5, 2]"), "2");
    }

    #[test]
    fn number_theory() {
        assert_eq!(ev("Factorial[5]"), "120");
        assert_eq!(ev("Factorial[0]"), "1");
        // Factorial exceeds machine range without complaint (bignum).
        assert_eq!(ev("Factorial[25]"), "15511210043330985984000000");
        assert_eq!(ev("GCD[12, 18]"), "6");
        assert_eq!(ev("GCD[12, 18, 8]"), "2");
        assert_eq!(ev("GCD[0, 7]"), "7");
        assert_eq!(ev("LCM[4, 6]"), "12");
        assert_eq!(ev("LCM[3, 0]"), "0");
        assert_eq!(ev("IntegerDigits[1234]"), "List[1, 2, 3, 4]");
        assert_eq!(ev("IntegerDigits[10, 2]"), "List[1, 0, 1, 0]");
        assert_eq!(ev("FromDigits[{1, 2, 3, 4}]"), "1234");
        assert_eq!(ev("FromDigits[{1, 0, 1, 0}, 2]"), "10");
        assert_eq!(ev("FromDigits[{0}]"), "0");
        assert_eq!(ev("IntegerDigits[0]"), "List[0]");
    }

    #[test]
    fn rounding() {
        assert_eq!(ev("Floor[2.7]"), "2");
        assert_eq!(ev("Ceiling[2.1]"), "3");
        assert_eq!(ev("Round[2.5]"), "2"); // banker's rounding
        assert_eq!(ev("Round[3.5]"), "4");
        assert_eq!(ev("Floor[5]"), "5");
    }
}
