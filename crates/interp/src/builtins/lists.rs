//! List and functional-programming builtins: the high-level constructs the
//! paper highlights (`NestList`, `FixedPoint`, `Map`, `Select`, `Fold`,
//! `Table`, ...).

use super::{attr, done, reg, type_err, BuiltinDef, INERT};
use crate::eval::{EvalError, Interpreter};
use crate::numeric::Num;
use std::cmp::Ordering;
use std::collections::HashMap;
use wolfram_expr::{Expr, ExprKind, Symbol};
use wolfram_runtime::checked::resolve_part_index;
use wolfram_runtime::value::{expr_to_tensor, tensor_to_expr};
use wolfram_runtime::{RuntimeError, Tensor, TensorData};

pub(crate) fn register(m: &mut HashMap<&'static str, BuiltinDef>) {
    reg(m, "List", attr::none(), |_, _, _| INERT);
    reg(m, "Length", attr::none(), length);
    reg(m, "Dimensions", attr::none(), dimensions);
    reg(m, "Part", attr::none(), part);
    reg(m, "Range", attr::none(), range);
    reg(m, "Table", attr::hold_all(), table);
    reg(m, "Map", attr::none(), map);
    reg(m, "Apply", attr::none(), apply);
    reg(m, "Select", attr::none(), select);
    reg(m, "Fold", attr::none(), fold);
    reg(m, "FoldList", attr::none(), fold_list);
    reg(m, "Nest", attr::none(), |i, a, d| nest(i, a, d, false));
    reg(m, "NestList", attr::none(), |i, a, d| nest(i, a, d, true));
    reg(m, "FixedPoint", attr::none(), |i, a, d| {
        fixed_point(i, a, d, false)
    });
    reg(m, "FixedPointList", attr::none(), |i, a, d| {
        fixed_point(i, a, d, true)
    });
    reg(m, "Join", attr::none(), join);
    reg(m, "Append", attr::none(), append);
    reg(m, "Prepend", attr::none(), prepend);
    reg(m, "First", attr::none(), |i, a, d| element_at(i, a, d, 1));
    reg(m, "Last", attr::none(), |i, a, d| element_at(i, a, d, -1));
    reg(m, "Rest", attr::none(), rest);
    reg(m, "Most", attr::none(), most);
    reg(m, "Take", attr::none(), |i, a, d| take_drop(i, a, d, true));
    reg(m, "Drop", attr::none(), |i, a, d| take_drop(i, a, d, false));
    reg(m, "Reverse", attr::none(), reverse);
    reg(m, "Sort", attr::none(), sort);
    reg(m, "Flatten", attr::none(), flatten);
    reg(m, "Total", attr::none(), total);
    reg(m, "Mean", attr::none(), mean);
    reg(m, "ConstantArray", attr::none(), constant_array);
    reg(m, "Dot", attr::none(), dot);
    reg(m, "Transpose", attr::none(), transpose);
    reg(m, "Count", attr::none(), count);
    reg(m, "MemberQ", attr::none(), member_q);
    reg(m, "FreeQ", attr::none(), free_q);
    reg(m, "IdentityMatrix", attr::none(), identity_matrix);
}

fn length(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    match a.kind() {
        ExprKind::Normal(_) => done(Expr::int(a.length() as i64)),
        _ => done(Expr::int(0)),
    }
}

fn dimensions(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    let mut dims = Vec::new();
    let mut cursor = a.clone();
    while cursor.has_head("List") {
        dims.push(Expr::int(cursor.length() as i64));
        // Only descend while rectangular.
        let Some(first) = cursor.args().first().cloned() else {
            break;
        };
        let len = first.length();
        if !first.has_head("List")
            || !cursor
                .args()
                .iter()
                .all(|x| x.has_head("List") && x.length() == len)
        {
            break;
        }
        cursor = first;
    }
    done(Expr::list(dims))
}

fn part(i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let (base, indices) = match args {
        [] | [_] => return INERT,
        [base, rest @ ..] => (base, rest),
    };
    let mut cur = base.clone();
    for ixe in indices {
        let Some(ix) = ixe.as_i64() else {
            // A numeric-but-not-integer index (e.g. `xs[[2.5]]`) is a type
            // error, matching the compiled engines; a symbolic index stays
            // inert.
            if ixe.as_f64().is_some() {
                return Err(RuntimeError::Type(format!(
                    "Part index {} is not an integer",
                    ixe.to_input_form()
                ))
                .into());
            }
            return INERT;
        };
        if ix == 0 {
            // Part 0 is the head.
            cur = cur.head();
            continue;
        }
        if cur.is_atom() {
            return Err(RuntimeError::Type(format!(
                "Part of atomic expression {}",
                cur.to_input_form()
            ))
            .into());
        }
        let offset = resolve_part_index(ix, cur.length()).map_err(EvalError::Runtime)?;
        cur = cur.args()[offset].clone();
    }
    let _ = i;
    done(cur)
}

fn range(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let (start, end, step) = match args {
        [n] => (Num::Int(1), Num::from_expr(n), Num::Int(1)),
        [a, b] => (
            match Num::from_expr(a) {
                Some(v) => v,
                None => return INERT,
            },
            Num::from_expr(b),
            Num::Int(1),
        ),
        [a, b, s] => {
            let (Some(a), Some(s)) = (Num::from_expr(a), Num::from_expr(s)) else {
                return INERT;
            };
            (a, Num::from_expr(b), s)
        }
        _ => return INERT,
    };
    let Some(end) = end else { return INERT };
    let mut out = Vec::new();
    let mut cur = start;
    let ascending = matches!(step.compare(&Num::Int(0)), Some(Ordering::Greater));
    if step.is_zero() {
        return type_err("Range step must be nonzero");
    }
    loop {
        match cur.compare(&end) {
            Some(Ordering::Greater) if ascending => break,
            Some(Ordering::Less) if !ascending => break,
            None => return INERT,
            _ => {}
        }
        out.push(cur.clone().into_expr());
        cur = cur.add(&step);
        if out.len() > 100_000_000 {
            return type_err("Range too large");
        }
    }
    done(Expr::list(out))
}

/// Iterates a `Table`/`Do` iteration specification, calling `body` with the
/// iteration variable bound (Block-style). `body` returns `false` to stop.
pub(crate) fn iterate_spec(
    i: &mut Interpreter,
    spec: &Expr,
    depth: usize,
    body: &mut dyn FnMut(&mut Interpreter, usize) -> Result<bool, EvalError>,
) -> Result<(), EvalError> {
    // Forms: n | {n} | {i, n} | {i, a, b} | {i, a, b, di} | {i, list}
    if !spec.has_head("List") {
        let n = eval_count(i, spec, depth)?;
        for ix in 0..n {
            if !body(i, ix)? {
                break;
            }
        }
        return Ok(());
    }
    match spec.args() {
        [] => type_err("empty iterator specification"),
        [n] => {
            let n = eval_count(i, n, depth)?;
            for ix in 0..n {
                if !body(i, ix)? {
                    break;
                }
            }
            Ok(())
        }
        [v, rest @ ..] => {
            let Some(var) = v.as_symbol() else {
                return type_err("iterator variable must be a symbol");
            };
            let values = match rest {
                [bound] => {
                    let b = i.eval_depth(bound, depth + 1)?;
                    if b.has_head("List") {
                        // {i, list}: iterate over explicit values.
                        b.args().to_vec()
                    } else {
                        numeric_sequence(
                            &Num::Int(1),
                            &Num::from_expr(&b).ok_or_else(bad_iter)?,
                            &Num::Int(1),
                        )?
                    }
                }
                [a, b] => {
                    let a = i.eval_depth(a, depth + 1)?;
                    let b = i.eval_depth(b, depth + 1)?;
                    numeric_sequence(
                        &Num::from_expr(&a).ok_or_else(bad_iter)?,
                        &Num::from_expr(&b).ok_or_else(bad_iter)?,
                        &Num::Int(1),
                    )?
                }
                [a, b, s] => {
                    let a = i.eval_depth(a, depth + 1)?;
                    let b = i.eval_depth(b, depth + 1)?;
                    let s = i.eval_depth(s, depth + 1)?;
                    numeric_sequence(
                        &Num::from_expr(&a).ok_or_else(bad_iter)?,
                        &Num::from_expr(&b).ok_or_else(bad_iter)?,
                        &Num::from_expr(&s).ok_or_else(bad_iter)?,
                    )?
                }
                _ => return type_err("bad iterator specification"),
            };
            iterate_values(i, var, values, depth, body)
        }
    }
}

fn bad_iter() -> EvalError {
    EvalError::Runtime(RuntimeError::Type("iterator bounds must be numeric".into()))
}

fn eval_count(i: &mut Interpreter, e: &Expr, depth: usize) -> Result<usize, EvalError> {
    let v = i.eval_depth(e, depth + 1)?;
    match v.as_i64() {
        Some(n) if n >= 0 => Ok(n as usize),
        _ => match v.as_f64() {
            Some(f) if f >= 0.0 => Ok(f.floor() as usize),
            _ => type_err(format!("invalid iteration count {}", v.to_input_form())),
        },
    }
}

fn numeric_sequence(a: &Num, b: &Num, step: &Num) -> Result<Vec<Expr>, EvalError> {
    if step.is_zero() {
        return type_err("iterator step must be nonzero");
    }
    let ascending = matches!(step.compare(&Num::Int(0)), Some(Ordering::Greater));
    let mut out = Vec::new();
    let mut cur = a.clone();
    loop {
        match cur.compare(b) {
            Some(Ordering::Greater) if ascending => break,
            Some(Ordering::Less) if !ascending => break,
            None => return type_err("iterator bounds not comparable"),
            _ => {}
        }
        out.push(cur.clone().into_expr());
        cur = cur.add(step);
    }
    Ok(out)
}

/// Runs `body` once per value with the iteration variable Block-bound.
fn iterate_values(
    i: &mut Interpreter,
    var: Symbol,
    values: Vec<Expr>,
    _depth: usize,
    body: &mut dyn FnMut(&mut Interpreter, usize) -> Result<bool, EvalError>,
) -> Result<(), EvalError> {
    let saved = i.env.own_value(&var).cloned();
    let mut run = || -> Result<(), EvalError> {
        for (ix, v) in values.iter().enumerate() {
            i.env.set_own(var.clone(), v.clone());
            if !body(i, ix)? {
                break;
            }
        }
        Ok(())
    };
    let result = run();
    match saved {
        Some(v) => i.env.set_own(var.clone(), v),
        None => i.env.clear_own(&var),
    }
    result
}

fn table(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [body, specs @ ..] = args else {
        return INERT;
    };
    if specs.is_empty() {
        return INERT;
    }
    fn build(
        i: &mut Interpreter,
        body: &Expr,
        specs: &[Expr],
        depth: usize,
    ) -> Result<Expr, EvalError> {
        let (spec, rest) = specs.split_first().expect("nonempty specs");
        let mut out = Vec::new();
        iterate_spec(i, spec, depth, &mut |i, _| {
            let v = if rest.is_empty() {
                match i.eval_depth(body, depth + 1) {
                    Ok(v) => v,
                    Err(EvalError::BreakSignal) => return Ok(false),
                    Err(EvalError::ContinueSignal) => return Ok(true),
                    Err(other) => return Err(other),
                }
            } else {
                build(i, body, rest, depth)?
            };
            out.push(v);
            Ok(true)
        })?;
        Ok(Expr::list(out))
    }
    build(i, body, specs, depth).map(Some)
}

fn map(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [f, list] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut out = Vec::with_capacity(n.args().len());
    for a in n.args() {
        out.push(i.eval_depth(&Expr::normal(f.clone(), vec![a.clone()]), depth + 1)?);
    }
    done(Expr::normal(n.head().clone(), out))
}

fn apply(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [f, e] = args else { return INERT };
    let ExprKind::Normal(n) = e.kind() else {
        return INERT;
    };
    i.eval_depth(&Expr::normal(f.clone(), n.args().to_vec()), depth + 1)
        .map(Some)
}

fn select(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let (list, pred, limit) = match args {
        [l, p] => (l, p, usize::MAX),
        [l, p, n] => (l, p, n.as_i64().unwrap_or(i64::MAX).max(0) as usize),
        _ => return INERT,
    };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut out = Vec::new();
    for a in n.args() {
        if out.len() >= limit {
            break;
        }
        let keep = i.eval_depth(&Expr::normal(pred.clone(), vec![a.clone()]), depth + 1)?;
        if keep.is_true() {
            out.push(a.clone());
        }
    }
    done(Expr::normal(n.head().clone(), out))
}

fn fold(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let (f, init, list) = match args {
        [f, x, l] => (f, Some(x.clone()), l),
        [f, l] => (f, None, l),
        _ => return INERT,
    };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut items = n.args().iter();
    let mut acc = match init {
        Some(x) => x,
        None => match items.next() {
            Some(first) => first.clone(),
            None => return type_err("Fold of an empty list needs an initial value"),
        },
    };
    for item in items {
        acc = i.eval_depth(&Expr::normal(f.clone(), vec![acc, item.clone()]), depth + 1)?;
    }
    done(acc)
}

fn fold_list(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let (f, init, list) = match args {
        [f, x, l] => (f, Some(x.clone()), l),
        [f, l] => (f, None, l),
        _ => return INERT,
    };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut items = n.args().iter();
    let mut acc = match init {
        Some(x) => x,
        None => match items.next() {
            Some(first) => first.clone(),
            None => return type_err("FoldList of an empty list needs an initial value"),
        },
    };
    let mut out = vec![acc.clone()];
    for item in items {
        acc = i.eval_depth(&Expr::normal(f.clone(), vec![acc, item.clone()]), depth + 1)?;
        out.push(acc.clone());
    }
    done(Expr::list(out))
}

fn nest(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
    keep_list: bool,
) -> Result<Option<Expr>, EvalError> {
    let [f, x, n] = args else { return INERT };
    let Some(count) = n.as_i64().filter(|&v| v >= 0) else {
        return INERT;
    };
    let mut cur = x.clone();
    let mut out = if keep_list {
        Vec::with_capacity(count as usize + 1)
    } else {
        Vec::new()
    };
    if keep_list {
        out.push(cur.clone());
    }
    for _ in 0..count {
        cur = i.eval_depth(&Expr::normal(f.clone(), vec![cur]), depth + 1)?;
        if keep_list {
            out.push(cur.clone());
        }
    }
    if keep_list {
        done(Expr::list(out))
    } else {
        done(cur)
    }
}

fn fixed_point(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
    keep_list: bool,
) -> Result<Option<Expr>, EvalError> {
    let (f, x, max) = match args {
        [f, x] => (f, x, 65_536i64),
        [f, x, n] => (f, x, n.as_i64().unwrap_or(65_536)),
        _ => return INERT,
    };
    let mut cur = x.clone();
    let mut out = vec![cur.clone()];
    for _ in 0..max {
        let next = i.eval_depth(&Expr::normal(f.clone(), vec![cur.clone()]), depth + 1)?;
        let stop = next == cur;
        cur = next;
        if keep_list {
            out.push(cur.clone());
        }
        if stop {
            break;
        }
    }
    if keep_list {
        done(Expr::list(out))
    } else {
        done(cur)
    }
}

fn join(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    if args.is_empty() {
        return INERT;
    }
    let mut out = Vec::new();
    for a in args {
        let ExprKind::Normal(n) = a.kind() else {
            return INERT;
        };
        if !n.head().is_symbol("List") {
            return INERT;
        }
        out.extend(n.args().iter().cloned());
    }
    done(Expr::list(out))
}

fn append(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [list, e] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut new_args = n.args().to_vec();
    new_args.push(e.clone());
    done(Expr::normal(n.head().clone(), new_args))
}

fn prepend(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [list, e] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut new_args = vec![e.clone()];
    new_args.extend(n.args().iter().cloned());
    done(Expr::normal(n.head().clone(), new_args))
}

fn element_at(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
    index: i64,
) -> Result<Option<Expr>, EvalError> {
    let [list] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let offset = resolve_part_index(index, n.args().len()).map_err(EvalError::Runtime)?;
    done(n.args()[offset].clone())
}

fn rest(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [list] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    if n.args().is_empty() {
        return type_err("Rest of an empty expression");
    }
    done(Expr::normal(n.head().clone(), n.args()[1..].to_vec()))
}

fn most(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [list] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    if n.args().is_empty() {
        return type_err("Most of an empty expression");
    }
    done(Expr::normal(
        n.head().clone(),
        n.args()[..n.args().len() - 1].to_vec(),
    ))
}

fn take_drop(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
    take: bool,
) -> Result<Option<Expr>, EvalError> {
    let [list, spec] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let len = n.args().len();
    let range = if let Some(k) = spec.as_i64() {
        if k >= 0 {
            let k = (k as usize).min(len);
            if take {
                0..k
            } else {
                k..len
            }
        } else {
            let k = ((-k) as usize).min(len);
            if take {
                len - k..len
            } else {
                0..len - k
            }
        }
    } else if spec.has_head("List") && spec.length() == 2 {
        let (Some(a), Some(b)) = (spec.args()[0].as_i64(), spec.args()[1].as_i64()) else {
            return INERT;
        };
        let a = resolve_part_index(a, len).map_err(EvalError::Runtime)?;
        let b = resolve_part_index(b, len).map_err(EvalError::Runtime)?;
        if !take {
            return type_err("Drop with index ranges is not supported");
        }
        a..b + 1
    } else {
        return INERT;
    };
    done(Expr::normal(n.head().clone(), n.args()[range].to_vec()))
}

fn reverse(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [list] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut new_args = n.args().to_vec();
    new_args.reverse();
    done(Expr::normal(n.head().clone(), new_args))
}

/// Canonical expression ordering: numbers (by value) < strings < symbols <
/// normal expressions (by head, then length, then arguments).
pub(crate) fn canonical_order(a: &Expr, b: &Expr) -> Ordering {
    fn rank(e: &Expr) -> u8 {
        match e.kind() {
            ExprKind::Integer(_) | ExprKind::BigInteger(_) | ExprKind::Real(_) => 0,
            ExprKind::Complex(..) => 1,
            ExprKind::Str(_) => 2,
            ExprKind::Symbol(_) => 3,
            ExprKind::Normal(_) => 4,
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a.kind(), b.kind()) {
        (ExprKind::Str(x), ExprKind::Str(y)) => x.cmp(y),
        (ExprKind::Symbol(x), ExprKind::Symbol(y)) => x.cmp(y),
        (ExprKind::Normal(x), ExprKind::Normal(y)) => canonical_order(x.head(), y.head())
            .then_with(|| x.args().len().cmp(&y.args().len()))
            .then_with(|| {
                for (p, q) in x.args().iter().zip(y.args()) {
                    let o = canonical_order(p, q);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                Ordering::Equal
            }),
        _ => match (Num::from_expr(a), Num::from_expr(b)) {
            (Some(x), Some(y)) => x.compare(&y).unwrap_or(Ordering::Equal),
            _ => Ordering::Equal,
        },
    }
}

fn sort(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let (list, cmp) = match args {
        [l] => (l, None),
        [l, f] => (l, Some(f)),
        _ => return INERT,
    };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let items = n.args().to_vec();
    let sorted = match cmp {
        None => {
            let mut v = items;
            v.sort_by(canonical_order);
            v
        }
        Some(f) => merge_sort(i, items, f, depth)?,
    };
    done(Expr::normal(n.head().clone(), sorted))
}

/// Stable merge sort with an evaluator-driven comparator: `f[a, b]` true
/// means `a` should come before `b`.
fn merge_sort(
    i: &mut Interpreter,
    items: Vec<Expr>,
    f: &Expr,
    depth: usize,
) -> Result<Vec<Expr>, EvalError> {
    if items.len() <= 1 {
        return Ok(items);
    }
    let mid = items.len() / 2;
    let mut right = items;
    let left = merge_sort(i, right.drain(..mid).collect(), f, depth)?;
    let right = merge_sort(i, right, f, depth)?;
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut li, mut ri) = (0, 0);
    while li < left.len() && ri < right.len() {
        let before = i
            .eval_depth(
                &Expr::normal(f.clone(), vec![right[ri].clone(), left[li].clone()]),
                depth + 1,
            )?
            .is_true();
        if before {
            // right element strictly precedes: take it (stability keeps
            // left-first on ties).
            out.push(right[ri].clone());
            ri += 1;
        } else {
            out.push(left[li].clone());
            li += 1;
        }
    }
    out.extend_from_slice(&left[li..]);
    out.extend_from_slice(&right[ri..]);
    Ok(out)
}

fn flatten(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let (list, levels) = match args {
        [l] => (l, usize::MAX),
        [l, n] => (l, n.as_i64().unwrap_or(0).max(0) as usize),
        _ => return INERT,
    };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    fn go(e: &Expr, level: usize, out: &mut Vec<Expr>) {
        if level > 0 && e.has_head("List") {
            for a in e.args() {
                go(a, level - 1, out);
            }
        } else {
            out.push(e.clone());
        }
    }
    let mut out = Vec::new();
    for a in n.args() {
        go(a, levels, &mut out);
    }
    done(Expr::normal(n.head().clone(), out))
}

fn total(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [list] = args else { return INERT };
    if !list.has_head("List") {
        return INERT;
    }
    if list.length() == 0 {
        return done(Expr::int(0));
    }
    i.eval_depth(&Expr::call("Plus", list.args().to_vec()), depth + 1)
        .map(Some)
}

fn mean(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [list] = args else { return INERT };
    if !list.has_head("List") || list.length() == 0 {
        return INERT;
    }
    let sum = Expr::call("Plus", list.args().to_vec());
    i.eval_depth(
        &Expr::call("Divide", [sum, Expr::int(list.length() as i64)]),
        depth + 1,
    )
    .map(Some)
}

fn constant_array(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
) -> Result<Option<Expr>, EvalError> {
    let [c, spec] = args else { return INERT };
    fn build(c: &Expr, dims: &[usize]) -> Expr {
        match dims {
            [] => c.clone(),
            [n, rest @ ..] => Expr::list((0..*n).map(|_| build(c, rest)).collect::<Vec<_>>()),
        }
    }
    let dims: Option<Vec<usize>> = if let Some(n) = spec.as_i64() {
        (n >= 0).then(|| vec![n as usize])
    } else if spec.has_head("List") {
        spec.args()
            .iter()
            .map(|d| d.as_i64().and_then(|v| (v >= 0).then_some(v as usize)))
            .collect()
    } else {
        None
    };
    match dims {
        Some(d) => done(build(c, &d)),
        None => INERT,
    }
}

/// `Dot`: routed through the shared `dgemm`/`dgemv`/`ddot` kernels — the
/// same runtime library every implementation of the Dot benchmark uses
/// (paper §6: all three go through MKL).
fn dot(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a, b] = args else { return INERT };
    let (Some(ta), Some(tb)) = (expr_to_tensor(a), expr_to_tensor(b)) else {
        return INERT;
    };
    match dot_tensors(&ta, &tb) {
        Ok(result) => done(result),
        Err(e) => Err(e.into()),
    }
}

/// Tensor-level `Dot` shared by the interpreter, the legacy VM, and the
/// compiled-code runtime.
pub fn dot_tensors(ta: &Tensor, tb: &Tensor) -> Result<Expr, RuntimeError> {
    let both_int = ta.as_i64().is_some() && tb.as_i64().is_some();
    let fa = ta.to_f64_tensor();
    let fb = tb.to_f64_tensor();
    let (da, db) = (
        fa.as_f64().expect("promoted"),
        fb.as_f64().expect("promoted"),
    );
    let result: Tensor = match (ta.rank(), tb.rank()) {
        (1, 1) => {
            if ta.length() != tb.length() {
                return Err(RuntimeError::Type(
                    "Dot: incompatible vector lengths".into(),
                ));
            }
            let v = wolfram_runtime::linalg::ddot(da, db);
            return Ok(scalar_result(v, both_int));
        }
        (2, 2) => {
            let (m, k) = (fa.shape()[0], fa.shape()[1]);
            let (k2, nn) = (fb.shape()[0], fb.shape()[1]);
            if k != k2 {
                return Err(RuntimeError::Type("Dot: incompatible matrix shapes".into()));
            }
            let mut out = vec![0.0; m * nn];
            wolfram_runtime::linalg::dgemm(da, db, &mut out, m, k, nn);
            Tensor::with_shape(vec![m, nn], TensorData::F64(out))?
        }
        (2, 1) => {
            let (m, k) = (fa.shape()[0], fa.shape()[1]);
            if k != fb.shape()[0] {
                return Err(RuntimeError::Type("Dot: incompatible shapes".into()));
            }
            let mut out = vec![0.0; m];
            wolfram_runtime::linalg::dgemv(da, db, &mut out, m, k);
            Tensor::with_shape(vec![m], TensorData::F64(out))?
        }
        _ => return Err(RuntimeError::Type("Dot: unsupported ranks".into())),
    };
    let result = if both_int {
        demote_integral(&result)
    } else {
        result
    };
    Ok(tensor_to_expr(&result))
}

fn scalar_result(v: f64, as_int: bool) -> Expr {
    if as_int && v == v.trunc() && v.abs() < 9.0e15 {
        Expr::int(v as i64)
    } else {
        Expr::real(v)
    }
}

fn demote_integral(t: &Tensor) -> Tensor {
    let Some(data) = t.as_f64() else {
        return t.clone();
    };
    if data.iter().all(|v| *v == v.trunc() && v.abs() < 9.0e15) {
        let ints: Vec<i64> = data.iter().map(|&v| v as i64).collect();
        Tensor::with_shape(t.shape().to_vec(), TensorData::I64(ints)).unwrap_or_else(|_| t.clone())
    } else {
        t.clone()
    }
}

fn transpose(_i: &mut Interpreter, args: &[Expr], _d: usize) -> Result<Option<Expr>, EvalError> {
    let [a] = args else { return INERT };
    let Some(t) = expr_to_tensor(a) else {
        return INERT;
    };
    if t.rank() != 2 {
        return INERT;
    }
    let (m, n) = (t.shape()[0], t.shape()[1]);
    let out = match t.data() {
        TensorData::I64(v) => {
            let mut o = vec![0i64; v.len()];
            for i in 0..m {
                for j in 0..n {
                    o[j * m + i] = v[i * n + j];
                }
            }
            TensorData::I64(o)
        }
        TensorData::F64(v) => {
            let mut o = vec![0.0; v.len()];
            for i in 0..m {
                for j in 0..n {
                    o[j * m + i] = v[i * n + j];
                }
            }
            TensorData::F64(o)
        }
        TensorData::Complex(v) => {
            let mut o = vec![(0.0, 0.0); v.len()];
            for i in 0..m {
                for j in 0..n {
                    o[j * m + i] = v[i * n + j];
                }
            }
            TensorData::Complex(o)
        }
    };
    done(tensor_to_expr(
        &Tensor::with_shape(vec![n, m], out).map_err(EvalError::Runtime)?,
    ))
}

fn count(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [list, pat] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return INERT;
    };
    let mut total = 0i64;
    for a in n.args() {
        if matches_pattern(i, a, pat, depth) {
            total += 1;
        }
    }
    done(Expr::int(total))
}

fn member_q(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [list, pat] = args else { return INERT };
    let ExprKind::Normal(n) = list.kind() else {
        return done(Expr::bool(false));
    };
    let found = n.args().iter().any(|a| matches_pattern(i, a, pat, depth));
    done(Expr::bool(found))
}

fn free_q(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [e, pat] = args else { return INERT };
    let mut found = false;
    wolfram_expr::walk(e, &mut |node| {
        if matches_pattern(i, node, pat, depth) {
            found = true;
            wolfram_expr::VisitAction::Stop
        } else {
            wolfram_expr::VisitAction::Descend
        }
    });
    done(Expr::bool(!found))
}

pub(crate) fn matches_pattern(i: &mut Interpreter, e: &Expr, pat: &Expr, depth: usize) -> bool {
    let mut bindings = wolfram_expr::Bindings::new();
    let mut cond = |c: &Expr| {
        i.eval_depth(c, depth + 1)
            .map(|r| r.is_true())
            .unwrap_or(false)
    };
    let mut ctx = wolfram_expr::MatchCtx {
        condition_eval: Some(&mut cond),
    };
    wolfram_expr::match_pattern(e, pat, &mut bindings, &mut ctx)
}

fn identity_matrix(
    _i: &mut Interpreter,
    args: &[Expr],
    _d: usize,
) -> Result<Option<Expr>, EvalError> {
    let [n] = args else { return INERT };
    let Some(n) = n.as_i64().filter(|&v| v > 0) else {
        return INERT;
    };
    let n = n as usize;
    let mut data = vec![0i64; n * n];
    for i in 0..n {
        data[i * n + i] = 1;
    }
    let t = Tensor::with_shape(vec![n, n], TensorData::I64(data)).map_err(EvalError::Runtime)?;
    done(tensor_to_expr(&t))
}

#[cfg(test)]
mod tests {
    use crate::eval::Interpreter;

    fn ev(src: &str) -> String {
        Interpreter::new().eval_src(src).unwrap().to_full_form()
    }

    #[test]
    fn table_and_range() {
        assert_eq!(ev("Range[4]"), "List[1, 2, 3, 4]");
        assert_eq!(ev("Range[2, 8, 3]"), "List[2, 5, 8]");
        assert_eq!(ev("Table[i^2, {i, 4}]"), "List[1, 4, 9, 16]");
        assert_eq!(
            ev("Table[i + j, {i, 2}, {j, 2}]"),
            "List[List[2, 3], List[3, 4]]"
        );
        assert_eq!(ev("Table[7, 3]"), "List[7, 7, 7]");
        assert_eq!(ev("Table[i, {i, 0, 1, 0.5}]"), "List[0, 0.5, 1.]");
    }

    #[test]
    fn parts() {
        assert_eq!(ev("{10, 20, 30}[[2]]"), "20");
        assert_eq!(ev("{10, 20, 30}[[-1]]"), "30");
        assert_eq!(ev("{{1, 2}, {3, 4}}[[2, 1]]"), "3");
        assert!(Interpreter::new().eval_src("{1}[[5]]").is_err());
    }

    #[test]
    fn part_assignment_copies() {
        // a={1,2,3}; b=a; a[[3]]=-20 leaves b untouched (paper F5).
        assert_eq!(
            ev("a = {1, 2, 3}; b = a; a[[3]] = -20; {a, b}"),
            "List[List[1, 2, -20], List[1, 2, 3]]"
        );
    }

    #[test]
    fn functional_constructs() {
        assert_eq!(ev("Map[f, {1, 2}]"), "List[f[1], f[2]]");
        assert_eq!(ev("(#^2 &) /@ {1, 2, 3}"), "List[1, 4, 9]");
        assert_eq!(ev("Apply[Plus, {1, 2, 3}]"), "6");
        assert_eq!(ev("Fold[Plus, 0, {1, 2, 3}]"), "6");
        assert_eq!(ev("Fold[Plus, {1, 2, 3}]"), "6");
        assert_eq!(ev("FoldList[Plus, 0, {1, 2, 3}]"), "List[0, 1, 3, 6]");
        assert_eq!(ev("Nest[(# + 1 &), 0, 5]"), "5");
        assert_eq!(
            ev("NestList[(2 # &), 1, 3]".replace("2 #", "2*#").as_str()),
            "List[1, 2, 4, 8]"
        );
        assert_eq!(ev("Select[{1, 2, 3, 4}, EvenQ]"), "List[2, 4]");
        assert_eq!(ev("FixedPoint[Function[x, Floor[x/2]], 100]"), "0");
    }

    #[test]
    fn structure_ops() {
        assert_eq!(ev("Join[{1}, {2, 3}]"), "List[1, 2, 3]");
        assert_eq!(ev("Append[{1}, 2]"), "List[1, 2]");
        assert_eq!(ev("Prepend[{2}, 1]"), "List[1, 2]");
        assert_eq!(ev("First[{5, 6}]"), "5");
        assert_eq!(ev("Last[{5, 6}]"), "6");
        assert_eq!(ev("Rest[{5, 6, 7}]"), "List[6, 7]");
        assert_eq!(ev("Most[{5, 6, 7}]"), "List[5, 6]");
        assert_eq!(ev("Take[{1, 2, 3, 4}, 2]"), "List[1, 2]");
        assert_eq!(ev("Take[{1, 2, 3, 4}, -2]"), "List[3, 4]");
        assert_eq!(ev("Drop[{1, 2, 3, 4}, 1]"), "List[2, 3, 4]");
        assert_eq!(ev("Reverse[{1, 2, 3}]"), "List[3, 2, 1]");
        assert_eq!(ev("Flatten[{{1, {2}}, 3}]"), "List[1, 2, 3]");
        assert_eq!(ev("Length[{1, 2, 3}]"), "3");
        assert_eq!(ev("Dimensions[{{1, 2, 3}, {4, 5, 6}}]"), "List[2, 3]");
    }

    #[test]
    fn sorting() {
        assert_eq!(ev("Sort[{3, 1, 2}]"), "List[1, 2, 3]");
        assert_eq!(ev("Sort[{3, 1, 2}, Greater]"), "List[3, 2, 1]");
        assert_eq!(ev("Sort[{\"b\", \"a\"}]"), "List[\"a\", \"b\"]");
        // User comparator as a pure function (the QSort shape).
        assert_eq!(ev("Sort[{4, 1, 3}, (#1 < #2 &)]"), "List[1, 3, 4]");
    }

    #[test]
    fn totals() {
        assert_eq!(ev("Total[{1, 2, 3}]"), "6");
        assert_eq!(ev("Total[{{1, 2}, {3, 4}}]"), "List[4, 6]");
        assert_eq!(ev("Mean[{1, 2, 3, 4}]"), "2.5");
        assert_eq!(ev("Total[{}]"), "0");
    }

    #[test]
    fn dot_products() {
        assert_eq!(ev("Dot[{1, 2}, {3, 4}]"), "11");
        assert_eq!(
            ev("Dot[{{1, 2}, {3, 4}}, {{5, 6}, {7, 8}}]"),
            "List[List[19, 22], List[43, 50]]"
        );
        assert_eq!(ev("Dot[{{1, 0}, {0, 1}}, {5, 7}]"), "List[5, 7]");
        assert_eq!(ev("Dot[{1., 2.}, {3, 4}]"), "11.");
    }

    #[test]
    fn patterns_in_list_functions() {
        assert_eq!(ev("Count[{1, 2.0, 3}, _Integer]"), "2");
        assert_eq!(ev("MemberQ[{1, 2}, 2]"), "True");
        assert_eq!(ev("MemberQ[{1, 2}, _Real]"), "False");
        assert_eq!(ev("FreeQ[f[g[x]], g]"), "False");
        assert_eq!(ev("FreeQ[f[h[x]], g]"), "True");
    }

    #[test]
    fn misc() {
        assert_eq!(ev("ConstantArray[0, 3]"), "List[0, 0, 0]");
        assert_eq!(
            ev("ConstantArray[1, {2, 2}]"),
            "List[List[1, 1], List[1, 1]]"
        );
        assert_eq!(ev("IdentityMatrix[2]"), "List[List[1, 0], List[0, 1]]");
        assert_eq!(
            ev("Transpose[{{1, 2}, {3, 4}}]"),
            "List[List[1, 3], List[2, 4]]"
        );
    }

    #[test]
    fn iteration_variable_restored() {
        assert_eq!(ev("i = 99; Do[Null, {i, 3}]; i"), "99");
        assert_eq!(ev("Table[j, {j, 2}]; j"), "j");
    }
}
