//! Symbolic computation (F8): differentiation and rule application.
//!
//! `FindRoot` (§1, §2.1) "symbolically computes the derivative of the input
//! equation and uses Newton's method" — [`differentiate`] is that derivative
//! engine, shared by the interpreter builtin `D` and the compiler's
//! auto-differentiation extension point.

use crate::builtins::{attr, done, reg, BuiltinDef, INERT};
use crate::eval::{EvalError, Interpreter};
use std::collections::HashMap;
use wolfram_expr::{Expr, MatchCtx, Rule, Symbol};

pub(crate) fn register(m: &mut HashMap<&'static str, BuiltinDef>) {
    reg(m, "D", attr::none(), d_builtin);
    reg(m, "ReplaceAll", attr::none(), replace_all_builtin);
    reg(m, "ReplaceRepeated", attr::none(), replace_repeated_builtin);
    reg(m, "Head", attr::none(), |_, a, _| match a {
        [e] => done(e.head()),
        _ => INERT,
    });
    reg(m, "Rule", attr::none(), |_, _, _| INERT);
    reg(m, "RuleDelayed", attr::hold_rest(), |_, _, _| INERT);
    reg(m, "Blank", attr::none(), |_, _, _| INERT);
    reg(m, "BlankSequence", attr::none(), |_, _, _| INERT);
    reg(m, "BlankNullSequence", attr::none(), |_, _, _| INERT);
    reg(m, "Pattern", attr::hold_all(), |_, _, _| INERT);
    reg(m, "Condition", attr::hold_all(), |_, _, _| INERT);
    reg(m, "HoldPattern", attr::hold_all(), |_, _, _| INERT);
    reg(m, "Alternatives", attr::none(), |_, _, _| INERT);
    reg(m, "Typed", attr::hold_all(), |_, _, _| INERT);
    reg(m, "TypeSpecifier", attr::hold_all(), |_, _, _| INERT);
    reg(m, "Slot", attr::none(), |_, _, _| INERT);
    reg(m, "SlotSequence", attr::none(), |_, _, _| INERT);
    reg(m, "Sequence", attr::none(), |_, _, _| INERT);
    reg(m, "Expand", attr::none(), |_, _, _| INERT);
}

fn d_builtin(i: &mut Interpreter, args: &[Expr], depth: usize) -> Result<Option<Expr>, EvalError> {
    let [f, var] = args else { return INERT };
    let Some(x) = var.as_symbol() else {
        return INERT;
    };
    let raw = differentiate(f, &x);
    // Run the simplifying evaluator over the derivative.
    i.eval_depth(&raw, depth + 1).map(Some)
}

/// Symbolic partial derivative of `e` with respect to `x`.
///
/// The result is unsimplified; evaluating it through the interpreter folds
/// constants (the builtin `D` does this automatically).
///
/// # Examples
///
/// ```
/// use wolfram_interp::{symbolic::differentiate, Interpreter};
/// use wolfram_expr::{parse, Symbol};
/// let mut i = Interpreter::new();
/// let d = differentiate(&parse("Sin[x] + E^x").unwrap(), &Symbol::new("x"));
/// let simplified = i.eval(&d).unwrap();
/// assert_eq!(simplified.to_full_form(), "Plus[Cos[x], Power[E, x]]");
/// ```
pub fn differentiate(e: &Expr, x: &Symbol) -> Expr {
    use wolfram_expr::ExprKind;
    match e.kind() {
        ExprKind::Symbol(s) => {
            if s == x {
                Expr::int(1)
            } else {
                Expr::int(0)
            }
        }
        ExprKind::Normal(n) => {
            let head = n.head().as_symbol();
            let args = n.args();
            match (head.as_ref().map(Symbol::name), args.len()) {
                (Some("Plus"), _) => Expr::call(
                    "Plus",
                    args.iter().map(|a| differentiate(a, x)).collect::<Vec<_>>(),
                ),
                (Some("Subtract"), 2) => Expr::call(
                    "Subtract",
                    [differentiate(&args[0], x), differentiate(&args[1], x)],
                ),
                (Some("Times"), _) => {
                    // Product rule, n-ary.
                    let mut terms = Vec::new();
                    for (ix, _) in args.iter().enumerate() {
                        let factors: Vec<Expr> = args
                            .iter()
                            .enumerate()
                            .map(|(jx, a)| {
                                if ix == jx {
                                    differentiate(a, x)
                                } else {
                                    a.clone()
                                }
                            })
                            .collect();
                        terms.push(Expr::call("Times", factors));
                    }
                    Expr::call("Plus", terms)
                }
                (Some("Divide"), 2) => {
                    // (u/v)' = (u'v - uv') / v^2
                    let (u, v) = (&args[0], &args[1]);
                    Expr::call(
                        "Divide",
                        [
                            Expr::call(
                                "Subtract",
                                [
                                    Expr::call("Times", [differentiate(u, x), v.clone()]),
                                    Expr::call("Times", [u.clone(), differentiate(v, x)]),
                                ],
                            ),
                            Expr::call("Power", [v.clone(), Expr::int(2)]),
                        ],
                    )
                }
                (Some("Power"), 2) => {
                    let (base, exp) = (&args[0], &args[1]);
                    let base_free = !base.contains_symbol(x.name());
                    let exp_free = !exp.contains_symbol(x.name());
                    if base_free && exp_free {
                        Expr::int(0)
                    } else if exp_free {
                        // d(u^c) = c u^(c-1) u'
                        Expr::call(
                            "Times",
                            [
                                exp.clone(),
                                Expr::call(
                                    "Power",
                                    [
                                        base.clone(),
                                        Expr::call("Subtract", [exp.clone(), Expr::int(1)]),
                                    ],
                                ),
                                differentiate(base, x),
                            ],
                        )
                    } else if base_free {
                        // d(c^u) = c^u Log[c] u'
                        Expr::call(
                            "Times",
                            [
                                e.clone(),
                                Expr::call("Log", [base.clone()]),
                                differentiate(exp, x),
                            ],
                        )
                    } else {
                        // General case: d(u^v) = u^v (v' Log[u] + v u'/u)
                        Expr::call(
                            "Times",
                            [
                                e.clone(),
                                Expr::call(
                                    "Plus",
                                    [
                                        Expr::call(
                                            "Times",
                                            [
                                                differentiate(exp, x),
                                                Expr::call("Log", [base.clone()]),
                                            ],
                                        ),
                                        Expr::call(
                                            "Divide",
                                            [
                                                Expr::call(
                                                    "Times",
                                                    [exp.clone(), differentiate(base, x)],
                                                ),
                                                base.clone(),
                                            ],
                                        ),
                                    ],
                                ),
                            ],
                        )
                    }
                }
                (Some("Minus"), 1) => Expr::call("Minus", [differentiate(&args[0], x)]),
                (Some(name), 1) => {
                    // Chain rule for unary functions with known derivatives.
                    let u = &args[0];
                    let outer = match name {
                        "Sin" => Expr::call("Cos", [u.clone()]),
                        "Cos" => {
                            Expr::call("Times", [Expr::int(-1), Expr::call("Sin", [u.clone()])])
                        }
                        "Tan" => {
                            Expr::call("Power", [Expr::call("Cos", [u.clone()]), Expr::int(-2)])
                        }
                        "Exp" => Expr::call("Exp", [u.clone()]),
                        "Log" => Expr::call("Power", [u.clone(), Expr::int(-1)]),
                        "Sqrt" => Expr::call(
                            "Divide",
                            [
                                Expr::int(1),
                                Expr::call(
                                    "Times",
                                    [Expr::int(2), Expr::call("Sqrt", [u.clone()])],
                                ),
                            ],
                        ),
                        "ArcTan" => Expr::call(
                            "Power",
                            [
                                Expr::call(
                                    "Plus",
                                    [Expr::int(1), Expr::call("Power", [u.clone(), Expr::int(2)])],
                                ),
                                Expr::int(-1),
                            ],
                        ),
                        _ => {
                            // Unknown function: inert Derivative form.
                            return Expr::normal(
                                Expr::call("Derivative", [Expr::int(1)]),
                                vec![u.clone()],
                            );
                        }
                    };
                    Expr::call("Times", [outer, differentiate(u, x)])
                }
                _ => {
                    if e.contains_symbol(x.name()) {
                        Expr::call("D", [e.clone(), Expr::symbol(x.clone())])
                    } else {
                        Expr::int(0)
                    }
                }
            }
        }
        // Literals are constants.
        _ => Expr::int(0),
    }
}

fn replace_all_builtin(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let [subject, rules] = args else { return INERT };
    let Some(rules) = Rule::list_from_expr(rules) else {
        return INERT;
    };
    let replaced = {
        let mut cond = |c: &Expr| {
            i.eval_depth(c, depth + 1)
                .map(|r| r.is_true())
                .unwrap_or(false)
        };
        let mut ctx = MatchCtx {
            condition_eval: Some(&mut cond),
        };
        wolfram_expr::replace_all(subject, &rules, &mut ctx)
    };
    i.eval_depth(&replaced, depth + 1).map(Some)
}

fn replace_repeated_builtin(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    let [subject, rules] = args else { return INERT };
    let Some(rules) = Rule::list_from_expr(rules) else {
        return INERT;
    };
    let replaced = {
        let mut cond = |c: &Expr| {
            i.eval_depth(c, depth + 1)
                .map(|r| r.is_true())
                .unwrap_or(false)
        };
        let mut ctx = MatchCtx {
            condition_eval: Some(&mut cond),
        };
        wolfram_expr::replace_repeated(subject, &rules, &mut ctx)
    };
    i.eval_depth(&replaced, depth + 1).map(Some)
}

#[cfg(test)]
mod tests {
    use crate::eval::Interpreter;

    fn ev(src: &str) -> String {
        Interpreter::new().eval_src(src).unwrap().to_full_form()
    }

    #[test]
    fn derivatives() {
        assert_eq!(ev("D[x^2, x]"), "Times[2, x]");
        assert_eq!(ev("D[Sin[x], x]"), "Cos[x]");
        assert_eq!(ev("D[Sin[x] + E^x, x]"), "Plus[Cos[x], Power[E, x]]");
        assert_eq!(ev("D[c, x]"), "0");
        assert_eq!(ev("D[x, x]"), "1");
        assert_eq!(ev("D[Cos[x], x]"), "Times[-1, Sin[x]]");
        assert_eq!(ev("D[Log[x], x]"), "Power[x, -1]");
        assert_eq!(ev("D[3*x^2, x]"), "Times[6, x]");
    }

    #[test]
    fn chain_rule() {
        assert_eq!(ev("D[Sin[x^2], x]"), "Times[2, x, Cos[Power[x, 2]]]");
        assert_eq!(ev("D[Exp[2*x], x]"), "Times[2, Exp[Times[2, x]]]");
    }

    #[test]
    fn product_rule() {
        assert_eq!(ev("D[x*Sin[x], x]"), "Plus[Sin[x], Times[x, Cos[x]]]");
    }

    #[test]
    fn replace_all_evaluates() {
        assert_eq!(ev("(x^2 + x) /. x -> 3"), "12");
        assert_eq!(ev("f[a, b] /. f[p_, q_] -> {q, p}"), "List[b, a]");
    }

    #[test]
    fn replace_repeated_fixed_point() {
        assert_eq!(ev("f[f[f[x]]] //. f[a_] -> a"), "x");
    }

    #[test]
    fn symbolic_expressions_stay_inert() {
        // Sin[x] is a valid symbolic expression even when x is undefined.
        assert_eq!(ev("Sin[x]"), "Sin[x]");
        assert_eq!(ev("Head[Sin[x]]"), "Sin");
        assert_eq!(ev("Head[5]"), "Integer");
        assert_eq!(ev("Head[\"s\"]"), "String");
    }

    #[test]
    fn conditioned_rules_use_evaluator() {
        assert_eq!(ev("{1, -2, 3} /. (n_ /; n < 0) -> 0"), "List[1, 0, 3]");
    }
}
