//! The evaluator: infinite evaluation with Hold attributes, `OwnValues`,
//! `DownValues`, pure-function application, and abortability.

use crate::builtins;
use crate::env::{Attributes, Environment};
use std::collections::HashMap;
use std::rc::Rc;
use wolfram_expr::rules::{apply_bindings, substitute_symbols};
use wolfram_expr::{Bindings, Expr, ExprKind, MatchCtx, Symbol};
use wolfram_runtime::{AbortSignal, RuntimeError};

/// Internal evaluation signal: either a hard error or non-local control
/// flow (`Break`, `Continue`, `Return`, `Throw`).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A runtime error (aborts, limits, type errors, ...).
    Runtime(RuntimeError),
    /// `Break[]` unwinding to the innermost loop.
    BreakSignal,
    /// `Continue[]` unwinding to the innermost loop.
    ContinueSignal,
    /// `Return[e]` unwinding to the innermost function application.
    ReturnSignal(Expr),
    /// `Throw[e]` unwinding to the innermost `Catch`.
    ThrowSignal(Expr),
}

impl From<RuntimeError> for EvalError {
    fn from(e: RuntimeError) -> Self {
        EvalError::Runtime(e)
    }
}

impl EvalError {
    /// Converts stray control flow into hard errors at a boundary.
    pub fn into_runtime(self) -> RuntimeError {
        match self {
            EvalError::Runtime(e) => e,
            EvalError::BreakSignal => RuntimeError::Other("Break[] outside of a loop".into()),
            EvalError::ContinueSignal => RuntimeError::Other("Continue[] outside of a loop".into()),
            EvalError::ReturnSignal(_) => {
                RuntimeError::Other("Return[] outside of a function".into())
            }
            EvalError::ThrowSignal(_) => RuntimeError::Other("uncaught Throw[]".into()),
        }
    }
}

/// Result alias used throughout the evaluator.
pub type EvalResult = Result<Expr, EvalError>;

/// The Wolfram Engine interpreter.
pub struct Interpreter {
    /// The global definition store.
    pub env: Environment,
    abort: AbortSignal,
    /// Maximum evaluation recursion depth (`$RecursionLimit`).
    pub recursion_limit: usize,
    steps: u64,
    rng_state: u64,
    output: Vec<String>,
    /// Hook installed by the compiler package: given a univariate function
    /// body and its variable, return a fast native evaluator (used by
    /// `FindRoot` auto-compilation, §1). `None` falls back to substitution.
    pub auto_compile: Option<crate::findroot::AutoCompileHook>,
    /// How many times the auto-compilation hook produced compiled code.
    pub autocompile_hits: u64,
    /// Compiled functions installed into this engine (F1): looked up after
    /// builtins and before `DownValues`. The hook receives evaluated
    /// arguments and returns the boxed result.
    native_functions: HashMap<String, NativeHook>,
}

/// An installed compiled function (F1): receives evaluated arguments and
/// returns the boxed result.
pub type NativeHook = Rc<dyn Fn(&mut Interpreter, &[Expr]) -> Result<Expr, RuntimeError>>;

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// A fresh interpreter with default limits and a private abort signal.
    pub fn new() -> Self {
        Interpreter {
            env: Environment::new(),
            abort: AbortSignal::new(),
            recursion_limit: 1024,
            steps: 0,
            rng_state: 0x9E3779B97F4A7C15,
            output: Vec::new(),
            auto_compile: None,
            autocompile_hits: 0,
            native_functions: HashMap::new(),
        }
    }

    /// A fresh interpreter sharing `abort`.
    pub fn with_abort(abort: AbortSignal) -> Self {
        let mut i = Self::new();
        i.abort = abort;
        i
    }

    /// The abort signal checked during evaluation.
    pub fn abort_signal(&self) -> &AbortSignal {
        &self.abort
    }

    /// Seeds the deterministic RNG (`SeedRandom`).
    pub fn seed_random(&mut self, seed: u64) {
        self.rng_state = seed | 1;
    }

    /// Next raw 64 random bits (xoshiro-style splitmix; deterministic,
    /// dependency-free).
    pub fn next_random_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform real in `[0, 1)`.
    pub fn next_random_f64(&mut self) -> f64 {
        (self.next_random_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Takes accumulated `Print` output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Appends a line of `Print` output.
    pub fn push_output(&mut self, line: String) {
        self.output.push(line);
    }

    /// Evaluates an expression to its fixed point.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on aborts, recursion-limit overruns, and
    /// hard errors; stray control flow (`Break` outside a loop, ...) is
    /// also an error.
    pub fn eval(&mut self, e: &Expr) -> Result<Expr, RuntimeError> {
        self.eval_depth(e, 0).map_err(EvalError::into_runtime)
    }

    /// Parses and evaluates source text, returning the last result.
    ///
    /// # Errors
    ///
    /// Parse errors are reported as [`RuntimeError::Other`]; evaluation
    /// errors as in [`Interpreter::eval`].
    pub fn eval_src(&mut self, src: &str) -> Result<Expr, RuntimeError> {
        let exprs = wolfram_expr::parse_all(src)
            .map_err(|e| RuntimeError::Other(format!("parse error: {e}")))?;
        let mut last = Expr::null();
        for e in &exprs {
            last = self.eval(e)?;
        }
        Ok(last)
    }

    /// The depth-tracked evaluator used by builtins.
    pub fn eval_depth(&mut self, e: &Expr, depth: usize) -> EvalResult {
        self.steps += 1;
        if self.steps & 0xFF == 0 {
            self.abort.check()?;
        }
        if depth > self.recursion_limit {
            return Err(RuntimeError::RecursionLimit(self.recursion_limit).into());
        }
        match e.kind() {
            ExprKind::Symbol(s) => match self.env.own_value(s) {
                // Infinite evaluation: keep chasing until a fixed point.
                Some(v) => {
                    let v = v.clone();
                    if v.as_symbol().as_ref() == Some(s) {
                        return Ok(v);
                    }
                    self.eval_depth(&v, depth + 1)
                }
                None => Ok(e.clone()),
            },
            ExprKind::Normal(_) => self.eval_normal(e, depth),
            _ => Ok(e.clone()),
        }
    }

    /// Attributes seen by the evaluator: builtins take precedence, then the
    /// environment's user-set attributes.
    pub fn attributes_of(&self, s: &Symbol) -> Attributes {
        match builtins::builtin(s.name()) {
            Some(def) => def.attrs,
            None => self.env.attributes(s),
        }
    }

    fn eval_normal(&mut self, e: &Expr, depth: usize) -> EvalResult {
        let n = e.as_normal().expect("eval_normal on atom");
        let head = self.eval_depth(n.head(), depth + 1)?;
        let head_sym = head.as_symbol();
        let attrs = head_sym
            .as_ref()
            .map(|s| self.attributes_of(s))
            .unwrap_or_default();

        // Evaluate arguments per hold attributes, splicing Sequence.
        let mut args = Vec::with_capacity(n.args().len());
        for (i, a) in n.args().iter().enumerate() {
            let v = if attrs.holds_arg(i) {
                a.clone()
            } else {
                self.eval_depth(a, depth + 1)?
            };
            if v.has_head("Sequence") {
                args.extend(v.args().iter().cloned());
            } else {
                args.push(v);
            }
        }

        // Listable threading.
        if attrs.listable && args.iter().any(|a| a.has_head("List")) {
            return self.thread_listable(&head, &args, depth);
        }

        if let Some(s) = &head_sym {
            // Builtin dispatch.
            if let Some(def) = builtins::builtin(s.name()) {
                if let Some(result) = (def.run)(self, &args, depth)? {
                    return Ok(result);
                }
            }
            // Installed compiled functions (F1): called like any other
            // Wolfram function.
            if let Some(hook) = self.native_functions.get(s.name()).cloned() {
                return hook(self, &args).map_err(EvalError::Runtime);
            }
            // DownValues dispatch.
            let rules = self.env.down_values(s).to_vec();
            if !rules.is_empty() {
                let cur = Expr::normal(head.clone(), args.clone());
                for rule in &rules {
                    let mut bindings = Bindings::new();
                    let matched = {
                        let mut cond = |c: &Expr| {
                            self.eval_depth(c, depth + 1)
                                .map(|r| r.is_true())
                                .unwrap_or(false)
                        };
                        let mut ctx = MatchCtx {
                            condition_eval: Some(&mut cond),
                        };
                        wolfram_expr::match_pattern(&cur, &rule.lhs, &mut bindings, &mut ctx)
                    };
                    if matched {
                        let rhs = apply_bindings(&rule.rhs, &bindings);
                        return self.eval_depth(&rhs, depth + 1);
                    }
                }
            }
        }

        // Pure/parametrized function application.
        if head.has_head("Function") {
            return self.apply_function(&head, &args, depth);
        }

        Ok(Expr::normal(head, args))
    }

    fn thread_listable(&mut self, head: &Expr, args: &[Expr], depth: usize) -> EvalResult {
        let mut len: Option<usize> = None;
        for a in args {
            if a.has_head("List") {
                match len {
                    None => len = Some(a.length()),
                    Some(l) if l == a.length() => {}
                    Some(_) => {
                        return Err(RuntimeError::Other(format!(
                            "objects of unequal length cannot be threaded over {}",
                            head.to_input_form()
                        ))
                        .into())
                    }
                }
            }
        }
        let len = len.expect("thread_listable requires a list argument");
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let element_args: Vec<Expr> = args
                .iter()
                .map(|a| {
                    if a.has_head("List") {
                        a.args()[i].clone()
                    } else {
                        a.clone()
                    }
                })
                .collect();
            out.push(self.eval_depth(&Expr::normal(head.clone(), element_args), depth + 1)?);
        }
        Ok(Expr::list(out))
    }

    /// Installs a compiled function under `name` (the compiled code's
    /// seamless interpreter integration, F1). Subsequent evaluations of
    /// `name[args...]` call the hook with evaluated arguments.
    pub fn register_native(&mut self, name: &str, hook: NativeHook) {
        self.native_functions.insert(name.to_owned(), hook);
    }

    /// Removes an installed compiled function.
    pub fn unregister_native(&mut self, name: &str) {
        self.native_functions.remove(name);
    }

    /// Applies a `Function[...]` head to evaluated arguments.
    pub fn apply_function(&mut self, f: &Expr, args: &[Expr], depth: usize) -> EvalResult {
        let fargs = f.args();
        let body_subst = match fargs.len() {
            // Function[body]: slot form.
            1 => substitute_slots(&fargs[0], args),
            // Function[params, body] (+ optional attributes, ignored here).
            _ => {
                let params = &fargs[0];
                let body = &fargs[1];
                let names: Vec<Symbol> = if params.has_head("List") {
                    params.args().iter().filter_map(param_symbol).collect()
                } else {
                    param_symbol(params).into_iter().collect()
                };
                let expected = if params.has_head("List") {
                    params.length()
                } else {
                    1
                };
                if names.len() != expected {
                    return Err(RuntimeError::Type(format!(
                        "invalid Function parameter list {}",
                        params.to_input_form()
                    ))
                    .into());
                }
                if args.len() < names.len() {
                    return Err(RuntimeError::Type(format!(
                        "Function expected {} arguments, got {}",
                        names.len(),
                        args.len()
                    ))
                    .into());
                }
                let map: HashMap<Symbol, Expr> =
                    names.into_iter().zip(args.iter().cloned()).collect();
                substitute_symbols(body, &map)
            }
        };
        match self.eval_depth(&body_subst, depth + 1) {
            Err(EvalError::ReturnSignal(v)) => Ok(v),
            other => other,
        }
    }
}

/// Extracts the parameter symbol from a plain symbol or `Typed[sym, ty]`.
fn param_symbol(p: &Expr) -> Option<Symbol> {
    if let Some(s) = p.as_symbol() {
        return Some(s);
    }
    if p.has_head("Typed") {
        return p.args().first().and_then(Expr::as_symbol);
    }
    None
}

/// Substitutes `Slot[n]`/`SlotSequence` in a slot-form function body,
/// stopping at nested slot-form (`Function[body]`) functions.
fn substitute_slots(body: &Expr, args: &[Expr]) -> Expr {
    match body.kind() {
        ExprKind::Normal(n) => {
            if n.head().is_symbol("Slot") {
                if let Some(ix) = n.args().first().and_then(Expr::as_i64) {
                    if ix >= 1 && (ix as usize) <= args.len() {
                        return args[ix as usize - 1].clone();
                    }
                }
                return body.clone();
            }
            if n.head().is_symbol("SlotSequence") {
                return Expr::call("Sequence", args.to_vec());
            }
            // Nested slot-form functions own their slots.
            if n.head().is_symbol("Function") && n.args().len() == 1 {
                return body.clone();
            }
            let head = substitute_slots(n.head(), args);
            let new_args: Vec<Expr> = n.args().iter().map(|a| substitute_slots(a, args)).collect();
            Expr::normal(head, new_args)
        }
        _ => body.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str) -> String {
        Interpreter::new().eval_src(src).unwrap().to_full_form()
    }

    #[test]
    fn infinite_evaluation_fixed_point() {
        // The paper's example: y=x; x=1; y evaluates to 1.
        assert_eq!(ev("y = x; x = 1; y"), "1");
    }

    #[test]
    fn self_reference_hits_recursion_limit() {
        // x = x + 1 with undefined x rewrites forever (§2.1).
        let mut i = Interpreter::new();
        i.recursion_limit = 128;
        let err = i.eval_src("x = x + 1; x").unwrap_err();
        assert!(
            matches!(err, RuntimeError::RecursionLimit(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn pure_functions() {
        assert_eq!(ev("(# + 1 &)[41]"), "42");
        assert_eq!(ev("(#1 * #2 &)[6, 7]"), "42");
        assert_eq!(ev("Function[{x, y}, x - y][10, 4]"), "6");
        assert_eq!(ev("Function[x, x^2][5]"), "25");
    }

    #[test]
    fn nested_slot_functions_do_not_leak() {
        // The inner # belongs to the inner function.
        assert_eq!(ev("Function[(#&)][9]"), "Function[Slot[1]]");
    }

    #[test]
    fn down_values_dispatch_by_specificity() {
        assert_eq!(
            ev("f[0] = zero; f[x_] := general[x]; {f[0], f[3]}"),
            "List[zero, general[3]]"
        );
    }

    #[test]
    fn fib_via_downvalues() {
        let src = "fib[0] = 0; fib[1] = 1; fib[n_] := fib[n-1] + fib[n-2]; fib[20]";
        assert_eq!(ev(src), "6765");
    }

    #[test]
    fn fib_via_function_binding() {
        // The paper's §2.1 definition.
        let src = "fib = Function[{n}, If[n < 1, 1, fib[n-1] + fib[n-2]]]; fib[10]";
        assert_eq!(ev(src), "144");
    }

    #[test]
    fn listable_threading() {
        assert_eq!(ev("{1, 2} + {10, 20}"), "List[11, 22]");
        assert_eq!(ev("{1, 2, 3} * 2"), "List[2, 4, 6]");
        assert!(Interpreter::new().eval_src("{1, 2} + {1, 2, 3}").is_err());
    }

    #[test]
    fn abort_signal_aborts() {
        let mut i = Interpreter::new();
        i.abort_signal().trigger();
        let err = i.eval_src("While[True, 0]").unwrap_err();
        assert_eq!(err, RuntimeError::Aborted);
    }

    #[test]
    fn symbols_are_mutable_expressions_not() {
        assert_eq!(ev("a = \"foo\"; a = \"bar\"; a"), "\"bar\"");
    }

    #[test]
    fn sequences_splice_into_calls() {
        assert_eq!(ev("f[Sequence[1, 2], 3]"), "f[1, 2, 3]");
    }

    #[test]
    fn deterministic_rng() {
        let mut a = Interpreter::new();
        let mut b = Interpreter::new();
        a.seed_random(7);
        b.seed_random(7);
        for _ in 0..10 {
            assert_eq!(a.next_random_u64(), b.next_random_u64());
        }
        let x = a.next_random_f64();
        assert!((0.0..1.0).contains(&x));
    }
}
