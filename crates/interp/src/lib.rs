//! The "Wolfram Engine" interpreter substrate (§2.1).
//!
//! A tree-walking evaluator implementing the language semantics the
//! compiler must preserve:
//!
//! - **Infinite evaluation** to a fixed point (`y = x; x = 1; y` gives `1`),
//!   bounded by recursion/iteration limits.
//! - **Hold attributes** and `OwnValues`/`DownValues` rewriting.
//! - **Scoping constructs** `Module`, `Block`, `With` with their distinct
//!   semantics (§4.2 binding analysis mirrors these).
//! - **Mutability semantics** (F5): expressions are immutable, symbols are
//!   mutable, `Part` assignment copies on write.
//! - **Abortable evaluation** (F3) via [`wolfram_runtime::AbortSignal`].
//! - **Arbitrary-precision fallback** (F2): machine overflow promotes to
//!   bignum arithmetic instead of failing.
//! - **Symbolic computation** (F8): `D`, rule rewriting, and the
//!   symbolic-derivative-powered `FindRoot` with its auto-compilation hook.
//!
//! # Examples
//!
//! ```
//! use wolfram_interp::Interpreter;
//! let mut i = Interpreter::new();
//! assert_eq!(i.eval_src("Total[Table[k^2, {k, 1, 10}]]").unwrap().as_i64(), Some(385));
//! ```

pub mod builtins;
pub mod env;
pub mod eval;
pub mod findroot;
pub mod numeric;
pub mod symbolic;

pub use env::{Attributes, Environment};
pub use eval::{EvalError, Interpreter};
pub use findroot::AutoCompileHook;
