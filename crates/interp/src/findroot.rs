//! `FindRoot`: Newton's method with a symbolically computed derivative, and
//! the *auto-compilation* hook (§1, §2.2).
//!
//! "Numeric functions such as `FindRoot[Sin[x] + E^x, x, 0]` automatically
//! invoke the ... compiler to compile the input equation ... along with its
//! derivative. The ... compiled version of these functions are then
//! internally used by these numerical methods."
//!
//! The interpreter itself evaluates the objective by substitution; the
//! compiler package installs [`AutoCompileHook`] to replace that with
//! compiled native evaluators — the 1.6× speedup measured in the paper's
//! introduction comes exactly from this swap.

use crate::builtins::arithmetic::numericize;
use crate::builtins::{attr, done, reg, type_err, BuiltinDef, INERT};
use crate::eval::{EvalError, Interpreter};
use crate::symbolic::differentiate;
use std::collections::HashMap;
use std::rc::Rc;
use wolfram_expr::{Expr, Symbol};
use wolfram_runtime::RuntimeError;

/// A compiled univariate real function produced by the auto-compilation
/// hook.
pub type CompiledUnary = Rc<dyn Fn(f64) -> Result<f64, RuntimeError>>;

/// Hook installed by the compiler package: asked to compile `body` as a
/// function of `var`. Returning `None` keeps interpreted evaluation.
pub type AutoCompileHook = Rc<dyn Fn(&Expr, &Symbol) -> Option<CompiledUnary>>;

pub(crate) fn register(m: &mut HashMap<&'static str, BuiltinDef>) {
    reg(m, "FindRoot", attr::hold_all(), find_root_builtin);
}

fn find_root_builtin(
    i: &mut Interpreter,
    args: &[Expr],
    depth: usize,
) -> Result<Option<Expr>, EvalError> {
    // Forms: FindRoot[f, {x, x0}] and the paper's FindRoot[f, x, 0].
    let (f, var, x0) = match args {
        [f, spec] if spec.has_head("List") && spec.length() == 2 => {
            let Some(var) = spec.args()[0].as_symbol() else {
                return type_err("FindRoot variable must be a symbol");
            };
            (f, var, spec.args()[1].clone())
        }
        [f, v, x0] => {
            let Some(var) = v.as_symbol() else {
                return type_err("FindRoot variable must be a symbol");
            };
            (f, var, x0.clone())
        }
        _ => return INERT,
    };
    // Equations `lhs == rhs` become `lhs - rhs`.
    let objective = if f.has_head("Equal") && f.length() == 2 {
        Expr::call("Subtract", [f.args()[0].clone(), f.args()[1].clone()])
    } else {
        f.clone()
    };
    let x0 = i.eval_depth(&Expr::call("N", [x0]), depth + 1)?;
    let Some(x0) = x0.as_f64() else {
        return type_err("FindRoot starting point must be numeric");
    };
    let root = newton(i, &objective, &var, x0, depth)?;
    done(Expr::list([Expr::call(
        "Rule",
        [Expr::symbol(var), Expr::real(root)],
    )]))
}

/// Newton iteration shared by the builtin and the benchmark harness.
pub(crate) fn newton(
    i: &mut Interpreter,
    objective: &Expr,
    var: &Symbol,
    mut x: f64,
    depth: usize,
) -> Result<f64, EvalError> {
    let derivative_expr = i.eval_depth(&differentiate(objective, var), depth + 1)?;

    // Auto-compilation: ask the installed hook for native evaluators of the
    // objective and its symbolic derivative.
    let compiled = i.auto_compile.clone().and_then(|hook| {
        let f = hook(objective, var)?;
        let df = hook(&derivative_expr, var)?;
        Some((f, df))
    });
    if compiled.is_some() {
        i.autocompile_hits += 1;
    }

    let eval_at = |i: &mut Interpreter, e: &Expr, x: f64| -> Result<f64, EvalError> {
        let mut map = HashMap::new();
        map.insert(var.clone(), Expr::real(x));
        let substituted = wolfram_expr::rules::substitute_symbols(e, &map);
        let v = i.eval_depth(&numericize(&substituted), depth + 1)?;
        v.as_f64().ok_or_else(|| {
            EvalError::Runtime(RuntimeError::Type(format!(
                "FindRoot objective did not evaluate numerically at {x}"
            )))
        })
    };

    const MAX_ITER: usize = 100;
    const TOL: f64 = 1e-12;
    for _ in 0..MAX_ITER {
        let (fx, dfx) = match &compiled {
            Some((f, df)) => (
                f(x).map_err(EvalError::Runtime)?,
                df(x).map_err(EvalError::Runtime)?,
            ),
            None => (eval_at(i, objective, x)?, eval_at(i, &derivative_expr, x)?),
        };
        if fx.abs() < TOL {
            return Ok(x);
        }
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(RuntimeError::Other("FindRoot: zero derivative".into()).into());
        }
        let next = x - fx / dfx;
        if !next.is_finite() {
            return Err(RuntimeError::Other("FindRoot diverged".into()).into());
        }
        if (next - x).abs() < TOL * (1.0 + x.abs()) {
            return Ok(next);
        }
        x = next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Interpreter;

    #[test]
    fn paper_example_sin_plus_exp() {
        // FindRoot[Sin[x] + E^x, {x, 0}] ~ -0.588533 (§2.1).
        let mut i = Interpreter::new();
        let out = i.eval_src("FindRoot[Sin[x] + E^x, {x, 0}]").unwrap();
        assert!(out.has_head("List"));
        let rule = &out.args()[0];
        assert!(rule.has_head("Rule"));
        let root = rule.args()[1].as_f64().unwrap();
        assert!((root - (-0.5885327439818611)).abs() < 1e-8, "root {root}");
    }

    #[test]
    fn three_argument_form() {
        // The paper writes FindRoot[Sin[x] + E^x, x, 0].
        let mut i = Interpreter::new();
        let out = i.eval_src("FindRoot[Sin[x] + E^x, x, 0]").unwrap();
        let root = out.args()[0].args()[1].as_f64().unwrap();
        assert!((root - (-0.5885327439818611)).abs() < 1e-8);
    }

    #[test]
    fn equations_accepted() {
        let mut i = Interpreter::new();
        let out = i.eval_src("FindRoot[x^2 == 2, {x, 1}]").unwrap();
        let root = out.args()[0].args()[1].as_f64().unwrap();
        assert!((root - 2.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn auto_compile_hook_is_used() {
        let mut i = Interpreter::new();
        // A fake "compiler" that handles any objective natively: proves the
        // hook path is exercised end to end.
        let hook: AutoCompileHook = Rc::new(|body, var| {
            // Only handle x^2 - 2 and its derivative 2 x, our test inputs.
            let src = body.to_full_form();
            let v = var.name().to_owned();
            if src == format!("Plus[-2, Power[{v}, 2]]")
                || src == format!("Subtract[Power[{v}, 2], 2]")
            {
                Some(Rc::new(|x: f64| Ok(x * x - 2.0)) as super::CompiledUnary)
            } else if src == format!("Times[2, {v}]") {
                Some(Rc::new(|x: f64| Ok(2.0 * x)) as super::CompiledUnary)
            } else {
                None
            }
        });
        i.auto_compile = Some(hook);
        let out = i.eval_src("FindRoot[x^2 - 2, {x, 1}]").unwrap();
        let root = out.args()[0].args()[1].as_f64().unwrap();
        assert!((root - 2.0f64.sqrt()).abs() < 1e-10);
        assert_eq!(i.autocompile_hits, 1);
    }
}
