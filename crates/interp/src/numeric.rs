//! The interpreter's numeric tower: machine integer -> bignum -> real ->
//! complex, with automatic promotion.
//!
//! Machine-integer overflow *promotes to arbitrary precision* instead of
//! failing — this is the interpreter behavior the compiled code's soft
//! failure mode (F2) falls back to.

use std::cmp::Ordering;
use wolfram_expr::{BigInt, Expr, ExprKind};

/// A number in the interpreter's tower.
#[derive(Debug, Clone, PartialEq)]
pub enum Num {
    /// Machine integer.
    Int(i64),
    /// Arbitrary-precision integer.
    Big(BigInt),
    /// Machine real.
    Real(f64),
    /// Machine complex.
    Complex(f64, f64),
}

impl Num {
    /// Extracts a number from a literal expression.
    pub fn from_expr(e: &Expr) -> Option<Num> {
        match e.kind() {
            ExprKind::Integer(v) => Some(Num::Int(*v)),
            ExprKind::BigInteger(b) => Some(Num::Big((**b).clone())),
            ExprKind::Real(v) => Some(Num::Real(*v)),
            ExprKind::Complex(re, im) => Some(Num::Complex(*re, *im)),
            _ => None,
        }
    }

    /// Converts back to an expression, demoting bignums that fit and
    /// complex numbers with zero imaginary part arising from real math.
    pub fn into_expr(self) -> Expr {
        match self {
            Num::Int(v) => Expr::int(v),
            Num::Big(b) => Expr::big(b),
            Num::Real(v) => Expr::real(v),
            Num::Complex(re, im) => {
                if im == 0.0 {
                    Expr::real(re)
                } else {
                    Expr::complex(re, im)
                }
            }
        }
    }

    /// Real-part approximation.
    pub fn to_f64(&self) -> f64 {
        match self {
            Num::Int(v) => *v as f64,
            Num::Big(b) => b.to_f64(),
            Num::Real(v) => *v,
            Num::Complex(re, _) => *re,
        }
    }

    /// As a complex pair.
    pub fn to_complex(&self) -> (f64, f64) {
        match self {
            Num::Complex(re, im) => (*re, *im),
            other => (other.to_f64(), 0.0),
        }
    }

    /// Whether this is an (arbitrary-size) integer.
    pub fn is_integer(&self) -> bool {
        matches!(self, Num::Int(_) | Num::Big(_))
    }

    fn big(&self) -> BigInt {
        match self {
            Num::Int(v) => BigInt::from(*v),
            Num::Big(b) => b.clone(),
            _ => unreachable!("big() on non-integer"),
        }
    }

    /// Is exactly zero.
    pub fn is_zero(&self) -> bool {
        match self {
            Num::Int(v) => *v == 0,
            Num::Big(b) => b.is_zero(),
            Num::Real(v) => *v == 0.0,
            Num::Complex(re, im) => *re == 0.0 && *im == 0.0,
        }
    }

    /// Is exactly one.
    pub fn is_one(&self) -> bool {
        match self {
            Num::Int(v) => *v == 1,
            Num::Real(v) => *v == 1.0,
            _ => false,
        }
    }

    /// Addition with automatic promotion (overflow -> bignum).
    pub fn add(&self, rhs: &Num) -> Num {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => match a.checked_add(*b) {
                Some(v) => Num::Int(v),
                None => Num::Big(&BigInt::from(*a) + &BigInt::from(*b)).normalize(),
            },
            (a, b) if a.is_integer() && b.is_integer() => Num::Big(&a.big() + &b.big()).normalize(),
            (Num::Complex(..), _) | (_, Num::Complex(..)) => {
                let (ar, ai) = self.to_complex();
                let (br, bi) = rhs.to_complex();
                Num::Complex(ar + br, ai + bi)
            }
            _ => Num::Real(self.to_f64() + rhs.to_f64()),
        }
    }

    /// Subtraction with automatic promotion.
    pub fn sub(&self, rhs: &Num) -> Num {
        self.add(&rhs.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Num {
        match self {
            Num::Int(v) => match v.checked_neg() {
                Some(n) => Num::Int(n),
                None => Num::Big(BigInt::from(*v).neg()),
            },
            Num::Big(b) => Num::Big(b.neg()).normalize(),
            Num::Real(v) => Num::Real(-v),
            Num::Complex(re, im) => Num::Complex(-re, -im),
        }
    }

    /// Multiplication with automatic promotion.
    pub fn mul(&self, rhs: &Num) -> Num {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => match a.checked_mul(*b) {
                Some(v) => Num::Int(v),
                None => Num::Big(&BigInt::from(*a) * &BigInt::from(*b)).normalize(),
            },
            (a, b) if a.is_integer() && b.is_integer() => Num::Big(&a.big() * &b.big()).normalize(),
            (Num::Complex(..), _) | (_, Num::Complex(..)) => {
                let (ar, ai) = self.to_complex();
                let (br, bi) = rhs.to_complex();
                Num::Complex(ar * br - ai * bi, ar * bi + ai * br)
            }
            _ => Num::Real(self.to_f64() * rhs.to_f64()),
        }
    }

    /// Division. Integer division yields an integer when exact, otherwise a
    /// real (this reproduction has no `Rational`; see DESIGN.md §6).
    /// Division by exact zero yields `None` (the caller decides whether
    /// that is `Indeterminate` or an error).
    pub fn div(&self, rhs: &Num) -> Option<Num> {
        if rhs.is_zero() {
            return None;
        }
        Some(match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => {
                if a % b == 0 {
                    Num::Int(a / b)
                } else {
                    Num::Real(*a as f64 / *b as f64)
                }
            }
            (Num::Complex(..), _) | (_, Num::Complex(..)) => {
                let (ar, ai) = self.to_complex();
                let (br, bi) = rhs.to_complex();
                let d = br * br + bi * bi;
                Num::Complex((ar * br + ai * bi) / d, (ai * br - ar * bi) / d)
            }
            _ => Num::Real(self.to_f64() / rhs.to_f64()),
        })
    }

    /// Exponentiation: integer bases with non-negative integer exponents
    /// stay exact (promoting to bignum), everything else goes through
    /// floating point (complex via repeated multiplication for integer
    /// exponents, polar form otherwise).
    pub fn pow(&self, rhs: &Num) -> Num {
        match (self, rhs) {
            (a, Num::Int(e)) if a.is_integer() && *e >= 0 => {
                if let (Num::Int(base), true) = (a, *e <= u32::MAX as i64) {
                    if let Some(v) = base.checked_pow(*e as u32) {
                        return Num::Int(v);
                    }
                }
                Num::Big(a.big().pow(*e as u32)).normalize()
            }
            (Num::Complex(..), Num::Int(e)) => {
                let mut acc = (1.0f64, 0.0f64);
                let (br, bi) = self.to_complex();
                for _ in 0..e.unsigned_abs() {
                    acc = (acc.0 * br - acc.1 * bi, acc.0 * bi + acc.1 * br);
                }
                if *e < 0 {
                    let d = acc.0 * acc.0 + acc.1 * acc.1;
                    acc = (acc.0 / d, -acc.1 / d);
                }
                Num::Complex(acc.0, acc.1)
            }
            (Num::Complex(..), _) | (_, Num::Complex(..)) => {
                // Principal value via polar form.
                let (br, bi) = self.to_complex();
                let (er, ei) = rhs.to_complex();
                let r = br.hypot(bi);
                let theta = bi.atan2(br);
                let ln_r = r.ln();
                let new_ln_r = er * ln_r - ei * theta;
                let new_theta = er * theta + ei * ln_r;
                let mag = new_ln_r.exp();
                Num::Complex(mag * new_theta.cos(), mag * new_theta.sin())
            }
            _ => Num::Real(self.to_f64().powf(rhs.to_f64())),
        }
    }

    /// Numeric comparison. Complex numbers are unordered (`None`) unless
    /// equal.
    pub fn compare(&self, rhs: &Num) -> Option<Ordering> {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => Some(a.cmp(b)),
            (a, b) if a.is_integer() && b.is_integer() => Some(a.big().cmp(&b.big())),
            (Num::Complex(ar, ai), _) => {
                let (br, bi) = rhs.to_complex();
                (*ar == br && *ai == bi).then_some(Ordering::Equal)
            }
            (_, Num::Complex(br, bi)) => {
                let (ar, ai) = self.to_complex();
                (ar == *br && ai == *bi).then_some(Ordering::Equal)
            }
            _ => self.to_f64().partial_cmp(&rhs.to_f64()),
        }
    }

    /// Demotes a bignum back to machine range when it fits.
    fn normalize(self) -> Num {
        match self {
            Num::Big(b) => match b.to_i64() {
                Some(v) => Num::Int(v),
                None => Num::Big(b),
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_promotes() {
        let a = Num::Int(i64::MAX);
        let sum = a.add(&Num::Int(1));
        assert!(matches!(sum, Num::Big(_)));
        assert_eq!(sum.into_expr().to_full_form(), "9223372036854775808");
        let prod = Num::Int(i64::MAX).mul(&Num::Int(2));
        assert!(matches!(prod, Num::Big(_)));
    }

    #[test]
    fn big_demotes_when_small() {
        let big = Num::Big(BigInt::from(1i64 << 40));
        let zero = Num::Int(0);
        assert_eq!(big.add(&zero), Num::Int(1 << 40));
    }

    #[test]
    fn mixed_promotion() {
        assert_eq!(Num::Int(1).add(&Num::Real(0.5)), Num::Real(1.5));
        assert_eq!(
            Num::Int(2).mul(&Num::Complex(0.0, 1.0)),
            Num::Complex(0.0, 2.0)
        );
    }

    #[test]
    fn division_rules() {
        assert_eq!(Num::Int(6).div(&Num::Int(3)), Some(Num::Int(2)));
        assert_eq!(Num::Int(7).div(&Num::Int(2)), Some(Num::Real(3.5)));
        assert_eq!(Num::Int(1).div(&Num::Int(0)), None);
        let z = Num::Complex(1.0, 0.0).div(&Num::Complex(0.0, 1.0)).unwrap();
        assert_eq!(z, Num::Complex(0.0, -1.0));
    }

    #[test]
    fn powers() {
        assert_eq!(Num::Int(2).pow(&Num::Int(10)), Num::Int(1024));
        assert!(matches!(Num::Int(10).pow(&Num::Int(30)), Num::Big(_)));
        assert_eq!(Num::Real(4.0).pow(&Num::Real(0.5)), Num::Real(2.0));
        // i^2 = -1
        assert_eq!(
            Num::Complex(0.0, 1.0).pow(&Num::Int(2)),
            Num::Complex(-1.0, 0.0)
        );
        // Negative integer exponent on integer base -> real.
        assert_eq!(Num::Int(2).pow(&Num::Int(-1)), Num::Real(0.5));
    }

    #[test]
    fn comparisons() {
        use Ordering::*;
        assert_eq!(Num::Int(1).compare(&Num::Int(2)), Some(Less));
        assert_eq!(Num::Real(2.0).compare(&Num::Int(2)), Some(Equal));
        assert_eq!(Num::Complex(1.0, 1.0).compare(&Num::Int(1)), None);
        assert_eq!(Num::Complex(2.0, 0.0).compare(&Num::Int(2)), Some(Equal));
        let big = Num::Int(i64::MAX).add(&Num::Int(1));
        assert_eq!(big.compare(&Num::Int(5)), Some(Greater));
    }

    #[test]
    fn expr_roundtrip() {
        for src in ["5", "-3", "2.5", "Complex[1., 2.]"] {
            let e = wolfram_expr::parse(src).unwrap();
            // Complex literal parses as a normal expr; build the atom here.
            let e = if src.starts_with("Complex") {
                Expr::complex(1.0, 2.0)
            } else {
                e
            };
            let n = Num::from_expr(&e).unwrap();
            assert_eq!(n.into_expr(), e);
        }
    }
}
