//! The interpreter's global environment: `OwnValues`, `DownValues`, and
//! symbol attributes.

use std::collections::HashMap;
use wolfram_expr::pattern::compare_specificity;
use wolfram_expr::{Expr, Rule, Symbol};

/// Evaluation-control attributes of a symbol (the subset the evaluator
/// honors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attributes {
    /// Hold all arguments unevaluated.
    pub hold_all: bool,
    /// Hold the first argument unevaluated.
    pub hold_first: bool,
    /// Hold all but the first argument unevaluated.
    pub hold_rest: bool,
    /// Thread automatically over lists.
    pub listable: bool,
    /// Definitions may not be changed.
    pub protected: bool,
}

impl Attributes {
    /// No attributes.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether argument `index` (0-based) should be held.
    pub fn holds_arg(&self, index: usize) -> bool {
        self.hold_all || (self.hold_first && index == 0) || (self.hold_rest && index > 0)
    }
}

/// A symbol's stored definitions.
#[derive(Debug, Clone, Default)]
pub struct SymbolDef {
    /// `OwnValues`: the value of `x` after `x = v`.
    pub own: Option<Expr>,
    /// `DownValues`: rules for `f[...]`, kept sorted by pattern specificity.
    pub down: Vec<Rule>,
    /// Evaluation attributes.
    pub attributes: Attributes,
}

/// The global definition store.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    defs: HashMap<Symbol, SymbolDef>,
    module_counter: u64,
}

impl Environment {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a symbol's `OwnValue`.
    pub fn own_value(&self, s: &Symbol) -> Option<&Expr> {
        self.defs.get(s).and_then(|d| d.own.as_ref())
    }

    /// Sets a symbol's `OwnValue` (`x = v`).
    pub fn set_own(&mut self, s: Symbol, v: Expr) {
        self.defs.entry(s).or_default().own = Some(v);
    }

    /// Clears a symbol's `OwnValue` (`x =.` / `Clear`).
    pub fn clear_own(&mut self, s: &Symbol) {
        if let Some(d) = self.defs.get_mut(s) {
            d.own = None;
        }
    }

    /// Removes every definition of the symbol.
    pub fn clear_all(&mut self, s: &Symbol) {
        self.defs.remove(s);
    }

    /// The `DownValues` of a symbol, in specificity order.
    pub fn down_values(&self, s: &Symbol) -> &[Rule] {
        self.defs.get(s).map(|d| d.down.as_slice()).unwrap_or(&[])
    }

    /// Adds a `DownValue` rule, replacing any rule with a structurally
    /// identical left-hand side and keeping the list sorted by specificity
    /// (more specific rules first, ties in insertion order — Wolfram's rule
    /// ordering).
    pub fn add_down_value(&mut self, s: Symbol, rule: Rule) {
        let def = self.defs.entry(s).or_default();
        if let Some(existing) = def.down.iter_mut().find(|r| r.lhs == rule.lhs) {
            *existing = rule;
            return;
        }
        // Stable insertion preserving specificity order.
        let pos = def
            .down
            .iter()
            .position(|r| compare_specificity(&rule.lhs, &r.lhs).is_lt())
            .unwrap_or(def.down.len());
        def.down.insert(pos, rule);
    }

    /// The attributes of a symbol.
    pub fn attributes(&self, s: &Symbol) -> Attributes {
        self.defs.get(s).map(|d| d.attributes).unwrap_or_default()
    }

    /// Sets the attributes of a symbol.
    pub fn set_attributes(&mut self, s: Symbol, attributes: Attributes) {
        self.defs.entry(s).or_default().attributes = attributes;
    }

    /// A fresh module-variable name for `base` (`x` -> `x$17`), used by
    /// `Module` scoping.
    pub fn fresh_module_symbol(&mut self, base: &Symbol) -> Symbol {
        self.module_counter += 1;
        Symbol::new(&format!("{}${}", base.name(), self.module_counter))
    }

    /// Whether the symbol has any definition at all.
    pub fn has_definition(&self, s: &Symbol) -> bool {
        self.defs
            .get(s)
            .is_some_and(|d| d.own.is_some() || !d.down.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    fn rule(src: &str) -> Rule {
        Rule::from_expr(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn own_values() {
        let mut env = Environment::new();
        let x = Symbol::new("x");
        assert!(env.own_value(&x).is_none());
        env.set_own(x.clone(), Expr::int(5));
        assert_eq!(env.own_value(&x).unwrap().as_i64(), Some(5));
        env.clear_own(&x);
        assert!(env.own_value(&x).is_none());
    }

    #[test]
    fn down_values_sorted_by_specificity() {
        let mut env = Environment::new();
        let f = Symbol::new("f");
        env.add_down_value(f.clone(), rule("f[x_] -> general[x]"));
        env.add_down_value(f.clone(), rule("f[0] -> zero"));
        // The literal rule must come first even though added later.
        assert_eq!(env.down_values(&f)[0].rhs.to_full_form(), "zero");
        assert_eq!(env.down_values(&f).len(), 2);
    }

    #[test]
    fn down_values_replace_same_lhs() {
        let mut env = Environment::new();
        let f = Symbol::new("f");
        env.add_down_value(f.clone(), rule("f[x_] -> a"));
        env.add_down_value(f.clone(), rule("f[x_] -> b"));
        assert_eq!(env.down_values(&f).len(), 1);
        assert_eq!(env.down_values(&f)[0].rhs.to_full_form(), "b");
    }

    #[test]
    fn fresh_module_symbols_unique() {
        let mut env = Environment::new();
        let x = Symbol::new("x");
        let a = env.fresh_module_symbol(&x);
        let b = env.fresh_module_symbol(&x);
        assert_ne!(a, b);
        assert!(a.name().starts_with("x$"));
    }

    #[test]
    fn attribute_holds() {
        let a = Attributes {
            hold_first: true,
            ..Attributes::none()
        };
        assert!(a.holds_arg(0));
        assert!(!a.holds_arg(1));
        let a = Attributes {
            hold_rest: true,
            ..Attributes::none()
        };
        assert!(!a.holds_arg(0));
        assert!(a.holds_arg(2));
        let a = Attributes {
            hold_all: true,
            ..Attributes::none()
        };
        assert!(a.holds_arg(0) && a.holds_arg(5));
    }
}
