//! Property tests on the interpreter: algebraic identities of the builtin
//! library over random inputs, structural list laws, and agreement of the
//! number-theoretic builtins with native references.

use proptest::prelude::*;
use wolfram_interp::Interpreter;

fn ev(src: &str) -> String {
    Interpreter::new().eval_src(src).unwrap().to_full_form()
}

fn ev_i64(src: &str) -> i64 {
    Interpreter::new()
        .eval_src(src)
        .unwrap()
        .as_i64()
        .unwrap_or_else(|| panic!("{src} not machine-int"))
}

fn fmt_list(xs: &[i64]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("{{{}}}", inner.join(", "))
}

// ---------------------------------------------------------------------
// Arithmetic identities (machine range kept small enough to avoid
// overflow so identities hold exactly).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plus_is_commutative_and_associative(
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
        c in -1_000_000i64..1_000_000,
    ) {
        prop_assert_eq!(ev_i64(&format!("({a}) + ({b})")), ev_i64(&format!("({b}) + ({a})")));
        prop_assert_eq!(
            ev_i64(&format!("(({a}) + ({b})) + ({c})")),
            ev_i64(&format!("({a}) + (({b}) + ({c}))"))
        );
    }

    #[test]
    fn times_distributes_over_plus(
        a in -1_000i64..1_000, b in -1_000i64..1_000, c in -1_000i64..1_000,
    ) {
        prop_assert_eq!(
            ev_i64(&format!("({a}) * (({b}) + ({c}))")),
            ev_i64(&format!("({a})*({b}) + ({a})*({c})"))
        );
    }

    /// The division identity through the interpreter's own builtins.
    #[test]
    fn quotient_mod_identity_interpreted(
        a in -100_000i64..100_000,
        b in -1_000i64..1_000,
    ) {
        prop_assume!(b != 0);
        let q = ev_i64(&format!("Quotient[{a}, {b}]"));
        let r = ev_i64(&format!("Mod[{a}, {b}]"));
        prop_assert_eq!(b * q + r, a);
        if r != 0 {
            prop_assert_eq!(r.signum(), b.signum());
        }
        // Quotient is Floor of the real quotient.
        prop_assert_eq!(q, (a as f64 / b as f64).floor() as i64);
    }

    /// Exact integer Power for bases that stay in machine range, checked
    /// against i128.
    #[test]
    fn power_matches_wide_reference(base in -9i64..9, exp in 0u32..12) {
        let want = (base as i128).pow(exp);
        prop_assert_eq!(ev_i64(&format!("({base})^{exp}")) as i128, want);
    }

    /// Big products leave machine range without wrapping: (10^10)^2 style
    /// inputs must produce exact bignum digits.
    #[test]
    fn bignum_square_has_exact_digits(a in 4_000_000_000i64..5_000_000_000) {
        let got = ev(&format!("{a} * {a}"));
        let want = (a as i128 * a as i128).to_string();
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------
// List-structural laws.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reverse_is_an_involution(xs in prop::collection::vec(-50i64..50, 0..12)) {
        let l = fmt_list(&xs);
        prop_assert_eq!(ev(&format!("Reverse[Reverse[{l}]]")), ev(&l));
    }

    #[test]
    fn sort_is_idempotent_and_sorted(xs in prop::collection::vec(-50i64..50, 0..12)) {
        let l = fmt_list(&xs);
        let sorted_once = ev(&format!("Sort[{l}]"));
        let sorted_twice = ev(&format!("Sort[Sort[{l}]]"));
        prop_assert_eq!(&sorted_once, &sorted_twice);
        let mut want = xs.clone();
        want.sort_unstable();
        prop_assert_eq!(sorted_once, ev(&fmt_list(&want)));
    }

    #[test]
    fn sort_preserves_total_and_length(xs in prop::collection::vec(-50i64..50, 0..12)) {
        let l = fmt_list(&xs);
        prop_assert_eq!(
            ev_i64(&format!("Total[Sort[{l}]]")),
            xs.iter().sum::<i64>()
        );
        prop_assert_eq!(
            ev_i64(&format!("Length[Sort[{l}]]")),
            xs.len() as i64
        );
    }

    #[test]
    fn join_concatenates(
        xs in prop::collection::vec(-50i64..50, 0..8),
        ys in prop::collection::vec(-50i64..50, 0..8),
    ) {
        let mut both = xs.clone();
        both.extend_from_slice(&ys);
        prop_assert_eq!(
            ev(&format!("Join[{}, {}]", fmt_list(&xs), fmt_list(&ys))),
            ev(&fmt_list(&both))
        );
    }

    #[test]
    fn map_preserves_length_and_total_is_linear(xs in prop::collection::vec(-40i64..40, 0..10)) {
        let l = fmt_list(&xs);
        prop_assert_eq!(ev_i64(&format!("Length[Map[(#^2 &), {l}]]")), xs.len() as i64);
        // Total[Map[3*#&, l]] == 3*Total[l].
        prop_assert_eq!(
            ev_i64(&format!("Total[Map[(3*# &), {l}]]")),
            3 * xs.iter().sum::<i64>()
        );
    }

    #[test]
    fn fold_plus_is_total(xs in prop::collection::vec(-50i64..50, 0..10)) {
        let l = fmt_list(&xs);
        prop_assert_eq!(
            ev_i64(&format!("Fold[Plus, 0, {l}]")),
            xs.iter().sum::<i64>()
        );
    }

    #[test]
    fn gauss_sum(n in 0i64..500) {
        prop_assert_eq!(ev_i64(&format!("Total[Range[{n}]]")), n * (n + 1) / 2);
    }

    #[test]
    fn take_drop_partition(xs in prop::collection::vec(-50i64..50, 1..12), k in 0usize..12) {
        let k = k % (xs.len() + 1);
        let l = fmt_list(&xs);
        prop_assert_eq!(
            ev(&format!("Join[Take[{l}, {k}], Drop[{l}, {k}]]")),
            ev(&l)
        );
    }

    #[test]
    fn part_indexes_one_based(xs in prop::collection::vec(-50i64..50, 1..12), pick in 0usize..11) {
        let i = (pick % xs.len()) + 1;
        prop_assert_eq!(ev_i64(&format!("{}[[{i}]]", fmt_list(&xs))), xs[i - 1]);
        // Negative index counts from the end.
        prop_assert_eq!(
            ev_i64(&format!("{}[[-{i}]]", fmt_list(&xs))),
            xs[xs.len() - i]
        );
    }
}

// ---------------------------------------------------------------------
// Number theory against native references.
// ---------------------------------------------------------------------

fn gcd_ref(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gcd_matches_euclid_and_divides(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let g = ev_i64(&format!("GCD[{a}, {b}]"));
        prop_assert_eq!(g, gcd_ref(a, b));
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        }
    }

    #[test]
    fn gcd_lcm_product_law(a in 1i64..5_000, b in 1i64..5_000) {
        let g = ev_i64(&format!("GCD[{a}, {b}]"));
        let l = ev_i64(&format!("LCM[{a}, {b}]"));
        prop_assert_eq!(g * l, a * b);
    }

    #[test]
    fn integer_digits_reconstruct(n in 0i64..1_000_000_000) {
        let digits = ev(&format!("IntegerDigits[{n}]"));
        let want = if n == 0 {
            "List[0]".to_owned()
        } else {
            let ds: Vec<String> =
                n.to_string().chars().map(|c| c.to_string()).collect();
            format!("List[{}]", ds.join(", "))
        };
        prop_assert_eq!(digits, want);
        // FromDigits is the left inverse.
        prop_assert_eq!(ev_i64(&format!("FromDigits[IntegerDigits[{n}]]")), n);
    }

    #[test]
    fn even_odd_partition(n in any::<i32>()) {
        let even = ev(&format!("EvenQ[{n}]")) == "True";
        let odd = ev(&format!("OddQ[{n}]")) == "True";
        prop_assert!(even != odd);
        prop_assert_eq!(even, n % 2 == 0);
    }
}

// ---------------------------------------------------------------------
// Symbolic laws.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// D[f + g] = D[f] + D[g] checked numerically at sample points.
    #[test]
    fn derivative_is_linear(k in 1i64..6, x0 in -1.0f64..1.0) {
        let mut i = Interpreter::new();
        let d = i
            .eval_src(&format!(
                "N[(D[Sin[x] + {k}*x^2, x] - (D[Sin[x], x] + D[{k}*x^2, x])) /. x -> {x0}]"
            ))
            .unwrap()
            .as_f64()
            .unwrap_or(f64::NAN);
        prop_assert!(d.abs() < 1e-9, "{d}");
    }

    /// With[{k = v}, body] equals textual substitution.
    #[test]
    fn with_is_substitution(v in -100i64..100) {
        prop_assert_eq!(
            ev(&format!("With[{{k = {v}}}, k^2 + k]")),
            ev(&format!("({v})^2 + ({v})"))
        );
    }

    /// Block restores the shadowed global on exit.
    #[test]
    fn block_restores_binding(old in -50i64..50, new in -50i64..50) {
        let mut i = Interpreter::new();
        i.eval_src(&format!("g = {old}")).unwrap();
        let inside = i.eval_src(&format!("Block[{{g = {new}}}, g]")).unwrap();
        prop_assert_eq!(inside.as_i64(), Some(new));
        let after = i.eval_src("g").unwrap();
        prop_assert_eq!(after.as_i64(), Some(old));
    }
}
