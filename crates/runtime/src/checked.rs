//! Checked machine arithmetic.
//!
//! "All machine numerical operations are checked for errors by the compiler
//! runtime" (§4.5). Overflow and division by zero surface as numeric
//! [`RuntimeError`]s, which the compiled-function wrapper converts into a
//! soft fallback to the interpreter.

use crate::error::RuntimeError;

/// `a + b` with overflow detection.
#[inline]
pub fn add_i64(a: i64, b: i64) -> Result<i64, RuntimeError> {
    a.checked_add(b).ok_or(RuntimeError::IntegerOverflow)
}

/// `a - b` with overflow detection.
#[inline]
pub fn sub_i64(a: i64, b: i64) -> Result<i64, RuntimeError> {
    a.checked_sub(b).ok_or(RuntimeError::IntegerOverflow)
}

/// `a * b` with overflow detection.
#[inline]
pub fn mul_i64(a: i64, b: i64) -> Result<i64, RuntimeError> {
    a.checked_mul(b).ok_or(RuntimeError::IntegerOverflow)
}

/// Wolfram `Quotient[m, n]` = `Floor[m/n]`, with zero/overflow detection.
/// Pairs with the divisor-sign [`mod_i64`] so that
/// `m == n*Quotient[m, n] + Mod[m, n]` holds for all `n != 0`.
#[inline]
pub fn quotient_i64(a: i64, b: i64) -> Result<i64, RuntimeError> {
    if b == 0 {
        return Err(RuntimeError::DivideByZero);
    }
    let q = a.checked_div(b).ok_or(RuntimeError::IntegerOverflow)?;
    let r = a.wrapping_rem(b);
    Ok(if r != 0 && (r < 0) != (b < 0) {
        q - 1
    } else {
        q
    })
}

/// Wolfram `Quotient` with a real operand: still `Floor[m/n]`, and still
/// an *integer* result (`Quotient[5.3, 2]` is `2`, not `2.`). Quotients
/// outside the machine-integer range are a numeric overflow, matching the
/// integer path's behaviour.
#[inline]
pub fn quotient_f64(a: f64, b: f64) -> Result<i64, RuntimeError> {
    if b == 0.0 {
        return Err(RuntimeError::DivideByZero);
    }
    let q = (a / b).floor();
    // `q < 2^63` (exclusive): i64::MAX as f64 rounds up to 2^63, which
    // would saturate on the cast.
    if q.is_finite() && q >= i64::MIN as f64 && q < i64::MAX as f64 {
        Ok(q as i64)
    } else {
        Err(RuntimeError::IntegerOverflow)
    }
}

/// Wolfram `Mod`: result has the sign of the divisor.
#[inline]
pub fn mod_i64(a: i64, b: i64) -> Result<i64, RuntimeError> {
    if b == 0 {
        return Err(RuntimeError::DivideByZero);
    }
    let r = a.wrapping_rem(b);
    Ok(if r != 0 && (r < 0) != (b < 0) {
        r + b
    } else {
        r
    })
}

/// Integer power with overflow detection. A negative exponent leaves the
/// integer domain (the interpreter evaluates `2^-1` as the real `0.5`), so
/// it surfaces as a *numeric* error: hosted compiled code soft-fails back
/// to the interpreter and agrees with it instead of hard-erroring.
#[inline]
pub fn pow_i64(base: i64, exp: i64) -> Result<i64, RuntimeError> {
    if exp < 0 {
        return Err(RuntimeError::NumericDomain(
            "integer Power with negative exponent".into(),
        ));
    }
    let exp = u32::try_from(exp).map_err(|_| RuntimeError::IntegerOverflow)?;
    base.checked_pow(exp).ok_or(RuntimeError::IntegerOverflow)
}

/// Unary negation with overflow detection (`-i64::MIN` overflows).
#[inline]
pub fn neg_i64(a: i64) -> Result<i64, RuntimeError> {
    a.checked_neg().ok_or(RuntimeError::IntegerOverflow)
}

/// Absolute value with overflow detection.
#[inline]
pub fn abs_i64(a: i64) -> Result<i64, RuntimeError> {
    a.checked_abs().ok_or(RuntimeError::IntegerOverflow)
}

/// Resolves a Wolfram `Part` index (1-based, negative counts from the end)
/// to a 0-based offset.
///
/// This is the predicated access the paper describes: "since Wolfram
/// Language's supports negative indexing, all array accesses must be
/// predicated at runtime".
///
/// # Errors
///
/// [`RuntimeError::PartOutOfRange`] when the index is 0 or outside the
/// array.
#[inline]
pub fn resolve_part_index(index: i64, length: usize) -> Result<usize, RuntimeError> {
    let err = || RuntimeError::PartOutOfRange { index, length };
    if index > 0 {
        let ix = (index - 1) as usize;
        if ix < length {
            Ok(ix)
        } else {
            Err(err())
        }
    } else if index < 0 {
        let back = (-index) as usize;
        if back <= length {
            Ok(length - back)
        } else {
            Err(err())
        }
    } else {
        Err(err())
    }
}

/// Complex multiplication.
#[inline]
pub fn mul_complex(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Complex division.
#[inline]
pub fn div_complex(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    let d = b.0 * b.0 + b.1 * b.1;
    ((a.0 * b.0 + a.1 * b.1) / d, (a.1 * b.0 - a.0 * b.1) / d)
}

/// Complex absolute value.
#[inline]
pub fn abs_complex(a: (f64, f64)) -> f64 {
    a.0.hypot(a.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_detected() {
        assert_eq!(add_i64(1, 2), Ok(3));
        assert_eq!(add_i64(i64::MAX, 1), Err(RuntimeError::IntegerOverflow));
        assert_eq!(sub_i64(i64::MIN, 1), Err(RuntimeError::IntegerOverflow));
        assert_eq!(
            mul_i64(i64::MAX / 2 + 1, 2),
            Err(RuntimeError::IntegerOverflow)
        );
        assert_eq!(neg_i64(i64::MIN), Err(RuntimeError::IntegerOverflow));
        assert_eq!(abs_i64(i64::MIN), Err(RuntimeError::IntegerOverflow));
    }

    #[test]
    fn division() {
        assert_eq!(quotient_i64(7, 2), Ok(3));
        assert_eq!(quotient_i64(7, 0), Err(RuntimeError::DivideByZero));
        assert_eq!(mod_i64(7, 3), Ok(1));
        assert_eq!(mod_i64(-7, 3), Ok(2)); // Wolfram Mod takes divisor's sign
        assert_eq!(mod_i64(5, 0), Err(RuntimeError::DivideByZero));
    }

    #[test]
    fn powers() {
        assert_eq!(pow_i64(2, 10), Ok(1024));
        assert_eq!(pow_i64(10, 19), Err(RuntimeError::IntegerOverflow));
        // Negative exponents are a *numeric* (soft) failure: hosted engines
        // fall back to the interpreter's real-valued answer.
        assert!(matches!(
            pow_i64(2, -1),
            Err(RuntimeError::NumericDomain(_))
        ));
        assert!(pow_i64(2, -1).unwrap_err().is_numeric());
        assert_eq!(pow_i64(0, 0), Ok(1));
    }

    #[test]
    fn part_indices() {
        assert_eq!(resolve_part_index(1, 3), Ok(0));
        assert_eq!(resolve_part_index(3, 3), Ok(2));
        assert_eq!(resolve_part_index(-1, 3), Ok(2));
        assert_eq!(resolve_part_index(-3, 3), Ok(0));
        assert!(resolve_part_index(0, 3).is_err());
        assert!(resolve_part_index(4, 3).is_err());
        assert!(resolve_part_index(-4, 3).is_err());
        assert!(resolve_part_index(1, 0).is_err());
    }

    #[test]
    fn complex_ops() {
        assert_eq!(mul_complex((0.0, 1.0), (0.0, 1.0)), (-1.0, 0.0));
        let (re, im) = div_complex((1.0, 0.0), (0.0, 1.0));
        assert!((re - 0.0).abs() < 1e-15 && (im + 1.0).abs() < 1e-15);
        assert_eq!(abs_complex((3.0, 4.0)), 5.0);
    }
}
