//! Packed arrays with reference-counted copy-on-write semantics.
//!
//! The Wolfram interpreter "uses a reference counting mechanism to determine
//! if copying is needed" (F5): mutating `a[[3]] = -20` after `b = a` must
//! not disturb `b`. [`Tensor`] reproduces that exactly — cloning shares
//! storage, and a mutation copies only when the storage is shared.

use crate::checked::resolve_part_index;
use crate::error::RuntimeError;
use crate::memory::record_tensor_copy;
use std::sync::Arc;

/// Element storage for a packed array.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// Machine integers.
    I64(Vec<i64>),
    /// Machine reals.
    F64(Vec<f64>),
    /// Machine complex numbers as `(re, im)`.
    Complex(Vec<(f64, f64)>),
}

impl TensorData {
    /// Number of stored elements.
    pub fn len(&self) -> usize {
        match self {
            TensorData::I64(v) => v.len(),
            TensorData::F64(v) => v.len(),
            TensorData::Complex(v) => v.len(),
        }
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element type name, matching the compiler's type vocabulary.
    pub fn element_type(&self) -> &'static str {
        match self {
            TensorData::I64(_) => "Integer64",
            TensorData::F64(_) => "Real64",
            TensorData::Complex(_) => "ComplexReal64",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Repr {
    shape: Vec<usize>,
    data: TensorData,
}

/// A reference-counted, copy-on-write packed array of rank >= 1.
///
/// # Examples
///
/// ```
/// use wolfram_runtime::Tensor;
/// let a = Tensor::from_i64(vec![1, 2, 3]);
/// let b = a.clone();               // shares storage
/// let mut a = a;
/// a.set_i64(2, -20).unwrap();      // copies, then writes (0-based offset)
/// assert_eq!(a.as_i64().unwrap(), &[1, 2, -20]);
/// assert_eq!(b.as_i64().unwrap(), &[1, 2, 3]);   // b unchanged
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor(Arc<Repr>);

impl Tensor {
    /// A rank-1 integer tensor.
    pub fn from_i64(data: Vec<i64>) -> Self {
        let shape = vec![data.len()];
        Tensor(Arc::new(Repr {
            shape,
            data: TensorData::I64(data),
        }))
    }

    /// A rank-1 real tensor.
    pub fn from_f64(data: Vec<f64>) -> Self {
        let shape = vec![data.len()];
        Tensor(Arc::new(Repr {
            shape,
            data: TensorData::F64(data),
        }))
    }

    /// A rank-1 complex tensor.
    pub fn from_complex(data: Vec<(f64, f64)>) -> Self {
        let shape = vec![data.len()];
        Tensor(Arc::new(Repr {
            shape,
            data: TensorData::Complex(data),
        }))
    }

    /// An arbitrary-rank tensor.
    ///
    /// # Errors
    ///
    /// Returns a type error if the shape does not multiply out to the data
    /// length, or the shape is empty.
    pub fn with_shape(shape: Vec<usize>, data: TensorData) -> Result<Self, RuntimeError> {
        let expected: usize = shape.iter().product();
        if shape.is_empty() {
            return Err(RuntimeError::Type("tensor rank must be >= 1".into()));
        }
        if expected != data.len() {
            return Err(RuntimeError::Type(format!(
                "shape {shape:?} needs {expected} elements, got {}",
                data.len()
            )));
        }
        Ok(Tensor(Arc::new(Repr { shape, data })))
    }

    /// The dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.0.shape
    }

    /// The rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.0.shape.len()
    }

    /// The length of the first dimension (Wolfram `Length`).
    pub fn length(&self) -> usize {
        self.0.shape[0]
    }

    /// Total number of elements.
    pub fn flat_len(&self) -> usize {
        self.0.data.len()
    }

    /// The raw element storage.
    pub fn data(&self) -> &TensorData {
        &self.0.data
    }

    /// Whether two handles share storage (used by alias analysis tests).
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// The integer elements, if integer-typed.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match &self.0.data {
            TensorData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The real elements, if real-typed.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match &self.0.data {
            TensorData::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The complex elements, if complex-typed.
    pub fn as_complex(&self) -> Option<&[(f64, f64)]> {
        match &self.0.data {
            TensorData::Complex(v) => Some(v),
            _ => None,
        }
    }

    /// The integer elements, or a type error.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Type`] when the storage is not integer. Execution
    /// engines use this instead of panicking so a mistyped tensor surfaces
    /// as a reportable runtime error (e.g. to the differential fuzzer)
    /// rather than aborting the process.
    pub fn expect_i64(&self) -> Result<&[i64], RuntimeError> {
        self.as_i64().ok_or_else(|| {
            RuntimeError::Type(format!(
                "expected Integer64 tensor storage, got {}",
                self.data().element_type()
            ))
        })
    }

    /// The real elements, or a type error (see [`Tensor::expect_i64`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Type`] when the storage is not real — notably for
    /// complex tensors, which [`Tensor::to_f64_tensor`] leaves untouched.
    pub fn expect_f64(&self) -> Result<&[f64], RuntimeError> {
        self.as_f64().ok_or_else(|| {
            RuntimeError::Type(format!(
                "expected Real64 tensor storage, got {}",
                self.data().element_type()
            ))
        })
    }

    /// Copy-on-write access to the representation: copies if shared,
    /// recording the copy in [`crate::memory`].
    fn make_mut(&mut self) -> &mut Repr {
        if Arc::strong_count(&self.0) > 1 {
            record_tensor_copy();
        }
        Arc::make_mut(&mut self.0)
    }

    /// Mutable access to the raw data, performing copy-on-write.
    pub fn data_mut(&mut self) -> &mut TensorData {
        &mut self.make_mut().data
    }

    /// Reads element `offset` (0-based flat offset) as a generic scalar.
    pub fn get_scalar(&self, offset: usize) -> Option<crate::value::Value> {
        use crate::value::Value;
        match &self.0.data {
            TensorData::I64(v) => v.get(offset).map(|&x| Value::I64(x)),
            TensorData::F64(v) => v.get(offset).map(|&x| Value::F64(x)),
            TensorData::Complex(v) => v.get(offset).map(|&(re, im)| Value::Complex(re, im)),
        }
    }

    /// Resolves a 1-based (possibly negative) Wolfram index on the first
    /// dimension to a 0-based offset.
    pub fn resolve_index(&self, index: i64) -> Result<usize, RuntimeError> {
        resolve_part_index(index, self.length())
    }

    /// Writes an integer element at a 0-based flat offset (copy-on-write).
    ///
    /// # Errors
    ///
    /// Type error if not integer-typed; part error if out of range.
    pub fn set_i64(&mut self, offset: usize, value: i64) -> Result<(), RuntimeError> {
        let len = self.flat_len();
        match self.data_mut() {
            TensorData::I64(v) => {
                *v.get_mut(offset).ok_or(RuntimeError::PartOutOfRange {
                    index: offset as i64 + 1,
                    length: len,
                })? = value;
                Ok(())
            }
            _ => Err(RuntimeError::Type("set_i64 on non-integer tensor".into())),
        }
    }

    /// Writes a real element at a 0-based flat offset (copy-on-write).
    ///
    /// # Errors
    ///
    /// Type error if not real-typed; part error if out of range.
    pub fn set_f64(&mut self, offset: usize, value: f64) -> Result<(), RuntimeError> {
        let len = self.flat_len();
        match self.data_mut() {
            TensorData::F64(v) => {
                *v.get_mut(offset).ok_or(RuntimeError::PartOutOfRange {
                    index: offset as i64 + 1,
                    length: len,
                })? = value;
                Ok(())
            }
            _ => Err(RuntimeError::Type("set_f64 on non-real tensor".into())),
        }
    }

    /// `Part` on the first dimension: for rank 1 returns a scalar value, for
    /// higher ranks returns the sliced sub-tensor (which copies the slice,
    /// as packed-array Part does).
    pub fn part(&self, index: i64) -> Result<crate::value::Value, RuntimeError> {
        use crate::value::Value;
        let ix = self.resolve_index(index)?;
        if self.rank() == 1 {
            Ok(self.get_scalar(ix).expect("index checked"))
        } else {
            let stride: usize = self.0.shape[1..].iter().product();
            let lo = ix * stride;
            let hi = lo + stride;
            let data = match &self.0.data {
                TensorData::I64(v) => TensorData::I64(v[lo..hi].to_vec()),
                TensorData::F64(v) => TensorData::F64(v[lo..hi].to_vec()),
                TensorData::Complex(v) => TensorData::Complex(v[lo..hi].to_vec()),
            };
            Ok(Value::Tensor(Tensor::with_shape(
                self.0.shape[1..].to_vec(),
                data,
            )?))
        }
    }

    /// Converts integer storage to real storage (type promotion).
    pub fn to_f64_tensor(&self) -> Tensor {
        match &self.0.data {
            TensorData::I64(v) => {
                let data = v.iter().map(|&x| x as f64).collect();
                Tensor(Arc::new(Repr {
                    shape: self.0.shape.clone(),
                    data: TensorData::F64(data),
                }))
            }
            _ => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{reset_stats, stats};
    use crate::value::Value;

    #[test]
    fn copy_on_write_preserves_aliases() {
        // The paper's example: a={1,2,3}; b=a; a[[3]]=-20; b => {1,2,3}.
        let a = Tensor::from_i64(vec![1, 2, 3]);
        let b = a.clone();
        assert!(a.shares_storage(&b));
        let mut a = a;
        a.set_i64(2, -20).unwrap();
        assert!(!a.shares_storage(&b));
        assert_eq!(a.as_i64().unwrap(), &[1, 2, -20]);
        assert_eq!(b.as_i64().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn unshared_mutation_does_not_copy() {
        reset_stats();
        let mut a = Tensor::from_f64(vec![1.0, 2.0]);
        a.set_f64(0, 9.0).unwrap();
        assert_eq!(stats().tensor_copies, 0);
        let b = a.clone();
        a.set_f64(1, 8.0).unwrap();
        assert_eq!(stats().tensor_copies, 1);
        assert_eq!(b.as_f64().unwrap(), &[9.0, 2.0]);
    }

    #[test]
    fn shapes_validated() {
        assert!(Tensor::with_shape(vec![2, 3], TensorData::I64(vec![0; 6])).is_ok());
        assert!(Tensor::with_shape(vec![2, 3], TensorData::I64(vec![0; 5])).is_err());
        assert!(Tensor::with_shape(vec![], TensorData::I64(vec![])).is_err());
    }

    #[test]
    fn part_scalar_and_slice() {
        let t = Tensor::with_shape(vec![2, 2], TensorData::I64(vec![1, 2, 3, 4])).unwrap();
        let row = t.part(2).unwrap();
        match row {
            Value::Tensor(r) => {
                assert_eq!(r.shape(), &[2]);
                assert_eq!(r.as_i64().unwrap(), &[3, 4]);
            }
            other => panic!("expected tensor, got {other:?}"),
        }
        let v = Tensor::from_i64(vec![10, 20, 30]);
        assert_eq!(v.part(-1).unwrap(), Value::I64(30));
        assert!(v.part(0).is_err());
        assert!(v.part(4).is_err());
    }

    #[test]
    fn promotion() {
        let t = Tensor::from_i64(vec![1, 2]);
        let f = t.to_f64_tensor();
        assert_eq!(f.as_f64().unwrap(), &[1.0, 2.0]);
        assert_eq!(f.shape(), t.shape());
    }

    #[test]
    fn element_types() {
        assert_eq!(Tensor::from_i64(vec![1]).data().element_type(), "Integer64");
        assert_eq!(Tensor::from_f64(vec![1.0]).data().element_type(), "Real64");
        assert_eq!(
            Tensor::from_complex(vec![(0.0, 1.0)]).data().element_type(),
            "ComplexReal64"
        );
    }
}
