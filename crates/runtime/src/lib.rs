//! Runtime substrate for the Wolfram Language compiler reproduction.
//!
//! Provides what the paper's compiled code and virtual machines execute
//! against:
//!
//! - [`Value`] — the boxed runtime value (machine numbers, strings, tensors,
//!   symbolic expressions, function values, bignums).
//! - [`Tensor`] — reference-counted, copy-on-write packed arrays, which is
//!   how the interpreter's mutability semantics (F5) and reference-counting
//!   memory management (F7) are realized.
//! - [`checked`] — machine arithmetic that reports numeric exceptions for
//!   the soft-failure fallback (F2).
//! - [`AbortSignal`] — the asynchronous abort flag checked by the
//!   interpreter, the legacy VM, and compiled code (F3).
//! - [`memory`] — acquire/release instrumentation used to validate the
//!   compiler's memory-management pass.
//! - [`linalg`] — the shared `dgemm` kernel standing in for MKL (all three
//!   implementations of the Dot benchmark route through it, as in §6).
//! - [`parallel`] / [`simd`] — the data-parallel tier: a persistent worker
//!   pool with deterministic chunking for whole-tensor builtins, and
//!   stable-Rust SIMD-shaped kernels for dense `f64` inner loops.

pub mod abort;
pub mod checked;
pub mod error;
pub mod linalg;
pub mod memory;
pub mod parallel;
pub mod simd;
pub mod tensor;
pub mod value;

pub use abort::{AbortSignal, DeadlineGuard};
pub use error::RuntimeError;
pub use parallel::ParallelConfig;
pub use tensor::{Tensor, TensorData};
pub use value::{FunctionValue, Value};

/// Convenient result alias for runtime operations.
pub type RtResult<T> = Result<T, RuntimeError>;
