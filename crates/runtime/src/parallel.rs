//! The data-parallel tier: a persistent worker pool plus deterministic
//! chunked kernels for whole-tensor builtins.
//!
//! # Determinism
//!
//! The central invariant: **chunk boundaries depend only on the data
//! length and `min_elems_per_chunk`, never on the thread count.** Threads
//! only decide how many workers drain the fixed chunk list; every chunk
//! computes a pure function of its input range, and reduction partials
//! are merged sequentially in chunk order. Running the same op with 1, 2,
//! or 8 threads therefore produces bit-identical results.
//!
//! Elementwise chunked ops (zip/map, dgemm row blocks, histogram bins)
//! are bit-identical to the sequential path outright. Chunked *float
//! reductions* ([`sum_f64`], [`dot_f64`]) are reassociated — per-chunk
//! partials (themselves 4-lane SIMD sums, see [`crate::simd`]) folded
//! left-to-right in chunk order — which differs from the interpreter's
//! strict sequential fold by a few ULPs. The difftest ULP + cancellation
//! equivalence relation covers exactly this.
//!
//! # Memory accounting
//!
//! Workers only ever see raw `&[f64]`/`&mut [f64]` chunks — `Arc`-managed
//! values never cross threads — so they normally touch no refcount
//! counters. They still call [`crate::memory::flush_thread_stats`] after
//! every task as belt-and-braces, keeping [`crate::memory::global_stats`]
//! balanced no matter what a task does.

use crate::simd::{self, SimdOp};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool workers, however large `num_threads` is.
const MAX_WORKERS: usize = 31;

/// Tuning knobs for the data-parallel tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means auto-detect via
    /// `std::thread::available_parallelism`.
    pub num_threads: usize,
    /// Minimum elements per chunk. Work below this length runs on the
    /// sequential path; above it, the chunk count is `len / min` (floor),
    /// so every chunk holds at least `min` elements.
    pub min_elems_per_chunk: usize,
    /// Whether to use the SIMD kernels (`crate::simd`) for inner loops.
    /// When false, chunks run plain scalar loops (useful for ablations).
    pub simd: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            num_threads: 0,
            min_elems_per_chunk: 16 * 1024,
            simd: true,
        }
    }
}

impl ParallelConfig {
    /// The resolved worker count (`num_threads`, or the machine's
    /// available parallelism when 0).
    pub fn threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_threads
        }
    }

    /// Deterministic chunk count for `len` elements: a function of the
    /// length and `min_elems_per_chunk` only — *never* the thread count —
    /// so results are reproducible across thread configurations.
    pub fn chunk_count(&self, len: usize) -> usize {
        let min = self.min_elems_per_chunk.max(1);
        if len < min {
            1
        } else {
            len / min
        }
    }

    /// Whether `len` elements are worth dispatching to the pool at all.
    pub fn worth_parallelizing(&self, len: usize) -> bool {
        self.threads() > 1 && self.chunk_count(len) > 1
    }
}

/// Half-open element range of chunk `i` out of `n_chunks` over `len`
/// elements. Balanced partition: every chunk gets `len/n_chunks` elements
/// ±1, boundaries in monotone order, exactly covering `0..len`.
pub fn chunk_bounds(len: usize, n_chunks: usize, i: usize) -> (usize, usize) {
    debug_assert!(i < n_chunks);
    (len * i / n_chunks, len * (i + 1) / n_chunks)
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

struct BatchState {
    remaining: usize,
    panicked: bool,
}

/// Completion latch for one `run_chunks` batch.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

/// One queued chunk. `run` is a lifetime-erased borrow of the caller's
/// closure: sound because [`run_chunks`] installs a [`BatchGuard`] the
/// moment the jobs are queued, which blocks on the batch latch until
/// every queued job has finished — on normal return *and* on unwind — so
/// the borrow outlives all uses.
struct Job {
    run: &'static (dyn Fn(usize) + Sync),
    index: usize,
    batch: Arc<Batch>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Lazily grows the pool so at least `want` workers exist (capped).
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().expect("pool spawn lock poisoned");
        while *spawned < want {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("wolfram-par-{}", *spawned))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
            *spawned += 1;
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared
                    .work
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        run_job(job);
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock. Every mutex
/// in this module protects data that stays consistent across panics
/// (counters, a job queue of plain values), so poisoning carries no extra
/// meaning here — and the batch latch *must* keep counting down even
/// after a panic, or [`BatchGuard`] could never open.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_job(job: Job) {
    let ok =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.run)(job.index))).is_ok();
    // Keep process-wide leak accounting balanced even if a task touched
    // managed-value counters on this thread.
    crate::memory::flush_thread_stats();
    let mut st = lock_unpoisoned(&job.batch.state);
    st.remaining -= 1;
    if !ok {
        st.panicked = true;
    }
    if st.remaining == 0 {
        job.batch.done.notify_all();
    }
}

/// Holds a batch open: created as soon as a batch's jobs are queued, and
/// its `Drop` blocks until every one of them has finished. Queued jobs
/// hold a lifetime-erased borrow of the caller's closure, so the guard is
/// what makes [`run_chunks`] sound even if the calling frame unwinds
/// between enqueueing and draining: the closure cannot be dropped while
/// any worker might still call it.
struct BatchGuard<'a> {
    batch: &'a Batch,
}

impl BatchGuard<'_> {
    /// Blocks until the batch latch opens; returns the panicked flag.
    /// Never panics (poisoned locks are recovered), so it is safe to run
    /// during an unwind.
    fn wait(&self) -> bool {
        let mut st = lock_unpoisoned(&self.batch.state);
        while st.remaining > 0 {
            st = self
                .batch
                .done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.panicked
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        self.wait();
    }
}

/// Runs `f(0), f(1), ..., f(n_tasks-1)` across the pool using up to
/// `threads` threads (the caller participates as one of them), blocking
/// until every task has completed. With `threads <= 1` the tasks run
/// inline on the caller, in index order.
///
/// Tasks must be independent; a panicking task poisons only its batch and
/// is re-raised here as a panic after the batch drains.
pub fn run_chunks(threads: usize, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    let threads = threads.min(n_tasks);
    if threads <= 1 {
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    let pool = pool();
    pool.ensure_workers(threads - 1);
    let batch = Arc::new(Batch {
        state: Mutex::new(BatchState {
            remaining: n_tasks,
            panicked: false,
        }),
        done: Condvar::new(),
    });
    // SAFETY: the 'static lifetime is a lie told only to the queue. Jobs
    // holding this borrow exist only once queued below, and from that
    // point the `BatchGuard` (dropped at every exit from this function,
    // unwinding included) blocks until all of them have run, so the
    // borrow never outlives `f`.
    let run: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    };
    {
        // The recovered lock and plain pushes cannot unwind, so the
        // guard below is always armed once any borrow is queued.
        let mut q = lock_unpoisoned(&pool.shared.queue);
        for index in 0..n_tasks {
            q.push_back(Job {
                run,
                index,
                batch: Arc::clone(&batch),
            });
        }
    }
    let guard = BatchGuard { batch: &batch };
    pool.shared.work.notify_all();
    // The caller participates: drain jobs (ours or another batch's) until
    // the queue is empty, then wait for stragglers on the latch.
    loop {
        let job = lock_unpoisoned(&pool.shared.queue).pop_front();
        match job {
            Some(job) => run_job(job),
            None => break,
        }
    }
    let panicked = guard.wait();
    assert!(!panicked, "parallel worker task panicked");
}

/// Chunk task for [`for_each_row_block`]: called as
/// `f(chunk, row_start, row_end, stripe)`.
pub type RowBlockFn<'a, T> = dyn Fn(usize, usize, usize, &mut [T]) + Sync + 'a;

/// Splits `out` into `n_chunks` disjoint row-block stripes and runs
/// `f(chunk, row_start, row_end, stripe)` for each, in parallel when
/// `threads > 1`. Chunk `i` covers rows `chunk_bounds(rows, n_chunks, i)`
/// and its stripe is `out[row_start*row_len .. row_end*row_len]`.
///
/// With `row_len == 1` this is a plain striped split of a flat slice.
pub fn for_each_row_block<T: Send>(
    threads: usize,
    n_chunks: usize,
    rows: usize,
    row_len: usize,
    out: &mut [T],
    f: &RowBlockFn<'_, T>,
) {
    assert!(out.len() >= rows * row_len, "row-block output too short");
    if n_chunks <= 1 || threads <= 1 {
        for i in 0..n_chunks {
            let (r0, r1) = chunk_bounds(rows, n_chunks, i);
            f(i, r0, r1, &mut out[r0 * row_len..r1 * row_len]);
        }
        return;
    }
    struct SendPtr<T>(*mut T);
    unsafe impl<T: Send> Send for SendPtr<T> {}
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    let base = SendPtr(out.as_mut_ptr());
    run_chunks(threads, n_chunks, &|i| {
        // Capture the whole wrapper, not the raw-pointer field (the
        // field alone would not be `Sync`).
        let base = &base;
        let (r0, r1) = chunk_bounds(rows, n_chunks, i);
        // SAFETY: `chunk_bounds` partitions `0..rows` into disjoint,
        // in-bounds, monotone ranges, so each task receives an exclusive
        // sub-slice of `out` and no two tasks alias.
        let stripe = unsafe {
            std::slice::from_raw_parts_mut(base.0.add(r0 * row_len), (r1 - r0) * row_len)
        };
        f(i, r0, r1, stripe);
    });
}

// ---------------------------------------------------------------------------
// Chunked whole-tensor kernels.
// ---------------------------------------------------------------------------

/// Chunked elementwise `out[i] = a[i] op b[i]` (Listable zip). Exact:
/// per-element results are independent, so any chunking is bit-identical
/// to the sequential loop.
pub fn zip_f64(cfg: &ParallelConfig, op: SimdOp, a: &[f64], b: &[f64], out: &mut [f64]) {
    let len = out.len();
    let n_chunks = cfg.chunk_count(len);
    let simd = cfg.simd;
    for_each_row_block(cfg.threads(), n_chunks, len, 1, out, &|_, lo, hi, o| {
        if simd {
            simd::vv(op, &a[lo..hi], &b[lo..hi], o);
        } else {
            for (i, slot) in o.iter_mut().enumerate() {
                *slot = op.apply(a[lo + i], b[lo + i]);
            }
        }
    });
}

/// Chunked elementwise tensor ⊗ scalar map. `rev` swaps operand order
/// (`out[i] = s op a[i]` instead of `a[i] op s`), matching the machine's
/// reversed-operand scalar forms.
pub fn map_f64(cfg: &ParallelConfig, op: SimdOp, a: &[f64], s: f64, rev: bool, out: &mut [f64]) {
    let len = out.len();
    let n_chunks = cfg.chunk_count(len);
    let simd = cfg.simd;
    for_each_row_block(cfg.threads(), n_chunks, len, 1, out, &|_, lo, hi, o| {
        if simd {
            if rev {
                simd::sv(op, s, &a[lo..hi], o);
            } else {
                simd::vs(op, &a[lo..hi], s, o);
            }
        } else {
            for (i, slot) in o.iter_mut().enumerate() {
                let x = a[lo + i];
                *slot = if rev { op.apply(s, x) } else { op.apply(x, s) };
            }
        }
    });
}

/// Chunked sum. Per-chunk partials (SIMD 4-lane sums when `cfg.simd`)
/// are merged sequentially in chunk order — the deterministic chunk-tree
/// reduction order documented in DESIGN.md.
pub fn sum_f64(cfg: &ParallelConfig, a: &[f64]) -> f64 {
    let n_chunks = cfg.chunk_count(a.len());
    let mut partials = vec![0.0f64; n_chunks];
    let simd = cfg.simd;
    let len = a.len();
    for_each_row_block(
        cfg.threads(),
        n_chunks,
        n_chunks,
        1,
        &mut partials,
        &|i, _, _, p| {
            let (lo, hi) = chunk_bounds(len, n_chunks, i);
            p[0] = if simd {
                simd::sum(&a[lo..hi])
            } else {
                a[lo..hi].iter().sum()
            };
        },
    );
    partials.into_iter().sum()
}

/// Chunked dot product with the same partial-merge order as [`sum_f64`].
pub fn dot_f64(cfg: &ParallelConfig, a: &[f64], b: &[f64]) -> f64 {
    assert!(a.len() == b.len(), "dot length mismatch");
    let n_chunks = cfg.chunk_count(a.len());
    let mut partials = vec![0.0f64; n_chunks];
    let simd = cfg.simd;
    let len = a.len();
    for_each_row_block(
        cfg.threads(),
        n_chunks,
        n_chunks,
        1,
        &mut partials,
        &|i, _, _, p| {
            let (lo, hi) = chunk_bounds(len, n_chunks, i);
            p[0] = if simd {
                simd::dot(&a[lo..hi], &b[lo..hi])
            } else {
                a[lo..hi].iter().zip(&b[lo..hi]).map(|(x, y)| x * y).sum()
            };
        },
    );
    partials.into_iter().sum()
}

/// Chunked histogram: values `v` in `0..n_bins` are counted, others
/// ignored. Each chunk fills a private bin vector; the per-chunk bins are
/// merged in chunk order. Integer adds are exact and commutative, so this
/// is bit-identical to the sequential count.
pub fn histogram_i64(cfg: &ParallelConfig, data: &[i64], n_bins: usize) -> Vec<i64> {
    let n_chunks = cfg.chunk_count(data.len());
    let len = data.len();
    let mut local = vec![0i64; n_chunks * n_bins];
    for_each_row_block(
        cfg.threads(),
        n_chunks,
        n_chunks,
        n_bins,
        &mut local,
        &|i, _, _, bins| {
            let (lo, hi) = chunk_bounds(len, n_chunks, i);
            for &v in &data[lo..hi] {
                if v >= 0 {
                    if let Some(slot) = bins.get_mut(v as usize) {
                        *slot += 1;
                    }
                }
            }
        },
    );
    let mut bins = vec![0i64; n_bins];
    for chunk in local.chunks_exact(n_bins.max(1)) {
        for (b, c) in bins.iter_mut().zip(chunk) {
            *b += c;
        }
    }
    bins
}

/// Row-block-parallel matrix multiply: chunk `i` computes output rows
/// `chunk_bounds(m, n_chunks, i)` via [`crate::linalg::dgemm`] on the
/// corresponding rows of `a`. The per-element accumulation order inside
/// a row depends only on the k-loop, so this is bit-identical to the
/// sequential `dgemm` for every thread count.
pub fn dgemm(
    cfg: &ParallelConfig,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(a.len() == m * k && b.len() == k * n && out.len() == m * n);
    // Chunk on output elements so `min_elems_per_chunk` keeps its meaning,
    // then round to whole rows.
    let n_chunks = cfg.chunk_count(m * n).min(m.max(1));
    for_each_row_block(cfg.threads(), n_chunks, m, n, out, &|_, r0, r1, stripe| {
        crate::linalg::dgemm(&a[r0 * k..r1 * k], b, stripe, r1 - r0, k, n);
    });
}

/// Row-block-parallel matrix × vector. Each output element is one row
/// dot; with `cfg.simd` the rows use the reassociated [`simd::dot`]
/// (deterministic per row), otherwise the sequential [`crate::linalg::ddot`].
pub fn dgemv(cfg: &ParallelConfig, a: &[f64], x: &[f64], out: &mut [f64], m: usize, n: usize) {
    assert!(a.len() == m * n && x.len() == n && out.len() == m);
    let n_chunks = cfg.chunk_count(m * n).min(m.max(1));
    let simd = cfg.simd;
    for_each_row_block(cfg.threads(), n_chunks, m, 1, out, &|_, r0, _, stripe| {
        for (i, slot) in stripe.iter_mut().enumerate() {
            let row = &a[(r0 + i) * n..(r0 + i + 1) * n];
            *slot = if simd {
                simd::dot(row, x)
            } else {
                crate::linalg::ddot(row, x)
            };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize, min: usize) -> ParallelConfig {
        ParallelConfig {
            num_threads: threads,
            min_elems_per_chunk: min,
            simd: true,
        }
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for len in [0usize, 1, 2, 7, 64, 100, 101, 1023] {
            for n_chunks in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                for i in 0..n_chunks {
                    let (lo, hi) = chunk_bounds(len, n_chunks, i);
                    assert_eq!(lo, covered, "len={len} chunks={n_chunks} i={i}");
                    assert!(hi >= lo);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn chunk_count_is_thread_independent_and_respects_min() {
        let a = cfg(1, 100);
        let b = cfg(8, 100);
        for len in [0usize, 1, 99, 100, 199, 200, 1000] {
            assert_eq!(a.chunk_count(len), b.chunk_count(len));
            let n = a.chunk_count(len);
            if len >= 100 {
                // Every chunk holds at least `min` elements.
                for i in 0..n {
                    let (lo, hi) = chunk_bounds(len, n, i);
                    assert!(hi - lo >= 100, "len={len} chunk {i} has {}", hi - lo);
                }
            } else {
                assert_eq!(n, 1, "below threshold must be a single chunk");
            }
        }
    }

    #[test]
    fn single_element_and_empty_inputs() {
        let c = cfg(4, 8);
        assert_eq!(sum_f64(&c, &[]), 0.0);
        assert_eq!(sum_f64(&c, &[2.5]), 2.5);
        let mut out = [0.0];
        zip_f64(&c, SimdOp::Mul, &[3.0], &[4.0], &mut out);
        assert_eq!(out[0], 12.0);
        assert_eq!(histogram_i64(&c, &[], 4), vec![0; 4]);
        assert_eq!(histogram_i64(&c, &[2], 4), vec![0, 0, 1, 0]);
    }

    #[test]
    fn below_threshold_runs_sequentially() {
        // One chunk => the sequential path (no pool dispatch); results
        // must equal a plain loop bitwise.
        let c = cfg(8, 1000);
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        let b: Vec<f64> = (0..100).map(|i| 100.0 - i as f64).collect();
        assert_eq!(c.chunk_count(a.len()), 1);
        let mut out = vec![0.0; 100];
        zip_f64(&c, SimdOp::Add, &a, &b, &mut out);
        for i in 0..100 {
            assert_eq!(out[i].to_bits(), (a[i] + b[i]).to_bits());
        }
    }

    #[test]
    fn chunk_boundary_off_by_one_lengths() {
        // Lengths straddling exact chunk multiples: every element must be
        // written exactly once.
        for len in [255usize, 256, 257, 511, 512, 513] {
            let c = cfg(4, 128);
            let a: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let mut out = vec![f64::NAN; len];
            map_f64(&c, SimdOp::Add, &a, 1.0, false, &mut out);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f64 + 1.0, "len={len} i={i}");
            }
        }
    }

    #[test]
    fn thread_counts_give_identical_results() {
        let a: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.7).cos()).collect();
        let data: Vec<i64> = (0..4096).map(|i| (i * 37) % 256).collect();
        let base = cfg(1, 256);
        let base_sum = sum_f64(&base, &a);
        let base_dot = dot_f64(&base, &a, &b);
        let mut base_zip = vec![0.0; a.len()];
        zip_f64(&base, SimdOp::Mul, &a, &b, &mut base_zip);
        let base_hist = histogram_i64(&base, &data, 256);
        for threads in [2usize, 8] {
            let c = cfg(threads, 256);
            assert_eq!(
                sum_f64(&c, &a).to_bits(),
                base_sum.to_bits(),
                "threads={threads}"
            );
            assert_eq!(dot_f64(&c, &a, &b).to_bits(), base_dot.to_bits());
            let mut out = vec![0.0; a.len()];
            zip_f64(&c, SimdOp::Mul, &a, &b, &mut out);
            for i in 0..a.len() {
                assert_eq!(out[i].to_bits(), base_zip[i].to_bits());
            }
            assert_eq!(histogram_i64(&c, &data, 256), base_hist);
        }
    }

    #[test]
    fn parallel_dgemm_matches_sequential_bitwise() {
        let (m, k, n) = (17, 13, 19);
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut seq = vec![0.0; m * n];
        crate::linalg::dgemm(&a, &b, &mut seq, m, k, n);
        for threads in [1usize, 2, 8] {
            let c = ParallelConfig {
                num_threads: threads,
                min_elems_per_chunk: 16,
                simd: true,
            };
            let mut out = vec![0.0; m * n];
            dgemm(&c, &a, &b, &mut out, m, k, n);
            for i in 0..m * n {
                assert_eq!(
                    out[i].to_bits(),
                    seq[i].to_bits(),
                    "threads={threads} i={i}"
                );
            }
        }
    }

    #[test]
    fn dgemv_is_deterministic_across_threads() {
        let (m, n) = (37, 29);
        let a: Vec<f64> = (0..m * n).map(|i| (i as f64 * 0.11).sin()).collect();
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let mut base = vec![0.0; m];
        dgemv(&cfg(1, 8), &a, &x, &mut base, m, n);
        for threads in [2usize, 8] {
            let mut out = vec![0.0; m];
            dgemv(&cfg(threads, 8), &a, &x, &mut out, m, n);
            for i in 0..m {
                assert_eq!(out[i].to_bits(), base[i].to_bits());
            }
        }
    }

    #[test]
    fn pool_survives_task_panic() {
        let caught = std::panic::catch_unwind(|| {
            run_chunks(4, 8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err(), "panic must be re-raised at the caller");
        // The pool must still be usable afterwards.
        let a: Vec<f64> = (0..2048).map(|i| i as f64).collect();
        let s = sum_f64(&cfg(4, 128), &a);
        assert_eq!(s, (2047.0 * 2048.0) / 2.0);
    }
}
