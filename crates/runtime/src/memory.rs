//! Memory-management instrumentation (F7).
//!
//! The compiler's memory-management pass inserts `MemoryAcquire` at the head
//! of each variable's live interval and `MemoryRelease` at its tail; both
//! are no-ops for unmanaged (machine) objects and reference-count updates
//! for managed ones. This module provides the counters the test suite uses
//! to assert that acquires and releases balance, and that copy-on-write
//! actually copies (the QSort 1.2× story in §6).

use std::cell::Cell;

thread_local! {
    static ACQUIRES: Cell<u64> = const { Cell::new(0) };
    static RELEASES: Cell<u64> = const { Cell::new(0) };
    static TENSOR_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the instrumentation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// `MemoryAcquire` calls on managed values.
    pub acquires: u64,
    /// `MemoryRelease` calls on managed values.
    pub releases: u64,
    /// Copy-on-write tensor copies performed.
    pub tensor_copies: u64,
}

impl MemoryStats {
    /// Whether every acquire has a matching release.
    pub fn balanced(&self) -> bool {
        self.acquires == self.releases
    }
}

/// Records an acquire of a managed value.
#[inline]
pub fn record_acquire() {
    ACQUIRES.with(|c| c.set(c.get() + 1));
}

/// Records a release of a managed value.
#[inline]
pub fn record_release() {
    RELEASES.with(|c| c.set(c.get() + 1));
}

/// Records a copy-on-write tensor copy.
#[inline]
pub fn record_tensor_copy() {
    TENSOR_COPIES.with(|c| c.set(c.get() + 1));
}

/// Reads the current counters for this thread.
pub fn stats() -> MemoryStats {
    MemoryStats {
        acquires: ACQUIRES.with(Cell::get),
        releases: RELEASES.with(Cell::get),
        tensor_copies: TENSOR_COPIES.with(Cell::get),
    }
}

/// Resets the counters for this thread.
pub fn reset_stats() {
    ACQUIRES.with(|c| c.set(0));
    RELEASES.with(|c| c.set(0));
    TENSOR_COPIES.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset_stats();
        record_acquire();
        record_acquire();
        record_release();
        record_tensor_copy();
        let s = stats();
        assert_eq!(
            s,
            MemoryStats {
                acquires: 2,
                releases: 1,
                tensor_copies: 1
            }
        );
        assert!(!s.balanced());
        record_release();
        assert!(stats().balanced());
        reset_stats();
        assert_eq!(stats(), MemoryStats::default());
    }
}
