//! Memory-management instrumentation (F7).
//!
//! The compiler's memory-management pass inserts `MemoryAcquire` at the head
//! of each variable's live interval and `MemoryRelease` at its tail; both
//! are no-ops for unmanaged (machine) objects and reference-count updates
//! for managed ones. This module provides the counters the test suite uses
//! to assert that acquires and releases balance, and that copy-on-write
//! actually copies (the QSort 1.2× story in §6).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static ACQUIRES: Cell<u64> = const { Cell::new(0) };
    static RELEASES: Cell<u64> = const { Cell::new(0) };
    static TENSOR_COPIES: Cell<u64> = const { Cell::new(0) };
    static FRAME_HITS: Cell<u64> = const { Cell::new(0) };
    static FRAME_MISSES: Cell<u64> = const { Cell::new(0) };
    static FRAME_RESETS: Cell<u64> = const { Cell::new(0) };
}

// Cross-thread aggregation (the serve worker pool). The hot recording path
// stays thread-local and non-atomic; each worker *flushes* its local
// counters into these process-wide totals. Managed values never cross
// threads (see the Send/Sync audit in `wolfram-serve`), so per-thread
// balance remains meaningful — but a run's total leak accounting must sum
// over every worker, which is what these totals provide.
static GLOBAL_ACQUIRES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_RELEASES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_TENSOR_COPIES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_FRAME_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_FRAME_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_FRAME_RESETS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the instrumentation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// `MemoryAcquire` calls on managed values.
    pub acquires: u64,
    /// `MemoryRelease` calls on managed values.
    pub releases: u64,
    /// Copy-on-write tensor copies performed.
    pub tensor_copies: u64,
    /// Calls served by a recycled frame from a machine's frame pool.
    pub frame_hits: u64,
    /// Calls that allocated a fresh frame (pool empty, or the first call
    /// of a streaming session).
    pub frame_misses: u64,
    /// Streaming calls that reset-and-reused a dedicated session frame
    /// instead of going through the pool at all (the `wolfram-stream`
    /// entry path).
    pub frame_resets: u64,
}

impl MemoryStats {
    /// Whether every acquire has a matching release.
    pub fn balanced(&self) -> bool {
        self.acquires == self.releases
    }

    /// Calls that reused an existing frame allocation (pool hit or
    /// streaming reset) rather than allocating a fresh one.
    pub fn frames_reused(&self) -> u64 {
        self.frame_hits + self.frame_resets
    }
}

/// Records an acquire of a managed value.
#[inline]
pub fn record_acquire() {
    ACQUIRES.with(|c| c.set(c.get() + 1));
}

/// Records a release of a managed value.
#[inline]
pub fn record_release() {
    RELEASES.with(|c| c.set(c.get() + 1));
}

/// Records `n` acquires at once (batched loop iterations).
#[inline]
pub fn record_acquires(n: u64) {
    ACQUIRES.with(|c| c.set(c.get() + n));
}

/// Records `n` releases at once (batched loop iterations).
#[inline]
pub fn record_releases(n: u64) {
    RELEASES.with(|c| c.set(c.get() + n));
}

/// Records a copy-on-write tensor copy.
#[inline]
pub fn record_tensor_copy() {
    TENSOR_COPIES.with(|c| c.set(c.get() + 1));
}

/// Records a call served by a pooled frame.
#[inline]
pub fn record_frame_hit() {
    FRAME_HITS.with(|c| c.set(c.get() + 1));
}

/// Records a call that allocated a fresh frame.
#[inline]
pub fn record_frame_miss() {
    FRAME_MISSES.with(|c| c.set(c.get() + 1));
}

/// Records a streaming call that reset-and-reused its session frame.
#[inline]
pub fn record_frame_reset() {
    FRAME_RESETS.with(|c| c.set(c.get() + 1));
}

/// Reads the current counters for this thread.
pub fn stats() -> MemoryStats {
    MemoryStats {
        acquires: ACQUIRES.with(Cell::get),
        releases: RELEASES.with(Cell::get),
        tensor_copies: TENSOR_COPIES.with(Cell::get),
        frame_hits: FRAME_HITS.with(Cell::get),
        frame_misses: FRAME_MISSES.with(Cell::get),
        frame_resets: FRAME_RESETS.with(Cell::get),
    }
}

/// Resets the counters for this thread.
pub fn reset_stats() {
    ACQUIRES.with(|c| c.set(0));
    RELEASES.with(|c| c.set(0));
    TENSOR_COPIES.with(|c| c.set(0));
    FRAME_HITS.with(|c| c.set(0));
    FRAME_MISSES.with(|c| c.set(0));
    FRAME_RESETS.with(|c| c.set(0));
}

/// Moves this thread's counters into the process-wide totals, resetting
/// the thread-local view. Pool workers call this after each request so
/// [`global_stats`] reflects every thread's activity.
pub fn flush_thread_stats() {
    let s = stats();
    reset_stats();
    GLOBAL_ACQUIRES.fetch_add(s.acquires, Ordering::Relaxed);
    GLOBAL_RELEASES.fetch_add(s.releases, Ordering::Relaxed);
    GLOBAL_TENSOR_COPIES.fetch_add(s.tensor_copies, Ordering::Relaxed);
    GLOBAL_FRAME_HITS.fetch_add(s.frame_hits, Ordering::Relaxed);
    GLOBAL_FRAME_MISSES.fetch_add(s.frame_misses, Ordering::Relaxed);
    GLOBAL_FRAME_RESETS.fetch_add(s.frame_resets, Ordering::Relaxed);
}

/// The process-wide totals accumulated by [`flush_thread_stats`].
pub fn global_stats() -> MemoryStats {
    MemoryStats {
        acquires: GLOBAL_ACQUIRES.load(Ordering::Relaxed),
        releases: GLOBAL_RELEASES.load(Ordering::Relaxed),
        tensor_copies: GLOBAL_TENSOR_COPIES.load(Ordering::Relaxed),
        frame_hits: GLOBAL_FRAME_HITS.load(Ordering::Relaxed),
        frame_misses: GLOBAL_FRAME_MISSES.load(Ordering::Relaxed),
        frame_resets: GLOBAL_FRAME_RESETS.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide totals (call before a measured run).
pub fn reset_global_stats() {
    GLOBAL_ACQUIRES.store(0, Ordering::Relaxed);
    GLOBAL_RELEASES.store(0, Ordering::Relaxed);
    GLOBAL_TENSOR_COPIES.store(0, Ordering::Relaxed);
    GLOBAL_FRAME_HITS.store(0, Ordering::Relaxed);
    GLOBAL_FRAME_MISSES.store(0, Ordering::Relaxed);
    GLOBAL_FRAME_RESETS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset_stats();
        record_acquire();
        record_acquire();
        record_release();
        record_tensor_copy();
        let s = stats();
        assert_eq!(
            s,
            MemoryStats {
                acquires: 2,
                releases: 1,
                tensor_copies: 1,
                ..MemoryStats::default()
            }
        );
        assert!(!s.balanced());
        record_release();
        assert!(stats().balanced());
        reset_stats();
        assert_eq!(stats(), MemoryStats::default());
    }

    #[test]
    fn flush_aggregates_across_threads() {
        reset_global_stats();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    reset_stats();
                    record_acquire();
                    record_release();
                    record_tensor_copy();
                    record_frame_hit();
                    record_frame_miss();
                    record_frame_reset();
                    flush_thread_stats();
                    // Flushing resets the thread-local view.
                    assert_eq!(stats(), MemoryStats::default());
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let g = global_stats();
        assert_eq!(g.acquires, 4);
        assert_eq!(g.releases, 4);
        assert_eq!(g.tensor_copies, 4);
        assert_eq!(g.frame_hits, 4);
        assert_eq!(g.frame_misses, 4);
        assert_eq!(g.frame_resets, 4);
        assert_eq!(g.frames_reused(), 8);
        assert!(g.balanced());
        reset_global_stats();
        assert_eq!(global_stats(), MemoryStats::default());
    }
}
