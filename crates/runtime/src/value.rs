//! The boxed runtime value.
//!
//! `Value` is what flows across the interpreter/compiled-code boundary and
//! through the legacy stack VM. The new compiler's generated code mostly
//! operates on *unboxed* machine values and only boxes at the auxiliary
//! wrapper (§4.5 "Expression Boxing and Unboxing"); the legacy VM operates
//! on boxed values throughout — which is exactly the performance difference
//! Figure 2 measures.

use crate::error::RuntimeError;
use crate::tensor::{Tensor, TensorData};
use std::fmt;
use std::sync::Arc;
use wolfram_expr::{BigInt, Expr, ExprKind};

/// A runtime function value (closure): what `Function[...]` evaluates to in
/// compiled code, enabling first-class functions (the QSort comparator, the
/// paper's `If[i == 0, Sin, Cos]` example).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionValue {
    /// Resolved (mangled) name of the target function.
    pub name: Arc<str>,
    /// Index into the executing program's function table.
    pub index: usize,
    /// Captured environment values (closure conversion, §4.2).
    pub captures: Vec<Value>,
}

/// A boxed runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `Null`.
    Null,
    /// A boolean (`True`/`False`).
    Bool(bool),
    /// A machine integer.
    I64(i64),
    /// A machine real.
    F64(f64),
    /// A machine complex number.
    Complex(f64, f64),
    /// A string (reference counted; copied on mutation).
    Str(Arc<String>),
    /// A packed array.
    Tensor(Tensor),
    /// A symbolic expression (the `"Expression"` type, F8).
    Expr(Expr),
    /// An arbitrary-precision integer (interpreter fallback arithmetic).
    Big(Arc<BigInt>),
    /// A function value.
    Function(Arc<FunctionValue>),
}

impl Value {
    /// The value's type name in the compiler's vocabulary.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Boolean",
            Value::I64(_) => "Integer64",
            Value::F64(_) => "Real64",
            Value::Complex(..) => "ComplexReal64",
            Value::Str(_) => "String",
            Value::Tensor(_) => "Tensor",
            Value::Expr(_) => "Expression",
            Value::Big(_) => "BigInteger",
            Value::Function(_) => "Function",
        }
    }

    /// Whether the value is *memory managed* (reference counted) as opposed
    /// to a raw machine value — the distinction the `MemoryAcquire` /
    /// `MemoryRelease` pass keys on (§4.5).
    pub fn is_managed(&self) -> bool {
        matches!(
            self,
            Value::Str(_) | Value::Tensor(_) | Value::Expr(_) | Value::Big(_) | Value::Function(_)
        )
    }

    /// The integer payload.
    ///
    /// # Errors
    ///
    /// Type error if this is not an `I64`.
    pub fn expect_i64(&self) -> Result<i64, RuntimeError> {
        match self {
            Value::I64(v) => Ok(*v),
            other => Err(RuntimeError::Type(format!(
                "expected Integer64, got {}",
                other.type_name()
            ))),
        }
    }

    /// The real payload, promoting integers.
    ///
    /// # Errors
    ///
    /// Type error if not numeric real/integer.
    pub fn expect_f64(&self) -> Result<f64, RuntimeError> {
        match self {
            Value::F64(v) => Ok(*v),
            Value::I64(v) => Ok(*v as f64),
            Value::Big(b) => Ok(b.to_f64()),
            other => Err(RuntimeError::Type(format!(
                "expected Real64, got {}",
                other.type_name()
            ))),
        }
    }

    /// The complex payload, promoting reals and integers.
    ///
    /// # Errors
    ///
    /// Type error if not numeric.
    pub fn expect_complex(&self) -> Result<(f64, f64), RuntimeError> {
        match self {
            Value::Complex(re, im) => Ok((*re, *im)),
            _ => Ok((self.expect_f64()?, 0.0)),
        }
    }

    /// The boolean payload.
    ///
    /// # Errors
    ///
    /// Type error if not a boolean.
    pub fn expect_bool(&self) -> Result<bool, RuntimeError> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(RuntimeError::Type(format!(
                "expected Boolean, got {}",
                other.type_name()
            ))),
        }
    }

    /// The string payload.
    ///
    /// # Errors
    ///
    /// Type error if not a string.
    pub fn expect_str(&self) -> Result<&str, RuntimeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(RuntimeError::Type(format!(
                "expected String, got {}",
                other.type_name()
            ))),
        }
    }

    /// The tensor payload.
    ///
    /// # Errors
    ///
    /// Type error if not a tensor.
    pub fn expect_tensor(&self) -> Result<&Tensor, RuntimeError> {
        match self {
            Value::Tensor(t) => Ok(t),
            other => Err(RuntimeError::Type(format!(
                "expected Tensor, got {}",
                other.type_name()
            ))),
        }
    }

    /// The tensor payload, by value (cheap: reference counted).
    ///
    /// # Errors
    ///
    /// Type error if not a tensor.
    pub fn into_tensor(self) -> Result<Tensor, RuntimeError> {
        match self {
            Value::Tensor(t) => Ok(t),
            other => Err(RuntimeError::Type(format!(
                "expected Tensor, got {}",
                other.type_name()
            ))),
        }
    }

    /// The function payload.
    ///
    /// # Errors
    ///
    /// Type error if not a function value.
    pub fn expect_function(&self) -> Result<&FunctionValue, RuntimeError> {
        match self {
            Value::Function(f) => Ok(f),
            other => Err(RuntimeError::Type(format!(
                "expected Function, got {}",
                other.type_name()
            ))),
        }
    }

    /// Boxes the value into a Wolfram expression (the auxiliary wrapper's
    /// "packs the output into an expression" step, F1).
    pub fn to_expr(&self) -> Expr {
        match self {
            Value::Null => Expr::null(),
            Value::Bool(b) => Expr::bool(*b),
            Value::I64(v) => Expr::int(*v),
            Value::F64(v) => Expr::real(*v),
            Value::Complex(re, im) => Expr::complex(*re, *im),
            Value::Str(s) => Expr::string(s.as_str()),
            Value::Big(b) => Expr::big((**b).clone()),
            Value::Expr(e) => e.clone(),
            Value::Function(f) => Expr::call("CompiledCodeFunction", [Expr::string(&*f.name)]),
            Value::Tensor(t) => tensor_to_expr(t),
        }
    }

    /// Unboxes a Wolfram expression into a runtime value, packing uniform
    /// numeric lists into tensors. Falls back to `Value::Expr` for anything
    /// symbolic.
    pub fn from_expr(e: &Expr) -> Value {
        match e.kind() {
            ExprKind::Integer(v) => Value::I64(*v),
            ExprKind::BigInteger(b) => Value::Big(Arc::new((**b).clone())),
            ExprKind::Real(v) => Value::F64(*v),
            ExprKind::Complex(re, im) => Value::Complex(*re, *im),
            ExprKind::Str(s) => Value::Str(Arc::new(s.to_string())),
            ExprKind::Symbol(s) => match s.name() {
                "True" => Value::Bool(true),
                "False" => Value::Bool(false),
                "Null" => Value::Null,
                _ => Value::Expr(e.clone()),
            },
            ExprKind::Normal(_) => match expr_to_tensor(e) {
                Some(t) => Value::Tensor(t),
                None => Value::Expr(e.clone()),
            },
        }
    }
}

/// Converts a tensor to a (nested) `List` expression.
pub fn tensor_to_expr(t: &Tensor) -> Expr {
    fn build(shape: &[usize], get: &mut dyn FnMut() -> Expr) -> Expr {
        if shape.len() == 1 {
            Expr::list((0..shape[0]).map(|_| get()).collect::<Vec<_>>())
        } else {
            Expr::list(
                (0..shape[0])
                    .map(|_| build(&shape[1..], get))
                    .collect::<Vec<_>>(),
            )
        }
    }
    let mut offset = 0usize;
    match t.data() {
        TensorData::I64(v) => build(t.shape(), &mut || {
            let e = Expr::int(v[offset]);
            offset += 1;
            e
        }),
        TensorData::F64(v) => build(t.shape(), &mut || {
            let e = Expr::real(v[offset]);
            offset += 1;
            e
        }),
        TensorData::Complex(v) => build(t.shape(), &mut || {
            let (re, im) = v[offset];
            offset += 1;
            Expr::complex(re, im)
        }),
    }
}

/// Attempts to pack a (nested) `List` expression of uniform machine numbers
/// into a tensor. Mixed integer/real lists promote to real.
pub fn expr_to_tensor(e: &Expr) -> Option<Tensor> {
    if !e.has_head("List") {
        return None;
    }
    // Determine shape and uniformity with a first pass.
    let mut shape = Vec::new();
    let mut cursor = e.clone();
    loop {
        if !cursor.has_head("List") {
            break;
        }
        shape.push(cursor.length());
        match cursor.args().first() {
            Some(first) => cursor = first.clone(),
            None => break,
        }
    }
    if shape.is_empty() || shape.contains(&0) {
        return None;
    }
    #[derive(PartialEq, Clone, Copy)]
    enum Elem {
        Int,
        Real,
        Complex,
    }
    let mut elem = Elem::Int;
    let mut ints = Vec::new();
    let mut reals = Vec::new();
    let mut complexes = Vec::new();
    fn gather(
        e: &Expr,
        depth: usize,
        shape: &[usize],
        elem: &mut Elem,
        ints: &mut Vec<i64>,
        reals: &mut Vec<f64>,
        complexes: &mut Vec<(f64, f64)>,
    ) -> bool {
        if depth < shape.len() {
            if !e.has_head("List") || e.length() != shape[depth] {
                return false;
            }
            e.args()
                .iter()
                .all(|a| gather(a, depth + 1, shape, elem, ints, reals, complexes))
        } else {
            match e.kind() {
                ExprKind::Integer(v) => {
                    ints.push(*v);
                    reals.push(*v as f64);
                    complexes.push((*v as f64, 0.0));
                    true
                }
                ExprKind::Real(v) => {
                    if *elem == Elem::Int {
                        *elem = Elem::Real;
                    }
                    reals.push(*v);
                    complexes.push((*v, 0.0));
                    true
                }
                ExprKind::Complex(re, im) => {
                    *elem = Elem::Complex;
                    complexes.push((*re, *im));
                    true
                }
                _ => false,
            }
        }
    }
    if !gather(
        e,
        0,
        &shape,
        &mut elem,
        &mut ints,
        &mut reals,
        &mut complexes,
    ) {
        return None;
    }
    let data = match elem {
        Elem::Int => TensorData::I64(ints),
        Elem::Real => TensorData::F64(reals),
        Elem::Complex => TensorData::Complex(complexes),
    };
    Tensor::with_shape(shape, data).ok()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => f.write_str(&other.to_expr().to_input_form()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    #[test]
    fn type_names_and_managed() {
        assert_eq!(Value::I64(1).type_name(), "Integer64");
        assert!(!Value::I64(1).is_managed());
        assert!(Value::Str(Arc::new("s".into())).is_managed());
        assert!(Value::Tensor(Tensor::from_i64(vec![1])).is_managed());
        assert!(Value::Expr(Expr::sym("x")).is_managed());
    }

    #[test]
    fn expect_accessors() {
        assert_eq!(Value::I64(4).expect_i64().unwrap(), 4);
        assert_eq!(Value::I64(4).expect_f64().unwrap(), 4.0);
        assert_eq!(Value::F64(2.5).expect_complex().unwrap(), (2.5, 0.0));
        assert!(Value::Bool(true).expect_i64().is_err());
        assert!(Value::F64(1.0).expect_bool().is_err());
    }

    #[test]
    fn boxing_roundtrip_scalars() {
        for v in [
            Value::I64(-3),
            Value::F64(2.5),
            Value::Bool(true),
            Value::Null,
            Value::Str(Arc::new("hello".into())),
            Value::Complex(1.0, -2.0),
        ] {
            let e = v.to_expr();
            assert_eq!(Value::from_expr(&e), v, "roundtrip {v:?}");
        }
    }

    #[test]
    fn list_packing() {
        let e = parse("{1, 2, 3}").unwrap();
        let t = Value::from_expr(&e).into_tensor().unwrap();
        assert_eq!(t.expect_i64().unwrap(), &[1, 2, 3]);
        // Mixed int/real promotes to real.
        let e = parse("{1, 2.5}").unwrap();
        let t = Value::from_expr(&e).into_tensor().unwrap();
        assert_eq!(t.expect_f64().unwrap(), &[1.0, 2.5]);
        // Mistyped access reports instead of panicking.
        assert!(t.expect_i64().is_err());
        // Matrix.
        let e = parse("{{1, 2}, {3, 4}}").unwrap();
        let t = Value::from_expr(&e).into_tensor().unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        // Ragged stays symbolic.
        let e = parse("{{1, 2}, {3}}").unwrap();
        assert!(matches!(Value::from_expr(&e), Value::Expr(_)));
        // Symbolic contents stay symbolic.
        let e = parse("{x, 2}").unwrap();
        assert!(matches!(Value::from_expr(&e), Value::Expr(_)));
    }

    #[test]
    fn tensor_boxing_roundtrip() {
        let t = Tensor::with_shape(vec![2, 2], TensorData::F64(vec![1.0, 2.0, 3.0, 4.0])).unwrap();
        let e = tensor_to_expr(&t);
        assert_eq!(e.to_full_form(), "List[List[1., 2.], List[3., 4.]]");
        let back = expr_to_tensor(&e).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn symbols_unbox_specially() {
        assert_eq!(Value::from_expr(&Expr::bool(true)), Value::Bool(true));
        assert_eq!(Value::from_expr(&Expr::null()), Value::Null);
        assert!(matches!(Value::from_expr(&Expr::sym("x")), Value::Expr(_)));
    }
}
