//! The shared dense linear-algebra kernel.
//!
//! In the paper's Dot benchmark all three implementations (hand-written C,
//! bytecode-compiled, and newly-compiled code) call Intel MKL's
//! `cblas_dgemm`, so no performance difference is observed. This module is
//! the stand-in: a cache-blocked `dgemm` that *every* implementation in this
//! repository routes through, reproducing the "same library, same time"
//! property.

/// `c = a (m x k) * b (k x n)`, row-major.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn dgemm(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    c.fill(0.0);
    // i-k-j loop order: streams through b and c rows, good locality.
    const BLOCK: usize = 64;
    for ii in (0..m).step_by(BLOCK) {
        for kk in (0..k).step_by(BLOCK) {
            let i_end = (ii + BLOCK).min(m);
            let k_end = (kk + BLOCK).min(k);
            for i in ii..i_end {
                for p in kk..k_end {
                    let aip = a[i * k + p];
                    let brow = &b[p * n..p * n + n];
                    let crow = &mut c[i * n..i * n + n];
                    for j in 0..n {
                        crow[j] += aip * brow[j];
                    }
                }
            }
        }
    }
}

/// Vector dot product.
pub fn ddot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Matrix-vector product `y = a (m x n) * x`.
pub fn dgemv(a: &[f64], x: &[f64], y: &mut [f64], m: usize, n: usize) {
    assert_eq!(a.len(), m * n, "matrix length");
    assert_eq!(x.len(), n, "vector length");
    assert_eq!(y.len(), m, "out length");
    for i in 0..m {
        y[i] = ddot(&a[i * n..(i + 1) * n], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_small() {
        let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        dgemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn dgemm_rectangular() {
        // (1x3) * (3x2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut c = [0.0; 2];
        dgemm(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, [14.0, 32.0]);
    }

    #[test]
    fn dgemm_identity() {
        let n = 70; // exceeds one block
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut c = vec![0.0; n * n];
        dgemm(&a, &eye, &mut c, n, n, n);
        assert_eq!(c, a);
    }

    #[test]
    fn vector_ops() {
        assert_eq!(ddot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let a = [1.0, 0.0, 0.0, 1.0];
        let mut y = [0.0; 2];
        dgemv(&a, &[7.0, 9.0], &mut y, 2, 2);
        assert_eq!(y, [7.0, 9.0]);
    }
}
