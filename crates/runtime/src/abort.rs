//! The abort signal (F3).
//!
//! A Wolfram Notebook user can abort an "infinite" evaluation without
//! quitting the session. The interpreter checks the flag periodically, the
//! legacy VM checks it per instruction, and the new compiler inserts checks
//! at loop headers and function prologues (§4.5).

use crate::error::RuntimeError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, asynchronously-triggerable abort flag.
///
/// Cloning shares the underlying flag, and the flag may be triggered from
/// another thread (as a notebook front end would).
///
/// # Examples
///
/// ```
/// use wolfram_runtime::AbortSignal;
/// let signal = AbortSignal::new();
/// assert!(signal.check().is_ok());
/// signal.trigger();
/// assert!(signal.check().is_err());
/// signal.reset();
/// assert!(signal.check().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AbortSignal {
    flag: Arc<AtomicBool>,
}

impl AbortSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an abort. Running evaluations observe it at their next
    /// check point and unwind with [`RuntimeError::Aborted`].
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Clears the flag (the interpreter does this when the prompt returns).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// Whether an abort has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The abort check compiled into loop headers and prologues.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Aborted`] if the flag is set.
    #[inline]
    pub fn check(&self) -> Result<(), RuntimeError> {
        if self.is_triggered() {
            Err(RuntimeError::Aborted)
        } else {
            Ok(())
        }
    }

    /// Arms the signal to auto-trigger after `n` successful checks. Used by
    /// tests to simulate a user abort landing mid-computation.
    pub fn trigger_after(&self, n: u64) -> CountdownAbort {
        CountdownAbort {
            signal: self.clone(),
            remaining: n,
        }
    }
}

/// Helper that triggers an [`AbortSignal`] after a countdown of checks.
#[derive(Debug)]
pub struct CountdownAbort {
    signal: AbortSignal,
    remaining: u64,
}

impl CountdownAbort {
    /// Decrements the countdown; triggers the signal when it reaches zero.
    pub fn tick(&mut self) {
        if self.remaining == 0 {
            self.signal.trigger();
        } else {
            self.remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_across_clones() {
        let a = AbortSignal::new();
        let b = a.clone();
        b.trigger();
        assert!(a.is_triggered());
        assert_eq!(a.check(), Err(RuntimeError::Aborted));
    }

    #[test]
    fn cross_thread_trigger() {
        let a = AbortSignal::new();
        let b = a.clone();
        std::thread::spawn(move || b.trigger()).join().unwrap();
        assert!(a.is_triggered());
    }

    #[test]
    fn countdown() {
        let a = AbortSignal::new();
        let mut countdown = a.trigger_after(2);
        countdown.tick();
        assert!(!a.is_triggered());
        countdown.tick();
        assert!(!a.is_triggered());
        countdown.tick();
        assert!(a.is_triggered());
    }
}
