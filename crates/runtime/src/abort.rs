//! The abort signal (F3).
//!
//! A Wolfram Notebook user can abort an "infinite" evaluation without
//! quitting the session. The interpreter checks the flag periodically, the
//! legacy VM checks it per instruction, and the new compiler inserts checks
//! at loop headers and function prologues (§4.5).

use crate::error::RuntimeError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A shared, asynchronously-triggerable abort flag.
///
/// Cloning shares the underlying flag, and the flag may be triggered from
/// another thread (as a notebook front end would).
///
/// # Examples
///
/// ```
/// use wolfram_runtime::AbortSignal;
/// let signal = AbortSignal::new();
/// assert!(signal.check().is_ok());
/// signal.trigger();
/// assert!(signal.check().is_err());
/// signal.reset();
/// assert!(signal.check().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AbortSignal {
    flag: Arc<AtomicBool>,
}

impl AbortSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an abort. Running evaluations observe it at their next
    /// check point and unwind with [`RuntimeError::Aborted`].
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Clears the flag (the interpreter does this when the prompt returns).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// Whether an abort has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The abort check compiled into loop headers and prologues.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Aborted`] if the flag is set.
    #[inline]
    pub fn check(&self) -> Result<(), RuntimeError> {
        if self.is_triggered() {
            Err(RuntimeError::Aborted)
        } else {
            Ok(())
        }
    }

    /// Arms the signal to auto-trigger after `n` successful checks. Used by
    /// tests to simulate a user abort landing mid-computation.
    pub fn trigger_after(&self, n: u64) -> CountdownAbort {
        CountdownAbort {
            signal: self.clone(),
            remaining: n,
        }
    }

    /// Arms a wall-clock deadline: a watchdog thread triggers this signal
    /// after `after`, unless the returned guard is dropped first.
    ///
    /// Dropping the [`DeadlineGuard`] cancels the watchdog and joins it, so
    /// a completed evaluation never races with a late trigger on a reused
    /// signal. The signal itself is *not* reset by the guard — callers that
    /// reuse signals (like the difftest oracle's shared host interpreters)
    /// reset explicitly after checking [`DeadlineGuard::fired`].
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use wolfram_runtime::AbortSignal;
    /// let signal = AbortSignal::new();
    /// {
    ///     let _guard = signal.deadline(Duration::from_secs(60));
    ///     // ... finishes well before the deadline ...
    /// } // guard dropped: watchdog cancelled
    /// assert!(!signal.is_triggered());
    /// ```
    pub fn deadline(&self, after: Duration) -> DeadlineGuard {
        let state = Arc::new(DeadlineState {
            lock: Mutex::new(false),
            cancelled: Condvar::new(),
            fired: AtomicBool::new(false),
        });
        let armed = self.clone();
        let shared = Arc::clone(&state);
        let watchdog = std::thread::spawn(move || {
            let mut done = shared.lock.lock().expect("deadline lock poisoned");
            let deadline = std::time::Instant::now() + after;
            while !*done {
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    shared.fired.store(true, Ordering::Release);
                    armed.trigger();
                    return;
                };
                let (guard, _timeout) = shared
                    .cancelled
                    .wait_timeout(done, left)
                    .expect("deadline lock poisoned");
                done = guard;
            }
        });
        DeadlineGuard {
            state,
            watchdog: Some(watchdog),
        }
    }
}

/// Shared state between a [`DeadlineGuard`] and its watchdog thread.
#[derive(Debug)]
struct DeadlineState {
    /// Set to `true` by the guard to cancel the watchdog.
    lock: Mutex<bool>,
    cancelled: Condvar,
    /// Whether the watchdog actually triggered the signal.
    fired: AtomicBool,
}

/// Cancels an armed [`AbortSignal::deadline`] watchdog when dropped.
#[derive(Debug)]
pub struct DeadlineGuard {
    state: Arc<DeadlineState>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl DeadlineGuard {
    /// Whether the deadline expired and triggered the signal.
    pub fn fired(&self) -> bool {
        self.state.fired.load(Ordering::Acquire)
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        if let Ok(mut done) = self.state.lock.lock() {
            *done = true;
        }
        self.state.cancelled.notify_all();
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

/// Helper that triggers an [`AbortSignal`] after a countdown of checks.
#[derive(Debug)]
pub struct CountdownAbort {
    signal: AbortSignal,
    remaining: u64,
}

impl CountdownAbort {
    /// Decrements the countdown; triggers the signal when it reaches zero.
    pub fn tick(&mut self) {
        if self.remaining == 0 {
            self.signal.trigger();
        } else {
            self.remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_across_clones() {
        let a = AbortSignal::new();
        let b = a.clone();
        b.trigger();
        assert!(a.is_triggered());
        assert_eq!(a.check(), Err(RuntimeError::Aborted));
    }

    #[test]
    fn cross_thread_trigger() {
        let a = AbortSignal::new();
        let b = a.clone();
        std::thread::spawn(move || b.trigger()).join().unwrap();
        assert!(a.is_triggered());
    }

    #[test]
    fn deadline_fires_after_timeout() {
        let signal = AbortSignal::new();
        let guard = signal.deadline(Duration::from_millis(10));
        let start = std::time::Instant::now();
        while !signal.is_triggered() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watchdog never fired"
            );
            std::thread::yield_now();
        }
        assert!(guard.fired());
        assert_eq!(signal.check(), Err(RuntimeError::Aborted));
    }

    #[test]
    fn deadline_cancelled_by_drop() {
        let signal = AbortSignal::new();
        let guard = signal.deadline(Duration::from_secs(60));
        assert!(!guard.fired());
        drop(guard); // joins the watchdog without waiting a minute
        assert!(!signal.is_triggered());
    }

    #[test]
    fn countdown() {
        let a = AbortSignal::new();
        let mut countdown = a.trigger_after(2);
        countdown.tick();
        assert!(!a.is_triggered());
        countdown.tick();
        assert!(!a.is_triggered());
        countdown.tick();
        assert!(a.is_triggered());
    }
}
