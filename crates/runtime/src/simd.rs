//! Portable SIMD-shaped kernels for dense `f64` loops.
//!
//! Stable Rust only — no `std::simd`. Each kernel walks its slices with
//! `chunks_exact(LANES)` and a manually unrolled body so the compiler can
//! elide bounds checks and emit vector instructions (the iterator proves
//! each chunk is exactly `LANES` wide), then handles the remainder with a
//! scalar tail. The elementwise kernels are IEEE-exact: they apply the
//! same scalar operation to each lane, so results are bit-identical to a
//! plain loop regardless of how the compiler vectorizes them.
//!
//! The reductions ([`sum`], [`dot`]) are *reassociated*: they accumulate
//! into `LANES` independent lanes merged as `((l0+l2)+(l1+l3))+tail`.
//! That order is a deterministic function of the input length alone, but
//! it differs from the strict left-to-right order the interpreter uses —
//! which is exactly what the difftest ULP/cancellation equivalence
//! relation exists to absorb (see DESIGN.md, "The parallel tier").

/// Unroll width of every kernel in this module.
pub const LANES: usize = 4;

/// Elementwise operations the vector kernels support.
///
/// Deliberately the *total* subset: `Add`/`Sub`/`Mul` are total on f64,
/// and `Div` is total once the caller has ruled out the machine's
/// divide-by-zero error path (the scalar VM raises `DivideByZero` for
/// `x/0.0`; vectorized callers must prove the divisor nonzero or fall
/// back to the scalar loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b` (caller guarantees the divisor path is error-free)
    Div,
}

impl SimdOp {
    /// The scalar meaning of the op (the kernels apply exactly this per
    /// lane, so the vector and scalar paths agree bitwise).
    #[inline(always)]
    pub fn apply(self, x: f64, y: f64) -> f64 {
        match self {
            SimdOp::Add => x + y,
            SimdOp::Sub => x - y,
            SimdOp::Mul => x * y,
            SimdOp::Div => x / y,
        }
    }
}

#[inline(always)]
fn vv_kernel(a: &[f64], b: &[f64], out: &mut [f64], op: impl Fn(f64, f64) -> f64) {
    let n = out.len();
    assert!(a.len() == n && b.len() == n, "vv kernel length mismatch");
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        o[0] = op(x[0], y[0]);
        o[1] = op(x[1], y[1]);
        o[2] = op(x[2], y[2]);
        o[3] = op(x[3], y[3]);
    }
    for ((o, x), y) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *o = op(*x, *y);
    }
}

#[inline(always)]
fn vs_kernel(a: &[f64], s: f64, out: &mut [f64], op: impl Fn(f64, f64) -> f64) {
    assert!(a.len() == out.len(), "vs kernel length mismatch");
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    for (o, x) in (&mut oc).zip(&mut ac) {
        o[0] = op(x[0], s);
        o[1] = op(x[1], s);
        o[2] = op(x[2], s);
        o[3] = op(x[3], s);
    }
    for (o, x) in oc.into_remainder().iter_mut().zip(ac.remainder()) {
        *o = op(*x, s);
    }
}

/// `out[i] = a[i] op b[i]`.
pub fn vv(op: SimdOp, a: &[f64], b: &[f64], out: &mut [f64]) {
    match op {
        SimdOp::Add => vv_kernel(a, b, out, |x, y| x + y),
        SimdOp::Sub => vv_kernel(a, b, out, |x, y| x - y),
        SimdOp::Mul => vv_kernel(a, b, out, |x, y| x * y),
        SimdOp::Div => vv_kernel(a, b, out, |x, y| x / y),
    }
}

/// `out[i] = a[i] op s` (vector ⊗ broadcast scalar).
pub fn vs(op: SimdOp, a: &[f64], s: f64, out: &mut [f64]) {
    match op {
        SimdOp::Add => vs_kernel(a, s, out, |x, y| x + y),
        SimdOp::Sub => vs_kernel(a, s, out, |x, y| x - y),
        SimdOp::Mul => vs_kernel(a, s, out, |x, y| x * y),
        SimdOp::Div => vs_kernel(a, s, out, |x, y| x / y),
    }
}

/// `out[i] = s op b[i]` (broadcast scalar ⊗ vector).
pub fn sv(op: SimdOp, s: f64, b: &[f64], out: &mut [f64]) {
    match op {
        SimdOp::Add => vs_kernel(b, s, out, |y, x| x + y),
        SimdOp::Sub => vs_kernel(b, s, out, |y, x| x - y),
        SimdOp::Mul => vs_kernel(b, s, out, |y, x| x * y),
        SimdOp::Div => vs_kernel(b, s, out, |y, x| x / y),
    }
}

/// `out[i] = v` for every element.
pub fn fill(out: &mut [f64], v: f64) {
    for o in out.iter_mut() {
        *o = v;
    }
}

/// Sum with `LANES` accumulator lanes, merged `((l0+l2)+(l1+l3))+tail`.
///
/// The association is a fixed function of `a.len()` — two calls on equal
/// data always agree bitwise — but it is *not* the interpreter's strict
/// left-to-right fold.
pub fn sum(a: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut ac = a.chunks_exact(LANES);
    for x in &mut ac {
        acc[0] += x[0];
        acc[1] += x[1];
        acc[2] += x[2];
        acc[3] += x[3];
    }
    let mut tail = 0.0f64;
    for x in ac.remainder() {
        tail += *x;
    }
    ((acc[0] + acc[2]) + (acc[1] + acc[3])) + tail
}

/// Dot product with the same lane structure and merge order as [`sum`].
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert!(a.len() == b.len(), "dot length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (x, y) in (&mut ac).zip(&mut bc) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut tail = 0.0f64;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    ((acc[0] + acc[2]) + (acc[1] + acc[3])) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect()
    }

    #[test]
    fn vv_matches_scalar_for_all_tail_lengths() {
        for n in 0..=2 * LANES {
            let a = pattern(n);
            let b: Vec<f64> = a.iter().map(|x| x * 1.25 + 1.0).collect();
            for op in [SimdOp::Add, SimdOp::Sub, SimdOp::Mul, SimdOp::Div] {
                let mut out = vec![0.0; n];
                vv(op, &a, &b, &mut out);
                for i in 0..n {
                    let want = op.apply(a[i], b[i]);
                    assert!(
                        out[i] == want || (out[i].is_nan() && want.is_nan()),
                        "{op:?} n={n} i={i}: {} != {}",
                        out[i],
                        want
                    );
                }
            }
        }
    }

    #[test]
    fn vs_and_sv_match_scalar_for_all_tail_lengths() {
        for n in 0..=2 * LANES + 1 {
            let a = pattern(n);
            let s = 2.5;
            for op in [SimdOp::Add, SimdOp::Sub, SimdOp::Mul, SimdOp::Div] {
                let mut out = vec![0.0; n];
                vs(op, &a, s, &mut out);
                for i in 0..n {
                    assert_eq!(out[i].to_bits(), op.apply(a[i], s).to_bits());
                }
                vs(op, &a, s, &mut out);
                let mut out2 = vec![0.0; n];
                sv(op, s, &a, &mut out2);
                for i in 0..n {
                    assert_eq!(out2[i].to_bits(), op.apply(s, a[i]).to_bits());
                }
            }
        }
    }

    #[test]
    fn special_lanes_propagate_bitwise() {
        // NaN, -0.0 and infinities must flow through every lane position
        // exactly as a scalar loop would produce them.
        let a = [f64::NAN, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1.0, -0.0];
        let b = [1.0, -0.0, f64::INFINITY, f64::INFINITY, f64::NAN, 5.0];
        for op in [SimdOp::Add, SimdOp::Sub, SimdOp::Mul, SimdOp::Div] {
            let mut out = [0.0; 6];
            vv(op, &a, &b, &mut out);
            for i in 0..6 {
                let want = op.apply(a[i], b[i]);
                if want.is_nan() {
                    // IEEE 754 leaves the sign/payload of a *generated*
                    // NaN (e.g. -Inf + Inf) unspecified, and LLVM's
                    // constant folder and the hardware disagree on it in
                    // release builds; only NaN-ness is portable.
                    assert!(out[i].is_nan(), "{op:?} lane {i}: expected NaN");
                } else {
                    assert_eq!(
                        out[i].to_bits(),
                        want.to_bits(),
                        "{op:?} lane {i}: {:x} != {:x}",
                        out[i].to_bits(),
                        want.to_bits()
                    );
                }
            }
        }
        // -0.0 + 0.0 sign handling in the reductions: the lanes start at
        // +0.0, so sum of all -0.0 inputs is +0.0 (same as a scalar fold
        // seeded with 0.0).
        assert_eq!(
            sum(&[-0.0, -0.0, -0.0, -0.0, -0.0]).to_bits(),
            0.0f64.to_bits()
        );
    }

    #[test]
    fn reductions_are_deterministic_and_close_to_sequential() {
        for n in [0, 1, 3, 4, 5, 7, 8, 9, 1000, 1001] {
            let a = pattern(n);
            let b: Vec<f64> = a.iter().map(|x| 1.0 - x).collect();
            let s1 = sum(&a);
            let s2 = sum(&a);
            assert_eq!(s1.to_bits(), s2.to_bits(), "sum must be deterministic");
            let seq: f64 = a.iter().sum();
            assert!((s1 - seq).abs() <= 1e-9 * seq.abs().max(1.0));
            let d1 = dot(&a, &b);
            assert_eq!(d1.to_bits(), dot(&a, &b).to_bits());
            let seq_dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((d1 - seq_dot).abs() <= 1e-9 * seq_dot.abs().max(1.0));
        }
    }

    #[test]
    fn integer_valued_reductions_are_exact() {
        // Small integers are exact in f64 under any association, so the
        // reassociated reductions must agree exactly with sequential.
        let a: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(sum(&a), 5050.0);
        let ones = vec![1.0; 37];
        assert_eq!(dot(&a[..37], &ones), a[..37].iter().sum::<f64>());
    }

    #[test]
    fn fill_writes_every_element() {
        for n in 0..=9 {
            let mut out = vec![0.0; n];
            fill(&mut out, -2.5);
            assert!(out.iter().all(|&x| x == -2.5));
        }
    }
}
