//! Runtime errors, split into *numeric exceptions* (which trigger the soft
//! interpreter fallback, F2) and hard errors.

use std::fmt;

/// An error raised while executing compiled or interpreted code.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Machine integer overflow — the canonical soft-failure trigger
    /// (`cfib[200]` in the paper reverts to arbitrary precision).
    IntegerOverflow,
    /// Division by zero.
    DivideByZero,
    /// A numeric operation left the domain representable at its machine
    /// type (e.g. integer `Power` with a negative exponent, which the
    /// interpreter evaluates as a real). Like overflow, this is a *soft*
    /// failure: hosted compiled code reverts to the interpreter.
    NumericDomain(String),
    /// `Part` index out of range.
    PartOutOfRange {
        /// The requested (1-based, possibly negative) index.
        index: i64,
        /// The length of the indexed dimension.
        length: usize,
    },
    /// A user abort was issued (F3). The computation unwinds and the session
    /// survives.
    Aborted,
    /// Dynamic type mismatch at a boundary (argument unboxing, VM op).
    Type(String),
    /// Recursion limit exceeded (the interpreter's `$RecursionLimit`).
    RecursionLimit(usize),
    /// Iteration limit exceeded (the interpreter's `$IterationLimit`,
    /// guarding infinite evaluation like `x = x + 1`).
    IterationLimit(usize),
    /// A symbol or function had no applicable definition.
    Unevaluated(String),
    /// Any other failure, with a message.
    Other(String),
}

impl RuntimeError {
    /// Whether this error is a *numeric exception*: compiled code that hits
    /// one reverts to the interpreter (the paper's soft failure mode, F2).
    /// Aborts and hard errors do not re-run.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            RuntimeError::IntegerOverflow
                | RuntimeError::DivideByZero
                | RuntimeError::NumericDomain(_)
        )
    }

    /// Short machine-readable tag, matching the paper's warning message
    /// style (`... runtime error occurred; reverting to uncompiled
    /// evaluation: IntegerOverflow`).
    pub fn tag(&self) -> &'static str {
        match self {
            RuntimeError::IntegerOverflow => "IntegerOverflow",
            RuntimeError::DivideByZero => "DivideByZero",
            RuntimeError::NumericDomain(_) => "NumericDomain",
            RuntimeError::PartOutOfRange { .. } => "PartOutOfRange",
            RuntimeError::Aborted => "Aborted",
            RuntimeError::Type(_) => "TypeError",
            RuntimeError::RecursionLimit(_) => "RecursionLimit",
            RuntimeError::IterationLimit(_) => "IterationLimit",
            RuntimeError::Unevaluated(_) => "Unevaluated",
            RuntimeError::Other(_) => "Error",
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::IntegerOverflow => write!(f, "machine integer overflow"),
            RuntimeError::DivideByZero => write!(f, "division by zero"),
            RuntimeError::NumericDomain(msg) => write!(f, "numeric domain error: {msg}"),
            RuntimeError::PartOutOfRange { index, length } => {
                write!(f, "part index {index} out of range for length {length}")
            }
            RuntimeError::Aborted => write!(f, "evaluation aborted"),
            RuntimeError::Type(msg) => write!(f, "type error: {msg}"),
            RuntimeError::RecursionLimit(n) => write!(f, "recursion depth of {n} exceeded"),
            RuntimeError::IterationLimit(n) => write!(f, "iteration limit of {n} exceeded"),
            RuntimeError::Unevaluated(what) => write!(f, "no definition applies to {what}"),
            RuntimeError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(RuntimeError::IntegerOverflow.is_numeric());
        assert!(RuntimeError::DivideByZero.is_numeric());
        assert!(RuntimeError::NumericDomain("negative exponent".into()).is_numeric());
        assert!(!RuntimeError::Aborted.is_numeric());
        assert!(!RuntimeError::Type("x".into()).is_numeric());
        assert!(!RuntimeError::PartOutOfRange {
            index: 5,
            length: 3
        }
        .is_numeric());
    }

    #[test]
    fn tags_match_paper_style() {
        assert_eq!(RuntimeError::IntegerOverflow.tag(), "IntegerOverflow");
        assert_eq!(RuntimeError::Aborted.tag(), "Aborted");
    }

    #[test]
    fn display_nonempty() {
        for e in [
            RuntimeError::IntegerOverflow,
            RuntimeError::PartOutOfRange {
                index: -4,
                length: 2,
            },
            RuntimeError::Other("boom".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
