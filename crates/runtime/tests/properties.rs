//! Property tests on the runtime substrate: checked machine arithmetic
//! against a wide-integer reference, Part index resolution, the shared
//! `dgemm`/`dgemv` kernels against naive loops, and tensor copy-on-write.

use proptest::prelude::*;
use wolfram_runtime::checked::{
    abs_i64, add_i64, mod_i64, mul_i64, neg_i64, pow_i64, quotient_i64, resolve_part_index, sub_i64,
};
use wolfram_runtime::linalg::{ddot, dgemm, dgemv};
use wolfram_runtime::{RuntimeError, Tensor};

// ---------------------------------------------------------------------
// Checked arithmetic: agree with i128 and never panic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let wide = a as i128 + b as i128;
        match add_i64(a, b) {
            Ok(v) => prop_assert_eq!(v as i128, wide),
            Err(e) => {
                prop_assert_eq!(e, RuntimeError::IntegerOverflow);
                prop_assert!(i64::try_from(wide).is_err());
            }
        }
    }

    #[test]
    fn sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let wide = a as i128 - b as i128;
        match sub_i64(a, b) {
            Ok(v) => prop_assert_eq!(v as i128, wide),
            Err(_) => prop_assert!(i64::try_from(wide).is_err()),
        }
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let wide = a as i128 * b as i128;
        match mul_i64(a, b) {
            Ok(v) => prop_assert_eq!(v as i128, wide),
            Err(_) => prop_assert!(i64::try_from(wide).is_err()),
        }
    }

    #[test]
    fn neg_and_abs_never_panic(a in any::<i64>()) {
        match neg_i64(a) {
            Ok(v) => prop_assert_eq!(v as i128, -(a as i128)),
            Err(_) => prop_assert_eq!(a, i64::MIN),
        }
        match abs_i64(a) {
            Ok(v) => prop_assert_eq!(v as i128, (a as i128).abs()),
            Err(_) => prop_assert_eq!(a, i64::MIN),
        }
    }

    #[test]
    fn pow_matches_i128(base in -50i64..50, exp in 0i64..20) {
        let wide = (base as i128).checked_pow(exp as u32);
        match pow_i64(base, exp) {
            Ok(v) => prop_assert_eq!(Some(v as i128), wide),
            Err(_) => prop_assert!(
                wide.is_none_or(|w| i64::try_from(w).is_err()) || exp < 0
            ),
        }
    }

    /// Wolfram division identity: a == b*Quotient[a,b] + Mod[a,b], with
    /// Mod taking the sign of the divisor.
    #[test]
    fn quotient_mod_identity(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        // Skip the lone i64::MIN / -1 overflow corner.
        prop_assume!(!(a == i64::MIN && b == -1));
        let q = quotient_i64(a, b).unwrap();
        let r = mod_i64(a, b).unwrap();
        prop_assert_eq!((b as i128) * (q as i128) + r as i128, a as i128);
        if r != 0 {
            prop_assert_eq!(r.signum(), b.signum(), "Mod takes divisor sign");
        }
    }

    #[test]
    fn division_by_zero_is_an_error(a in any::<i64>()) {
        prop_assert!(quotient_i64(a, 0).is_err());
        prop_assert!(mod_i64(a, 0).is_err());
    }
}

// ---------------------------------------------------------------------
// Part index resolution (1-based, negative-from-end).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn positive_indices_map_one_based(len in 1usize..100, pick in 0usize..99) {
        let idx = (pick % len) + 1;
        prop_assert_eq!(resolve_part_index(idx as i64, len).unwrap(), idx - 1);
    }

    #[test]
    fn negative_indices_count_from_end(len in 1usize..100, pick in 0usize..99) {
        let back = (pick % len) + 1; // 1..=len
        let got = resolve_part_index(-(back as i64), len).unwrap();
        prop_assert_eq!(got, len - back);
    }

    #[test]
    fn zero_and_out_of_range_rejected(len in 0usize..50, beyond in 1i64..50) {
        prop_assert!(resolve_part_index(0, len).is_err());
        prop_assert!(resolve_part_index(len as i64 + beyond, len).is_err());
        prop_assert!(resolve_part_index(-(len as i64) - beyond, len).is_err());
    }
}

// ---------------------------------------------------------------------
// Linear algebra kernels vs naive reference loops.
// ---------------------------------------------------------------------

fn naive_gemm(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dgemm_matches_naive(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in prop::collection::vec(-10.0f64..10.0, 72),
    ) {
        let a: Vec<f64> = seed.iter().cycle().take(m * k).copied().collect();
        let b: Vec<f64> = seed.iter().rev().cycle().take(k * n).copied().collect();
        let mut c = vec![0.0; m * n];
        dgemm(&a, &b, &mut c, m, k, n);
        let want = naive_gemm(&a, &b, m, k, n);
        for (got, want) in c.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn dgemv_is_gemm_with_one_column(
        m in 1usize..8, n in 1usize..8,
        seed in prop::collection::vec(-5.0f64..5.0, 64),
    ) {
        let a: Vec<f64> = seed.iter().cycle().take(m * n).copied().collect();
        let x: Vec<f64> = seed.iter().rev().cycle().take(n).copied().collect();
        let mut y = vec![0.0; m];
        dgemv(&a, &x, &mut y, m, n);
        let want = naive_gemm(&a, &x, m, n, 1);
        for (got, want) in y.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn ddot_matches_fold(v in prop::collection::vec(-100.0f64..100.0, 0..64)) {
        let want: f64 = v.iter().map(|x| x * x).sum();
        prop_assert!((ddot(&v, &v) - want).abs() < 1e-7 * (1.0 + want.abs()));
        prop_assert!(ddot(&v, &v) >= 0.0, "dot of a vector with itself");
    }
}

// ---------------------------------------------------------------------
// Tensor copy-on-write.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn clone_shares_until_written(data in prop::collection::vec(any::<i64>(), 1..32)) {
        let original = Tensor::from_i64(data.clone());
        let mut alias = original.clone();
        prop_assert!(alias.shares_storage(&original));
        alias.set_i64(0, 999).unwrap();
        prop_assert!(!alias.shares_storage(&original), "write must unshare");
        prop_assert_eq!(original.as_i64().unwrap(), &data[..], "original untouched");
        prop_assert_eq!(alias.as_i64().unwrap()[0], 999);
        prop_assert_eq!(&alias.as_i64().unwrap()[1..], &data[1..]);
    }

    #[test]
    fn unique_tensor_writes_in_place(data in prop::collection::vec(any::<i64>(), 1..32)) {
        let mut t = Tensor::from_i64(data.clone());
        let copies_before = wolfram_runtime::memory::stats().tensor_copies;
        t.set_i64(0, 7).unwrap();
        prop_assert_eq!(
            wolfram_runtime::memory::stats().tensor_copies, copies_before,
            "unshared write must not copy"
        );
    }

    #[test]
    fn with_shape_validates_product(
        data in prop::collection::vec(any::<i64>(), 0..24),
        rows in 1usize..6, cols in 1usize..6,
    ) {
        let t = Tensor::with_shape(vec![rows, cols], wolfram_runtime::TensorData::I64(data.clone()));
        prop_assert_eq!(t.is_ok(), data.len() == rows * cols);
        if let Ok(t) = t {
            prop_assert_eq!(t.rank(), 2);
            prop_assert_eq!(t.length(), rows);
            prop_assert_eq!(t.flat_len(), rows * cols);
        }
    }
}
