//! Rust reproduction of *The Design and Implementation of the Wolfram
//! Language Compiler* (CGO 2020).
//!
//! This facade crate re-exports the public API of every subsystem:
//!
//! - [`expr`] — the MExpr AST substrate (symbols, parser, patterns, rules).
//! - [`runtime`] — boxed values, copy-on-write tensors, bignum, abort signal.
//! - [`interp`] — the "Wolfram Engine" interpreter substrate.
//! - [`bytecode`] — the legacy bytecode compiler + stack VM baseline.
//! - [`types`] — the type system and constraint-graph inference.
//! - [`ir`] — WIR/TWIR SSA representation, analyses, and passes.
//! - [`compiler`] — the new compiler: macros, binding analysis, lowering,
//!   inference, resolution, and the `FunctionCompile` pipeline.
//! - [`codegen`] — backends: native register machine, C source, assembler
//!   listing, WVM bytecode, standalone export.
//! - [`serve`] — the concurrent compile-and-evaluate service: sharded
//!   worker pool, content-addressed artifact cache, deadlines, metrics.
//! - [`stream`] — the compile-once, evaluate-millions streaming engine:
//!   batching executor with frame reuse, bounded queues, `!stream` wire
//!   mode, per-stage metrics.
//!
//! # Quickstart
//!
//! ```
//! use wolfram_language_compiler::compiler::{Compiler, CompilerOptions};
//! use wolfram_language_compiler::expr::parse;
//!
//! let src = r#"Function[{Typed[n, "MachineInteger"]}, n + 1]"#;
//! let compiler = Compiler::new(CompilerOptions::default());
//! let cf = compiler.function_compile_src(src)?;
//! let out = cf.call_exprs(&[wolfram_language_compiler::expr::Expr::int(41)])?;
//! assert_eq!(out.as_i64(), Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use wolfram_bytecode as bytecode;
pub use wolfram_codegen as codegen;
pub use wolfram_compiler_core as compiler;
pub use wolfram_expr as expr;
pub use wolfram_interp as interp;
pub use wolfram_ir as ir;
pub use wolfram_runtime as runtime;
pub use wolfram_serve as serve;
pub use wolfram_stream as stream;
pub use wolfram_types as types;
